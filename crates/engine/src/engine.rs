//! The runtime debugger engine.
//!
//! "A runtime engine first takes a debug model as input and displays it
//! graphically. Next, the engine implemented as an event-driven state
//! machine, waits for commands sent by the target embedded code. Once an
//! event arrives, it performs corresponding actions (e.g. an animation)
//! and other graphical model debugger functionalities" (paper §II).
//!
//! The engine is normally **Waiting**; each command transits through
//! *Reacting* (bindings applied, trace recorded, expectations checked)
//! and back. A matched **model-level breakpoint** moves it to **Paused**:
//! further commands queue, and the user steps through them one at a time
//! ("model-level step-wise execution and breakpoint functionality").

use crate::expect::{Expectation, ExpectationMonitor, Violation};
use crate::trace::ExecutionTrace;
use gmdf_gdm::{
    render_ascii, render_gdm, render_svg, CommandMatcher, DebuggerModel, ModelEvent, ReactionSpec,
    VisualState,
};
use gmdf_render::Scene;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::mpsc;

/// Engine control state (the Fig. 3 machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineState {
    /// Listening for commands, reacting immediately.
    Waiting,
    /// Stopped at a breakpoint; commands queue until stepped/resumed.
    Paused,
}

/// A model-level breakpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Breakpoint {
    /// Events that trigger the pause.
    pub matcher: CommandMatcher,
    /// Remove the breakpoint after the first hit.
    pub one_shot: bool,
}

/// Result of feeding one command.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FeedOutcome {
    /// `true` if the command was processed (false = queued while paused).
    pub processed: bool,
    /// `true` if a breakpoint was hit by this command.
    pub hit_breakpoint: bool,
    /// Number of expectation violations this command raised.
    pub violations: usize,
}

/// A per-command notification delivered to engine subscribers.
///
/// Subscribers learn *that* something happened and where it sits in the
/// trace; the full payload (event, reactions, violation messages) is read
/// incrementally via [`ExecutionTrace::entries_since`] with `seq` as the
/// cursor, so notices stay cheap to clone and send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineNotice {
    /// Trace sequence number of the processed command.
    pub seq: u64,
    /// The command's model time.
    pub time_ns: u64,
    /// Expectation violations this command raised.
    pub violations: usize,
    /// `true` if this command hit a breakpoint.
    pub hit_breakpoint: bool,
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Commands processed (not counting queued ones).
    pub events_processed: u64,
    /// Reactions applied.
    pub reactions_applied: u64,
    /// Breakpoint hits.
    pub breakpoint_hits: u64,
}

/// The graphical model debugger engine.
#[derive(Debug)]
pub struct DebuggerEngine {
    gdm: DebuggerModel,
    visual: VisualState,
    state: EngineState,
    breakpoints: Vec<Breakpoint>,
    monitors: Vec<ExpectationMonitor>,
    violations: Vec<Violation>,
    queue: VecDeque<ModelEvent>,
    trace: ExecutionTrace,
    stats: EngineStats,
    taps: Vec<mpsc::Sender<EngineNotice>>,
}

impl DebuggerEngine {
    /// Creates an engine displaying `gdm`, in the waiting state.
    pub fn new(gdm: DebuggerModel) -> Self {
        DebuggerEngine {
            gdm,
            visual: VisualState::new(),
            state: EngineState::Waiting,
            breakpoints: Vec::new(),
            monitors: Vec::new(),
            violations: Vec::new(),
            queue: VecDeque::new(),
            trace: ExecutionTrace::new(),
            stats: EngineStats::default(),
            taps: Vec::new(),
        }
    }

    /// The debug model being animated.
    pub fn gdm(&self) -> &DebuggerModel {
        &self.gdm
    }

    /// Current control state.
    pub fn state(&self) -> EngineState {
        self.state
    }

    /// Current animation state.
    pub fn visual(&self) -> &VisualState {
        &self.visual
    }

    /// The recorded trace.
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Replaces the trace backend ([`crate::store::TraceStore`]) —
    /// e.g. a segmented on-disk store for a trace that must survive
    /// the process. Attaching a non-empty store puts the trace in
    /// deterministic catch-up mode: re-fed commands that are already
    /// persisted are dropped instead of duplicated, which is how a
    /// restored session replays to its saved point. Intended to be
    /// called before the first command; entries already recorded into
    /// the previous backend are not migrated.
    pub fn set_trace_store(&mut self, store: Box<dyn crate::store::TraceStore>) {
        self.trace = ExecutionTrace::with_store(store);
    }

    /// Attaches (or detaches) a metrics sink on the trace: store appends
    /// and range reads are timed into it from now on. Call *after* any
    /// [`DebuggerEngine::set_trace_store`] — replacing the backend
    /// builds a fresh trace without a sink.
    pub fn set_trace_metrics(
        &mut self,
        metrics: Option<std::sync::Arc<crate::metrics::StoreMetrics>>,
    ) {
        self.trace.set_metrics(metrics);
    }

    /// Flushes the trace's backing store and surfaces any sticky
    /// storage failure — the debug server calls this after every
    /// pumped slice so a disk problem fails the session visibly
    /// instead of silently shortening the record.
    ///
    /// # Errors
    ///
    /// Propagates the store failure.
    pub fn sync_trace(&mut self) -> Result<(), crate::store::StoreError> {
        self.trace.sync()
    }

    /// Runs one bounded unit of trace-store maintenance (segment
    /// compression / retention eviction) — what the debug server's
    /// compactor thread calls off the pump path. A no-op on stores
    /// without a retention policy.
    ///
    /// # Errors
    ///
    /// Propagates the store failure.
    pub fn maintain_trace(
        &mut self,
    ) -> Result<crate::store::MaintenanceReport, crate::store::StoreError> {
        self.trace.maintain()
    }

    /// Pins the trace store's retention floor (entries with
    /// `seq >= floor` may no longer be evicted) — see
    /// [`crate::store::TraceStore::set_retain_floor`].
    pub fn set_trace_retain_floor(&mut self, floor: u64) {
        self.trace.set_retain_floor(floor);
    }

    /// Violations recorded so far — the found bugs.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of commands waiting while paused.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Subscribes to per-command notifications. Every *processed* command
    /// (queued ones notify when stepped/resumed through) produces one
    /// [`EngineNotice`] on the returned receiver. Disconnected
    /// subscribers are pruned on the next notification; subscriptions
    /// never block command processing.
    pub fn subscribe(&mut self) -> mpsc::Receiver<EngineNotice> {
        let (tx, rx) = mpsc::channel();
        self.taps.push(tx);
        rx
    }

    /// Number of live notification subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.taps.len()
    }

    /// Installs a model-level breakpoint.
    pub fn add_breakpoint(&mut self, matcher: CommandMatcher, one_shot: bool) {
        self.breakpoints.push(Breakpoint { matcher, one_shot });
    }

    /// Removes all breakpoints.
    pub fn clear_breakpoints(&mut self) {
        self.breakpoints.clear();
    }

    /// Installs an expectation monitor.
    pub fn add_expectation(&mut self, e: Expectation) {
        self.monitors.push(ExpectationMonitor::new(e));
    }

    /// Feeds one command from the target. While paused, commands queue
    /// (the embedded system keeps running; the *view* is frozen).
    pub fn feed(&mut self, event: ModelEvent) -> FeedOutcome {
        if self.state == EngineState::Paused {
            self.queue.push_back(event);
            return FeedOutcome::default();
        }
        self.process(event)
    }

    /// While paused: processes exactly one queued command ("step-wise
    /// execution"). Returns `None` if nothing is queued or not paused.
    pub fn step(&mut self) -> Option<FeedOutcome> {
        if self.state != EngineState::Paused {
            return None;
        }
        let event = self.queue.pop_front()?;
        // A step processes even if it would re-hit a breakpoint; the
        // engine stays paused either way.
        let outcome = self.process_inner(event, false);
        Some(outcome)
    }

    /// Resumes: drains the queue until empty or a breakpoint hits again,
    /// then returns to waiting if fully drained.
    pub fn resume(&mut self) -> Vec<FeedOutcome> {
        let mut outcomes = Vec::new();
        self.state = EngineState::Waiting;
        while let Some(event) = self.queue.pop_front() {
            let o = self.process_inner(event, true);
            let hit = o.hit_breakpoint;
            outcomes.push(o);
            if hit {
                return outcomes;
            }
        }
        outcomes
    }

    fn process(&mut self, event: ModelEvent) -> FeedOutcome {
        self.process_inner(event, true)
    }

    fn process_inner(&mut self, event: ModelEvent, honor_breakpoints: bool) -> FeedOutcome {
        let mut reactions = Vec::new();
        for binding in &self.gdm.bindings {
            if binding.matcher.matches(&event) {
                apply_reaction(&self.gdm, &mut self.visual, binding.reaction, &event);
                reactions.push(binding.reaction);
            }
        }
        let mut violation_msgs = Vec::new();
        for m in &mut self.monitors {
            if let Some(v) = m.check(&event) {
                violation_msgs.push(v.to_string());
                self.violations.push(v);
            }
        }
        let mut hit = false;
        if honor_breakpoints {
            let mut fired: Option<usize> = None;
            for (i, bp) in self.breakpoints.iter().enumerate() {
                if bp.matcher.matches(&event) {
                    fired = Some(i);
                    break;
                }
            }
            if let Some(i) = fired {
                hit = true;
                self.stats.breakpoint_hits += 1;
                self.state = EngineState::Paused;
                if self.breakpoints[i].one_shot {
                    self.breakpoints.remove(i);
                }
            }
        }
        self.stats.events_processed += 1;
        self.stats.reactions_applied += reactions.len() as u64;
        let violations = violation_msgs.len();
        let time_ns = event.time_ns;
        let seq = self.trace.record(event, reactions, violation_msgs);
        if !self.taps.is_empty() {
            let notice = EngineNotice {
                seq,
                time_ns,
                violations,
                hit_breakpoint: hit,
            };
            self.taps.retain(|tap| tap.send(notice).is_ok());
        }
        FeedOutcome {
            processed: true,
            hit_breakpoint: hit,
            violations,
        }
    }

    /// Replaces the trace backend in **resume** mode: the trace's next
    /// sequence number continues from `store.len()` instead of starting
    /// at zero with deterministic catch-up. This is what a time-travel
    /// replica uses after restoring a checkpoint — re-generated commands
    /// append at the checkpoint boundary rather than being dropped
    /// against an already-persisted prefix.
    pub fn resume_trace_store(&mut self, store: Box<dyn crate::store::TraceStore>) {
        self.trace = ExecutionTrace::resume_with_store(store);
    }

    /// Captures the engine's dynamic state for a checkpoint: animation
    /// state, control state, breakpoints, expectation-monitor cursors,
    /// recorded violations, the paused-command queue and the counters.
    /// The debug model and the trace are not included — the model is
    /// configuration (rebuilt from the spec) and the trace has its own
    /// store.
    pub fn save_state(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            visual: self.visual.clone(),
            state: self.state,
            breakpoints: self.breakpoints.clone(),
            monitors: self.monitors.clone(),
            violations: self.violations.clone(),
            queue: self.queue.clone(),
            stats: self.stats,
        }
    }

    /// Restores a checkpointed engine state (see
    /// [`DebuggerEngine::save_state`]). The trace backend is untouched —
    /// pair with [`DebuggerEngine::resume_trace_store`] /
    /// [`DebuggerEngine::set_trace_store`] as the restore path requires.
    pub fn restore_state(&mut self, state: &EngineCheckpoint) {
        self.visual = state.visual.clone();
        self.state = state.state;
        self.breakpoints = state.breakpoints.clone();
        self.monitors = state.monitors.clone();
        self.violations = state.violations.clone();
        self.queue = state.queue.clone();
        self.stats = state.stats;
    }

    /// Renders the current animation frame as a scene.
    pub fn frame(&self) -> Scene {
        render_gdm(&self.gdm, &self.visual)
    }

    /// Renders the current frame as SVG.
    pub fn frame_svg(&self) -> String {
        render_svg(&self.gdm, &self.visual)
    }

    /// Renders the current frame as ASCII art.
    pub fn frame_ascii(&self) -> String {
        render_ascii(&self.gdm, &self.visual)
    }
}

/// Serializable dynamic state of a [`DebuggerEngine`] — the
/// engine-side half of a session checkpoint. Captures everything that
/// influences future trace entries (paused queue, breakpoints, monitor
/// cursors) plus the presentation state, so a restored engine is
/// indistinguishable from one that never stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    visual: VisualState,
    state: EngineState,
    breakpoints: Vec<Breakpoint>,
    monitors: Vec<ExpectationMonitor>,
    violations: Vec<Violation>,
    queue: VecDeque<ModelEvent>,
    stats: EngineStats,
}

/// Applies one reaction to the animation state — shared by the live
/// engine and the replayer so replays look identical.
pub fn apply_reaction(
    gdm: &DebuggerModel,
    visual: &mut VisualState,
    reaction: ReactionSpec,
    event: &ModelEvent,
) {
    match reaction {
        ReactionSpec::HighlightTarget | ReactionSpec::HighlightSelf => {
            let target = if reaction == ReactionSpec::HighlightTarget {
                event.target_path().unwrap_or_else(|| event.path.clone())
            } else {
                event.path.clone()
            };
            if gdm.element(&target).is_none() {
                return;
            }
            visual.entry(target.clone()).or_default().highlighted = true;
            visual.get_mut(&target).expect("just inserted").dimmed = false;
            for sibling in gdm.siblings(&target) {
                let v = visual.entry(sibling.to_owned()).or_default();
                v.highlighted = false;
                v.dimmed = true;
            }
        }
        ReactionSpec::ShowValue => {
            if let Some(v) = event.value {
                if gdm.element(&event.path).is_some() {
                    visual.entry(event.path.clone()).or_default().value_text = Some(v.to_string());
                }
            }
        }
        ReactionSpec::Pulse => {
            if gdm.element(&event.path).is_some() {
                let e = visual.entry(event.path.clone()).or_default();
                e.pulses = e.pulses.saturating_add(1);
            }
        }
        ReactionSpec::RecordOnly => {}
    }
    // Touch the map so a visual exists for the event path even for
    // record-only events (keeps replay deterministic).
    let _ = visual.entry(event.path.clone()).or_default();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_gdm::{default_bindings, EventKind, EventValue, GdmEdge, GdmElement, GdmPattern};
    use gmdf_render::Rect;

    fn sample_gdm() -> DebuggerModel {
        let mut m = DebuggerModel::new("demo");
        m.bindings = default_bindings();
        m.elements.push(GdmElement {
            path: "A".into(),
            label: "A".into(),
            metaclass: "Actor".into(),
            pattern: GdmPattern::Rectangle,
            parent: None,
            bounds: Rect::new(0.0, 0.0, 500.0, 300.0),
        });
        m.elements.push(GdmElement {
            path: "A/fsm".into(),
            label: "fsm".into(),
            metaclass: "StateMachineBlock".into(),
            pattern: GdmPattern::RoundedRectangle,
            parent: Some(0),
            bounds: Rect::new(20.0, 40.0, 440.0, 220.0),
        });
        for (i, s) in ["Idle", "Run", "Error"].iter().enumerate() {
            m.elements.push(GdmElement {
                path: format!("A/fsm/{s}"),
                label: (*s).into(),
                metaclass: "State".into(),
                pattern: GdmPattern::Circle,
                parent: Some(1),
                bounds: Rect::new(40.0 + 140.0 * i as f64, 80.0, 110.0, 46.0),
            });
        }
        m.edges.push(GdmEdge {
            from: "A/fsm/Idle".into(),
            to: "A/fsm/Run".into(),
            label: None,
            metaclass: "Transition".into(),
        });
        m
    }

    fn enter(t: u64, to: &str) -> ModelEvent {
        ModelEvent::new(t, EventKind::StateEnter, "A/fsm")
            .with_from("Idle")
            .with_to(to)
    }

    #[test]
    fn highlight_moves_with_state_entries() {
        let mut e = DebuggerEngine::new(sample_gdm());
        e.feed(enter(10, "Run"));
        assert!(e.visual()["A/fsm/Run"].highlighted);
        e.feed(enter(20, "Error"));
        assert!(e.visual()["A/fsm/Error"].highlighted);
        assert!(!e.visual()["A/fsm/Run"].highlighted);
        assert!(e.visual()["A/fsm/Run"].dimmed);
        assert_eq!(e.stats().events_processed, 2);
        assert_eq!(e.trace().len(), 2);
    }

    #[test]
    fn show_value_updates_label() {
        let mut gdm = sample_gdm();
        gdm.elements.push(GdmElement {
            path: "A/out/u".into(),
            label: "u".into(),
            metaclass: "SignalPort".into(),
            pattern: GdmPattern::Triangle,
            parent: Some(0),
            bounds: Rect::new(40.0, 200.0, 110.0, 46.0),
        });
        let mut e = DebuggerEngine::new(gdm);
        e.feed(
            ModelEvent::new(5, EventKind::SignalWrite, "A/out/u").with_value(EventValue::Real(2.5)),
        );
        assert_eq!(
            e.visual()["A/out/u"].value_text.as_deref(),
            Some("2.500000")
        );
        let svg = e.frame_svg();
        assert!(svg.contains("u = 2.5"));
    }

    #[test]
    fn breakpoint_pauses_and_queues() {
        let mut e = DebuggerEngine::new(sample_gdm());
        e.add_breakpoint(
            CommandMatcher::kind(EventKind::StateEnter).under("A/fsm"),
            false,
        );
        let o = e.feed(enter(1, "Run"));
        assert!(o.processed && o.hit_breakpoint);
        assert_eq!(e.state(), EngineState::Paused);
        // Further commands queue; the view is frozen on Run.
        let o2 = e.feed(enter(2, "Error"));
        assert!(!o2.processed);
        assert_eq!(e.pending(), 1);
        assert!(e.visual()["A/fsm/Run"].highlighted);
        // Error was dimmed as a sibling but NOT highlighted — the queued
        // command has not been applied.
        assert!(!e.visual()["A/fsm/Error"].highlighted);
    }

    #[test]
    fn step_processes_one_queued_command() {
        let mut e = DebuggerEngine::new(sample_gdm());
        e.add_breakpoint(CommandMatcher::kind(EventKind::StateEnter), false);
        e.feed(enter(1, "Run"));
        e.feed(enter(2, "Error"));
        e.feed(enter(3, "Idle"));
        assert_eq!(e.pending(), 2);
        let o = e.step().unwrap();
        assert!(o.processed);
        assert_eq!(e.pending(), 1);
        assert!(e.visual()["A/fsm/Error"].highlighted);
        assert_eq!(e.state(), EngineState::Paused); // stepping keeps it paused
    }

    #[test]
    fn resume_drains_until_next_breakpoint() {
        let mut e = DebuggerEngine::new(sample_gdm());
        e.add_breakpoint(
            CommandMatcher::kind(EventKind::StateEnter).under("A/fsm"),
            false,
        );
        e.feed(enter(1, "Run")); // pauses
        e.feed(enter(2, "Error"));
        e.feed(enter(3, "Idle"));
        let outcomes = e.resume();
        // First queued command re-hits the breakpoint immediately.
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].hit_breakpoint);
        assert_eq!(e.state(), EngineState::Paused);
        assert_eq!(e.pending(), 1);
        // Without breakpoints, resume drains fully.
        e.clear_breakpoints();
        let outcomes = e.resume();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(e.state(), EngineState::Waiting);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn one_shot_breakpoint_fires_once() {
        let mut e = DebuggerEngine::new(sample_gdm());
        e.add_breakpoint(CommandMatcher::kind(EventKind::StateEnter), true);
        assert!(e.feed(enter(1, "Run")).hit_breakpoint);
        e.resume();
        assert!(!e.feed(enter(2, "Error")).hit_breakpoint);
        assert_eq!(e.stats().breakpoint_hits, 1);
    }

    #[test]
    fn expectations_record_violations() {
        let mut e = DebuggerEngine::new(sample_gdm());
        e.add_expectation(Expectation::AllowedTransitions {
            fsm_path: "A/fsm".into(),
            allowed: [("Idle".to_owned(), "Run".to_owned())]
                .into_iter()
                .collect(),
        });
        assert_eq!(e.feed(enter(1, "Run")).violations, 0);
        let o = e.feed(enter(2, "Error"));
        assert_eq!(o.violations, 1);
        assert_eq!(e.violations().len(), 1);
        assert!(e.trace().entries()[1].violations[0].contains("not in the model"));
    }

    #[test]
    fn frame_renders_current_animation() {
        let mut e = DebuggerEngine::new(sample_gdm());
        e.feed(enter(1, "Run"));
        let art = e.frame_ascii();
        assert!(art.contains("Run"));
        let scene = e.frame();
        assert!(scene.find("A/fsm/Run").is_some());
    }

    #[test]
    fn subscribers_see_processed_commands_only() {
        let mut e = DebuggerEngine::new(sample_gdm());
        let rx = e.subscribe();
        e.add_breakpoint(CommandMatcher::kind(EventKind::StateEnter), false);
        e.feed(enter(1, "Run")); // processed, hits breakpoint
        e.feed(enter(2, "Error")); // queued while paused — no notice yet
        let n1 = rx.try_recv().unwrap();
        assert_eq!(n1.seq, 0);
        assert_eq!(n1.time_ns, 1);
        assert!(n1.hit_breakpoint);
        assert!(rx.try_recv().is_err());
        // Stepping through the queued command notifies it.
        e.step().unwrap();
        let n2 = rx.try_recv().unwrap();
        assert_eq!(n2.seq, 1);
        assert!(!n2.hit_breakpoint); // steps don't honor breakpoints
                                     // The notice cursor addresses the trace delta.
        assert_eq!(e.trace().entries_since(n2.seq).len(), 1);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let mut e = DebuggerEngine::new(sample_gdm());
        let rx = e.subscribe();
        let _rx2 = e.subscribe();
        assert_eq!(e.subscriber_count(), 2);
        drop(rx);
        e.feed(enter(1, "Run"));
        assert_eq!(e.subscriber_count(), 1);
    }

    #[test]
    fn unknown_target_paths_are_tolerated() {
        let mut e = DebuggerEngine::new(sample_gdm());
        let o = e.feed(ModelEvent::new(1, EventKind::StateEnter, "Ghost/fsm").with_to("Nowhere"));
        assert!(o.processed);
        assert!(!e.visual().contains_key("Ghost/fsm/Nowhere"));
    }
}
