//! CI gate over the persisted bench artifacts.
//!
//! ```text
//! bench_check <baseline.json> <candidate.json> [max-regression]
//! bench_check --scan [repo-root]
//! ```
//!
//! `--scan` audits the repo root's `BENCH_*.json` files against the
//! registry of benches CI actually gates: a bench artifact sitting at
//! the root but absent from the registry fails loudly (someone added a
//! persisted bench without wiring its gate), and a registered bench
//! with no full-mode artifact is warned about.
//!
//! The comparison form fails (exit 1) when:
//!
//! * either file is missing or not a valid [`BenchReport`] — a bench
//!   that silently stopped emitting JSON must not pass;
//! * the candidate has no results, or any median is non-finite/≤ 0;
//! * a benchmark present in both reports regressed by more than
//!   `max-regression` × (default 2.0 — generous, because the shim
//!   measures wall clock on shared CI machines);
//! * a comparison row present in both reports lost more than the same
//!   factor of its speedup.
//!
//! New benchmarks (in the candidate but not the baseline) pass — they
//! become part of the baseline when the artifact is checked in. When
//! the two reports were produced in different modes (`quick` vs
//! `full`), numeric comparison is skipped — quick mode shrinks the
//! workload shapes, so the numbers are not commensurable — and only
//! structural validation applies.

use gmdf_bench::report::{read_report, BenchReport};
use std::process::ExitCode;

/// Every bench whose persisted `BENCH_<name>.json` artifact CI gates.
/// `--scan` fails on any root-level bench file not named here.
const REGISTRY: &[&str] = &[
    "analyze",
    "dispatch",
    "fleet_server",
    "trace",
    "wire",
    "metrics",
];

/// Audits `root` for `BENCH_*.json` files that no gate covers.
fn scan(root: &std::path::Path) -> ExitCode {
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_check: cannot scan `{}`: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let mut found: Vec<String> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(stem) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        {
            found.push(stem.strip_suffix(".quick").unwrap_or(stem).to_owned());
        }
    }
    found.sort();
    found.dedup();
    let unregistered: Vec<&String> = found
        .iter()
        .filter(|name| !REGISTRY.contains(&name.as_str()))
        .collect();
    for name in REGISTRY {
        if !found.iter().any(|f| f == name) {
            println!(
                "bench_check: warning — registered bench `{name}` has no BENCH_{name}.json at `{}`",
                root.display()
            );
        }
    }
    if unregistered.is_empty() {
        println!(
            "bench_check: scan ok — {} bench artifact(s) at `{}`, all registered: {}",
            found.len(),
            root.display(),
            found.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        for name in &unregistered {
            eprintln!(
                "bench_check: FAIL bench artifact `BENCH_{name}.json` at `{}` is not in the gate \
                 registry — add it to REGISTRY in bench_check and wire its CI gate",
                root.display()
            );
        }
        ExitCode::FAILURE
    }
}

fn validate(report: &BenchReport, label: &str) -> Result<(), String> {
    if report.results.is_empty() {
        return Err(format!("{label}: no results recorded"));
    }
    for r in &report.results {
        if !r.median_ns.is_finite() || r.median_ns <= 0.0 {
            return Err(format!(
                "{label}: result `{}` has unusable median {}",
                r.name, r.median_ns
            ));
        }
    }
    for c in &report.comparisons {
        if !c.speedup.is_finite() || c.speedup <= 0.0 {
            return Err(format!(
                "{label}: comparison `{}` has unusable speedup {}",
                c.name, c.speedup
            ));
        }
    }
    Ok(())
}

/// Prints the candidate's comparison rows — the headline speedups —
/// so CI logs show the measured numbers, not just pass/fail.
fn print_comparisons(candidate: &BenchReport) {
    for c in &candidate.comparisons {
        println!(
            "bench_check:   comparison `{}`: baseline {:.0} ns, optimized {:.0} ns — {:.1}x",
            c.name, c.baseline_ns, c.optimized_ns, c.speedup
        );
    }
}

fn check(baseline: &BenchReport, candidate: &BenchReport, max_regress: f64) -> Vec<String> {
    let mut failures = Vec::new();
    if baseline.bench != candidate.bench {
        failures.push(format!(
            "bench mismatch: baseline is `{}`, candidate is `{}`",
            baseline.bench, candidate.bench
        ));
    }
    for b in &baseline.results {
        let Some(c) = candidate.results.iter().find(|c| c.name == b.name) else {
            failures.push(format!("benchmark `{}` disappeared", b.name));
            continue;
        };
        if c.median_ns > b.median_ns * max_regress {
            failures.push(format!(
                "`{}` regressed {:.2}x (baseline {:.0} ns, candidate {:.0} ns, limit {max_regress}x)",
                b.name,
                c.median_ns / b.median_ns,
                b.median_ns,
                c.median_ns,
            ));
        }
    }
    for b in &baseline.comparisons {
        let Some(c) = candidate.comparisons.iter().find(|c| c.name == b.name) else {
            failures.push(format!("comparison `{}` disappeared", b.name));
            continue;
        };
        if c.speedup * max_regress < b.speedup {
            failures.push(format!(
                "comparison `{}` speedup fell from {:.2}x to {:.2}x (limit {max_regress}x loss)",
                b.name, b.speedup, c.speedup,
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "--scan") {
        let root = args.get(2).map_or_else(|| ".".to_owned(), Clone::clone);
        return scan(std::path::Path::new(&root));
    }
    let (baseline_path, candidate_path) = match (args.get(1), args.get(2)) {
        (Some(b), Some(c)) => (b.clone(), c.clone()),
        _ => {
            eprintln!(
                "usage: bench_check <baseline.json> <candidate.json> [max-regression]\n       \
                 bench_check --scan [repo-root]"
            );
            return ExitCode::FAILURE;
        }
    };
    let max_regress: f64 = match args.get(3).map(|s| s.parse()) {
        None => 2.0,
        Some(Ok(v)) if v > 1.0 => v,
        Some(_) => {
            eprintln!("max-regression must be a number > 1.0");
            return ExitCode::FAILURE;
        }
    };
    println!("bench_check: gating `{candidate_path}` against baseline `{baseline_path}`");
    let load = |path: &str, label: &str| -> Result<BenchReport, String> {
        let report = read_report(std::path::Path::new(path))?;
        validate(&report, label)?;
        Ok(report)
    };
    let baseline = match load(&baseline_path, "baseline") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let candidate = match load(&candidate_path, "candidate") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.mode != candidate.mode {
        if baseline.bench != candidate.bench {
            eprintln!(
                "bench_check: bench mismatch: baseline is `{}`, candidate is `{}`",
                baseline.bench, candidate.bench
            );
            return ExitCode::FAILURE;
        }
        println!(
            "bench_check: `{}` ok — candidate mode `{}` differs from baseline mode `{}`; \
             structural validation only ({} result(s), {} comparison(s))",
            candidate.bench,
            candidate.mode,
            baseline.mode,
            candidate.results.len(),
            candidate.comparisons.len(),
        );
        print_comparisons(&candidate);
        return ExitCode::SUCCESS;
    }
    let failures = check(&baseline, &candidate, max_regress);
    if failures.is_empty() {
        println!(
            "bench_check: `{}` ok — {} result(s), {} comparison(s), within {max_regress}x of baseline",
            candidate.bench,
            candidate.results.len(),
            candidate.comparisons.len(),
        );
        print_comparisons(&candidate);
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_check: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
