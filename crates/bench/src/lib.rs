//! Shared workload builders for the GMDF benchmark harness.
//!
//! The paper (a tool paper) reports no quantitative tables; every bench in
//! `benches/` regenerates one paper *figure* as a runnable artifact and
//! attaches the quantitative characterization recorded in
//! `EXPERIMENTS.md`. This library builds the parameterized COMDES
//! workloads those benches sweep.

#![warn(missing_docs)]

use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};

/// A ring state machine with `n_states` states, dwelling `dwell_s`
/// seconds per state, as a single-actor system.
pub fn ring_system(n_states: usize, dwell_s: f64, period_ns: u64) -> System {
    let mut fb = FsmBuilder::new().output(Port::int("s"));
    for i in 0..n_states {
        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
    }
    for i in 0..n_states {
        fb = fb.transition(
            &format!("S{i}"),
            &format!("S{}", (i + 1) % n_states),
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        );
    }
    let fsm = fb.initial("S0").build().expect("ring fsm");
    let net = NetworkBuilder::new()
        .output(Port::int("s"))
        .state_machine("ring", fsm)
        .connect("ring.s", "s")
        .expect("endpoint")
        .build()
        .expect("ring net");
    let actor = ActorBuilder::new("Ring", net)
        .output("s", "state_sig")
        .timing(Timing::periodic(period_ns, 0))
        .build()
        .expect("ring actor");
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("ring_sys").with_node(node)
}

/// A dataflow chain of `n_blocks` PID stages as a single-actor system —
/// the compile/abstraction scaling workload.
pub fn chain_system(n_blocks: usize, period_ns: u64) -> System {
    let mut b = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"));
    let mut prev = "x".to_owned();
    for i in 0..n_blocks {
        let name = format!("p{i}");
        b = b.block(
            &name,
            BasicOp::Pid {
                kp: 1.0,
                ki: 0.1,
                kd: 0.01,
                lo: -1e9,
                hi: 1e9,
            },
        );
        b = b.connect(&prev, &format!("{name}.sp")).expect("endpoint");
        prev = format!("{name}.u");
    }
    let net = b
        .connect(&prev, "y")
        .expect("endpoint")
        .build()
        .expect("chain net");
    let actor = ActorBuilder::new("Chain", net)
        .input("x", "in")
        .output("y", "out")
        .timing(Timing::periodic(period_ns, 0))
        .build()
        .expect("chain actor");
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("chain_sys").with_node(node)
}

/// A system with `n_actors` ring actors (multi-instance scaling).
pub fn multi_actor_system(n_actors: usize, n_states: usize) -> System {
    let mut node = NodeSpec::new("ecu", 100_000_000);
    for a in 0..n_actors {
        let mut fb = FsmBuilder::new().output(Port::int("s"));
        for i in 0..n_states {
            fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
        }
        for i in 0..n_states {
            fb = fb.transition(
                &format!("S{i}"),
                &format!("S{}", (i + 1) % n_states),
                Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002 + a as f64 * 0.0005)),
            );
        }
        let fsm = fb.initial("S0").build().expect("fsm");
        let net = NetworkBuilder::new()
            .output(Port::int("s"))
            .state_machine("m", fsm)
            .connect("m.s", "s")
            .expect("endpoint")
            .build()
            .expect("net");
        let actor = ActorBuilder::new(&format!("A{a}"), net)
            .output("s", &format!("sig{a}"))
            .timing(Timing::periodic(1_000_000, a as u8))
            .build()
            .expect("actor");
        node.actors.push(actor);
    }
    System::new("fleet").with_node(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_systems() {
        assert!(ring_system(4, 0.01, 1_000_000).check().is_ok());
        assert!(chain_system(10, 1_000_000).check().is_ok());
        assert!(multi_actor_system(3, 4).check().is_ok());
    }
}
