//! Shared workload builders for the GMDF benchmark harness.
//!
//! The paper (a tool paper) reports no quantitative tables; every bench in
//! `benches/` regenerates one paper *figure* as a runnable artifact and
//! attaches the quantitative characterization recorded in
//! `EXPERIMENTS.md`. This library builds the parameterized COMDES
//! workloads those benches sweep.

#![warn(missing_docs)]

use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};

/// A ring state machine with `n_states` states, dwelling `dwell_s`
/// seconds per state, as a single-actor system.
pub fn ring_system(n_states: usize, dwell_s: f64, period_ns: u64) -> System {
    let mut fb = FsmBuilder::new().output(Port::int("s"));
    for i in 0..n_states {
        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
    }
    for i in 0..n_states {
        fb = fb.transition(
            &format!("S{i}"),
            &format!("S{}", (i + 1) % n_states),
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        );
    }
    let fsm = fb.initial("S0").build().expect("ring fsm");
    let net = NetworkBuilder::new()
        .output(Port::int("s"))
        .state_machine("ring", fsm)
        .connect("ring.s", "s")
        .expect("endpoint")
        .build()
        .expect("ring net");
    let actor = ActorBuilder::new("Ring", net)
        .output("s", "state_sig")
        .timing(Timing::periodic(period_ns, 0))
        .build()
        .expect("ring actor");
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("ring_sys").with_node(node)
}

/// A dataflow chain of `n_blocks` PID stages as a single-actor system —
/// the compile/abstraction scaling workload.
pub fn chain_system(n_blocks: usize, period_ns: u64) -> System {
    let mut b = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"));
    let mut prev = "x".to_owned();
    for i in 0..n_blocks {
        let name = format!("p{i}");
        b = b.block(
            &name,
            BasicOp::Pid {
                kp: 1.0,
                ki: 0.1,
                kd: 0.01,
                lo: -1e9,
                hi: 1e9,
            },
        );
        b = b.connect(&prev, &format!("{name}.sp")).expect("endpoint");
        prev = format!("{name}.u");
    }
    let net = b
        .connect(&prev, "y")
        .expect("endpoint")
        .build()
        .expect("chain net");
    let actor = ActorBuilder::new("Chain", net)
        .input("x", "in")
        .output("y", "out")
        .timing(Timing::periodic(period_ns, 0))
        .build()
        .expect("chain actor");
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("chain_sys").with_node(node)
}

/// A system with `n_actors` ring actors (multi-instance scaling).
pub fn multi_actor_system(n_actors: usize, n_states: usize) -> System {
    let mut node = NodeSpec::new("ecu", 100_000_000);
    for a in 0..n_actors {
        let mut fb = FsmBuilder::new().output(Port::int("s"));
        for i in 0..n_states {
            fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
        }
        for i in 0..n_states {
            fb = fb.transition(
                &format!("S{i}"),
                &format!("S{}", (i + 1) % n_states),
                Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002 + a as f64 * 0.0005)),
            );
        }
        let fsm = fb.initial("S0").build().expect("fsm");
        let net = NetworkBuilder::new()
            .output(Port::int("s"))
            .state_machine("m", fsm)
            .connect("m.s", "s")
            .expect("endpoint")
            .build()
            .expect("net");
        let actor = ActorBuilder::new(&format!("A{a}"), net)
            .output("s", &format!("sig{a}"))
            .timing(Timing::periodic(1_000_000, a as u8))
            .build()
            .expect("actor");
        node.actors.push(actor);
    }
    System::new("fleet").with_node(node)
}

/// A multi-node "fleet node": every node hosts one dwelling ring FSM
/// (cyclic, UART-visible behaviour) plus `gains_per_node` stateless
/// signal-conditioning pipelines (gain → offset → limit → deadband →
/// … chains) consuming the shared stimulus label `u` — quiescent
/// whenever `u` holds still, which is the common case in mostly-idle
/// embedded fleets. This is the simulator-bound workload the
/// event-calendar / memoization benches sweep: per-event dispatch cost
/// scales with `n_nodes × (1 + gains_per_node)` under the legacy scan
/// and O(log n) under the calendar, while the conditioning steps
/// (dozens of VM instructions each, identical footprint every release)
/// are pure memo-hit fodder.
///
/// `period_scale` stretches every period/offset/dwell: larger values
/// model the *sparse* fleet profile — lots of deployed tasks, each
/// sampling at a modest rate — where per-event dispatch cost is the
/// bill, which is exactly the regime an event calendar exists for.
pub fn fleet_node_system(n_nodes: usize, gains_per_node: usize, period_scale: u64) -> System {
    // Guard condition with a realistic arithmetic budget: a Horner-form
    // polynomial of the dwell time (think calibration curves or filter
    // thresholds), ~30 float ops per evaluation over a 2-cell footprint
    // — the shape where skipping a memoized step is a clear win.
    let dwell_poly = |dwell_s: f64| {
        let t = Expr::var(VAR_TIME_IN_STATE);
        let mut poly = t.clone();
        for k in 0..12 {
            poly = poly
                .mul(Expr::Real(1.0 + 0.01 * k as f64))
                .add(t.clone().mul(Expr::Real(0.001 * k as f64)));
        }
        // The polynomial keeps ~t's magnitude (coefficients hover around
        // 1), so the threshold still fires near `dwell_s`.
        poly.ge(Expr::Real(dwell_s))
    };
    let mut system = System::new("fleet_grid");
    for ni in 0..n_nodes {
        let mut node = NodeSpec::new(&format!("ecu{ni}"), 50_000_000);
        let mut fb = FsmBuilder::new().output(Port::int("s"));
        for i in 0..4 {
            fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
        }
        for i in 0..4 {
            fb = fb.transition(
                &format!("S{i}"),
                &format!("S{}", (i + 1) % 4),
                dwell_poly(0.002 * period_scale as f64),
            );
        }
        let fsm = fb.initial("S0").build().expect("ring fsm");
        let net = NetworkBuilder::new()
            .output(Port::int("s"))
            .state_machine("ring", fsm)
            .connect("ring.s", "s")
            .expect("endpoint")
            .build()
            .expect("ring net");
        let ring = ActorBuilder::new(&format!("Ring{ni}"), net)
            .output("s", &format!("state_{ni}"))
            .timing(Timing::periodic(1_000_000 * period_scale, 0))
            .build()
            .expect("ring actor");
        node.actors.push(ring);
        for gi in 0..gains_per_node {
            let mut b = NetworkBuilder::new()
                .input(Port::real("x"))
                .output(Port::real("y"));
            let mut prev = "x".to_owned();
            for si in 0..10 {
                let name = format!("s{si}");
                let op = match si % 4 {
                    0 => BasicOp::Gain {
                        k: 1.0 + (gi + si) as f64 * 0.125,
                    },
                    1 => BasicOp::Offset { c: 0.25 },
                    2 => BasicOp::Limit { lo: -1e6, hi: 1e6 },
                    _ => BasicOp::Deadband { width: 1e-9 },
                };
                b = b.block(&name, op);
                b = b.connect(&prev, &format!("{name}.x")).expect("endpoint");
                prev = format!("{name}.y");
            }
            let net = b
                .connect(&prev, "y")
                .expect("endpoint")
                .build()
                .expect("conditioning net");
            let actor = ActorBuilder::new(&format!("Gain{ni}_{gi}"), net)
                .input("x", "u")
                .output("y", &format!("gout_{ni}_{gi}"))
                // Staggered periods and priorities: releases spread over
                // the timeline and preemption actually happens.
                .timing(Timing {
                    period_ns: [500_000, 750_000, 1_250_000, 2_000_000][gi % 4] * period_scale,
                    offset_ns: (gi as u64) * 61_000 * period_scale,
                    deadline_ns: [500_000, 750_000, 1_250_000, 2_000_000][gi % 4] * period_scale,
                    priority: 1 + (gi % 3) as u8,
                })
                .build()
                .expect("gain actor");
            node.actors.push(actor);
        }
        system = system.with_node(node);
    }
    system
}

pub mod report;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_systems() {
        assert!(ring_system(4, 0.01, 1_000_000).check().is_ok());
        assert!(chain_system(10, 1_000_000).check().is_ok());
        assert!(multi_actor_system(3, 4).check().is_ok());
        assert!(fleet_node_system(4, 5, 1).check().is_ok());
        assert!(fleet_node_system(2, 3, 8).check().is_ok());
    }
}
