//! Machine-readable bench artifacts (`BENCH_*.json` at the repo root).
//!
//! Every JSON-emitting bench drains the vendored criterion shim's
//! result registry into a [`BenchReport`] and persists it with
//! [`write_report`], so perf PRs leave a trajectory: the checked-in
//! file is the *baseline*, a fresh run is the *candidate*, and the
//! `bench_check` binary compares the two in CI (malformed output or a
//! >2× regression fails the job).

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One benchmark line: the unit is nanoseconds per iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Fully-qualified benchmark name (`group/id`).
    pub name: String,
    /// Median of the per-batch means.
    pub median_ns: f64,
    /// Grand mean across all batches.
    pub mean_ns: f64,
}

/// A before/after measurement of one configuration pair — the
/// "speedup" rows perf PRs are judged on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being compared (e.g. `large_fleet_pump`).
    pub name: String,
    /// Median wall nanoseconds of the baseline configuration.
    pub baseline_ns: f64,
    /// Median wall nanoseconds of the optimized configuration.
    pub optimized_ns: f64,
    /// `baseline_ns / optimized_ns`.
    pub speedup: f64,
}

/// The persisted artifact of one bench binary run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Which bench produced this (`fleet_server`, `dispatch`, …).
    pub bench: String,
    /// `full` or `quick` (`GMDF_BENCH_QUICK` set — CI smoke mode).
    pub mode: String,
    /// Criterion-timed benchmark lines.
    pub results: Vec<BenchEntry>,
    /// Explicit before/after configuration comparisons.
    pub comparisons: Vec<Comparison>,
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Builds a report from the criterion registry's drained results.
pub fn report_from(
    bench: &str,
    results: Vec<criterion::BenchResult>,
    comparisons: Vec<Comparison>,
) -> BenchReport {
    BenchReport {
        bench: bench.to_owned(),
        mode: if criterion::quick_mode() {
            "quick".to_owned()
        } else {
            "full".to_owned()
        },
        results: results
            .into_iter()
            .map(|r| BenchEntry {
                name: r.name,
                median_ns: r.median_ns,
                mean_ns: r.mean_ns,
            })
            .collect(),
        comparisons,
    }
}

/// Serializes `report` to `path` (pretty-printed JSON + trailing
/// newline). Panics on I/O failure — benches have no error channel and
/// a silent miss would fake a green CI step.
pub fn write_report(path: &Path, report: &BenchReport) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(path, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// Parses a previously written report.
///
/// # Errors
///
/// Returns a message when the file is unreadable or not a valid report.
pub fn read_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("malformed report {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            bench: "unit".into(),
            mode: "full".into(),
            results: vec![BenchEntry {
                name: "g/x".into(),
                median_ns: 1234.5,
                mean_ns: 1300.0,
            }],
            comparisons: vec![Comparison {
                name: "pump".into(),
                baseline_ns: 2e9,
                optimized_ns: 5e8,
                speedup: 4.0,
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.bench, "unit");
        assert_eq!(back.results.len(), 1);
        assert_eq!(back.results[0].name, "g/x");
        assert!((back.results[0].median_ns - 1234.5).abs() < 1e-9);
        assert!((back.comparisons[0].speedup - 4.0).abs() < 1e-9);
    }
}
