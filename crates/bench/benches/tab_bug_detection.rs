//! T4 — §II: detection of the paper's two bug classes.
//!
//! Reports the detection outcome and *time-to-detection* (in simulated
//! nanoseconds) for a battery of injected design errors (model
//! mutations) and implementation errors (codegen faults), then
//! benchmarks the wall-clock cost of a full detect+classify session.
//! Expected shape: every behavioural fault is detected; faults that only
//! distort values need signal monitoring; classification always
//! attributes the divergence to the right class.

use criterion::{criterion_group, criterion_main, Criterion};
use gmdf::{comdes_allowed_transitions, ChannelMode, Workflow};
use gmdf_bench::ring_system;
use gmdf_codegen::{CompileOptions, Fault, InstrumentOptions};
use gmdf_engine::{BugClass, Expectation};
use gmdf_target::SimConfig;
use std::hint::black_box;

fn detect(faults: Vec<Fault>) -> (usize, Option<u64>, Option<BugClass>) {
    let system = ring_system(4, 0.004, 1_000_000);
    let mut session = Workflow::from_system(system)
        .expect("wf")
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults,
            },
            SimConfig::default(),
        )
        .expect("session");
    for e in comdes_allowed_transitions(session.system()).expect("export") {
        session.engine_mut().add_expectation(e);
    }
    session
        .engine_mut()
        .add_expectation(Expectation::StateSequence {
            fsm_path: "Ring/ring".into(),
            sequence: vec!["S1".into(), "S2".into(), "S3".into(), "S0".into()],
            cyclic: true,
        });
    session.run_for(100_000_000).expect("runs");
    let violations = session.engine().violations();
    let first = violations.first().map(|v| v.time_ns);
    let class = if !session.engine().trace().is_empty() {
        let (c, d) = session.classify_against_model().expect("classify");
        // Only meaningful when something was actually wrong.
        if violations.is_empty() && d.is_none() {
            None
        } else {
            Some(c)
        }
    } else {
        None
    };
    (violations.len(), first, class)
}

fn report_detection_table() {
    eprintln!("[tab4] fault battery over a 100 ms debug window:");
    eprintln!("  fault                      violations  first_at_ns  classified_as");
    let battery: Vec<(&str, Vec<Fault>)> = vec![
        ("none (baseline)", vec![]),
        (
            "swap transition targets",
            vec![Fault::SwapTransitionTargets {
                block_path: "Ring/ring".into(),
            }],
        ),
        (
            "negate guard #0",
            vec![Fault::NegateGuard {
                block_path: "Ring/ring".into(),
                transition: 0,
            }],
        ),
        (
            "skip entry actions",
            vec![Fault::SkipEntryActions {
                block_path: "Ring/ring".into(),
            }],
        ),
        ("drop all emits", vec![Fault::DropEmits]),
    ];
    for (name, faults) in battery {
        let (violations, first, class) = detect(faults);
        eprintln!(
            "  {name:<26} {violations:>10} {:>12} {}",
            first.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            class
                .map(|c| c.to_string())
                .unwrap_or_else(|| "none".into())
        );
    }
}

fn bench_detection_session(c: &mut Criterion) {
    report_detection_table();
    c.bench_function("tab4/detect_and_classify_swap_fault", |b| {
        b.iter(|| {
            black_box(detect(vec![Fault::SwapTransitionTargets {
                block_path: "Ring/ring".into(),
            }]))
        })
    });
    c.bench_function("tab4/clean_session_baseline", |b| {
        b.iter(|| black_box(detect(vec![])))
    });
}

criterion_group!(benches, bench_detection_session);
criterion_main!(benches);
