//! F4 — paper Fig. 4: the abstraction guide.
//!
//! Measures the abstraction pipeline: exporting the input model, pairing
//! metaclasses with patterns, and deriving the laid-out GDM — swept over
//! model size ("a GDM can be obtained automatically").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdf::comdes_abstraction;
use gmdf_bench::{chain_system, multi_actor_system, ring_system};
use gmdf_comdes::export_system;
use std::hint::black_box;

fn bench_export(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/export");
    for n in [2usize, 8, 32] {
        let system = multi_actor_system(n, 6);
        g.bench_with_input(BenchmarkId::new("actors", n), &system, |b, sys| {
            b.iter(|| export_system(black_box(sys)).expect("exports"))
        });
    }
    g.finish();
}

fn bench_derive_gdm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/derive");
    let abstraction = comdes_abstraction();
    for (name, system) in [
        ("ring16", ring_system(16, 0.01, 1_000_000)),
        ("chain40", chain_system(40, 1_000_000)),
        ("fleet8x6", multi_actor_system(8, 6)),
        // The fleet-boot shape: many identical actors, where the layout
        // pass (edge-connectivity + subtree sizing) dominates derive.
        ("fleet32x8", multi_actor_system(32, 8)),
    ] {
        let (_, model) = export_system(&system).expect("exports");
        g.bench_with_input(BenchmarkId::new("model", name), &model, |b, m| {
            b.iter(|| black_box(abstraction.derive(black_box(m), "bench gdm")))
        });
    }
    g.finish();
}

fn bench_full_abstraction_pipeline(c: &mut Criterion) {
    let system = multi_actor_system(4, 8);
    c.bench_function("fig4/system_to_gdm", |b| {
        b.iter(|| {
            let (_, model) = export_system(black_box(&system)).expect("exports");
            black_box(comdes_abstraction().derive(&model, "bench"))
        })
    });
    // One-time element-count report for EXPERIMENTS.md.
    let (_, model) = export_system(&system).unwrap();
    let gdm = comdes_abstraction().derive(&model, "bench");
    eprintln!(
        "[fig4] fleet 4x8: {} model objects → {} GDM elements, {} edges",
        model.len(),
        gdm.elements.len(),
        gdm.edges.len()
    );
}

criterion_group!(
    benches,
    bench_export,
    bench_derive_gdm,
    bench_full_abstraction_pipeline
);
criterion_main!(benches);
