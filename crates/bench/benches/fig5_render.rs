//! F5 — paper Fig. 5: the animated canvas (GEF in the prototype).
//!
//! Measures animation frame rendering — SVG vs ASCII backends — as the
//! scene grows, plus the cost of one animation step (reaction + re-render),
//! which bounds the debugger's display frame rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdf::comdes_abstraction;
use gmdf_bench::multi_actor_system;
use gmdf_comdes::export_system;
use gmdf_engine::DebuggerEngine;
use gmdf_gdm::{render_ascii, render_svg, DebuggerModel, EventKind, ModelEvent, VisualState};
use std::hint::black_box;

fn gdm_of(n_actors: usize) -> DebuggerModel {
    let system = multi_actor_system(n_actors, 6);
    let (_, model) = export_system(&system).expect("exports");
    let mut gdm = comdes_abstraction().derive(&model, "render bench");
    gdm.strip_path_prefix(2);
    gdm
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/frame");
    for n in [2usize, 8, 24] {
        let gdm = gdm_of(n);
        let visual = VisualState::new();
        g.bench_with_input(BenchmarkId::new("svg", n), &gdm, |b, gdm| {
            b.iter(|| black_box(render_svg(gdm, &visual)))
        });
        g.bench_with_input(BenchmarkId::new("ascii", n), &gdm, |b, gdm| {
            b.iter(|| black_box(render_ascii(gdm, &visual)))
        });
    }
    g.finish();
}

fn bench_animation_step(c: &mut Criterion) {
    // One step = feed a state-enter command, re-render the frame.
    let gdm = gdm_of(8);
    c.bench_function("fig5/animation_step", |b| {
        let mut engine = DebuggerEngine::new(gdm.clone());
        let mut k = 0u64;
        b.iter(|| {
            let ev =
                ModelEvent::new(k, EventKind::StateEnter, "A0/m").with_to(&format!("S{}", k % 6));
            k += 1;
            engine.feed(black_box(ev));
            black_box(engine.frame_svg())
        })
    });
    let gdm = gdm_of(8);
    let svg = render_svg(&gdm, &VisualState::new());
    eprintln!(
        "[fig5] fleet 8x6 frame: {} GDM elements, SVG {} bytes",
        gdm.elements.len(),
        svg.len()
    );
}

criterion_group!(benches, bench_backends, bench_animation_step);
criterion_main!(benches);
