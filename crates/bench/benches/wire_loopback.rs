//! Wire-protocol loopback: what remote attach costs on localhost TCP.
//!
//! Measurements:
//!
//! * `wire/codec_trace_delta64` — pure encode + deframe + decode of a
//!   64-entry `TraceDelta` frame (the protocol's dominant payload), no
//!   socket, fresh buffers per frame (the v3 streamer's allocation
//!   pattern);
//! * `wire/codec_trace_delta64_reuse` — the same codec through
//!   `encode_frame_into` with warm caller-owned buffers (the v4
//!   streamer's steady state);
//! * `wire/snapshot_roundtrip` — one counter snapshot command →
//!   mailbox → reply frame, full client/server round trip over
//!   loopback TCP;
//! * `wire/event_stream_per_event` — a pumped session streaming its
//!   broadcast over the wire; wall time divided by events received
//!   (manual row: the horizon run is not an `iter`-able unit);
//! * `wire/multiplexed_event_stream_per_event` — eight sessions
//!   streaming concurrently over ONE connection (one streamer thread);
//!   wall time divided by events received;
//! * `wire/fanout_per_client_per_event` — many concurrent clients
//!   fanned over a fleet on one listener, each multiplexing several
//!   attaches; wall time divided by total events delivered — the
//!   per-client lag proxy under fan-out load;
//! * `wire/fanout_connections` — the concurrent-connection count the
//!   fan-out row was measured at (a count, not a latency; kept as a
//!   positive "median" so `bench_check` gates its presence);
//! * comparison `wire/threads_per_watched_session` — server threads
//!   per watched session, v3 (one connection + streamer pair per
//!   session) vs v4 (one pair per connection, many sessions each).
//!
//! Persists `BENCH_wire.json` at the repo root — regenerate with
//! `cargo bench -p gmdf-bench --bench wire_loopback`. With
//! `GMDF_BENCH_QUICK=1` it writes `BENCH_wire.quick.json` (smaller
//! horizon and fan-out, same shape), the CI baseline.

use criterion::{criterion_group, Criterion};
use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_bench::report::{repo_root, report_from, write_report, Comparison};
use gmdf_bench::ring_system;
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_engine::TraceEntry;
use gmdf_gdm::{EventKind, ModelEvent};
use gmdf_server::proto::{
    decode_payload, encode_frame, encode_frame_into, FrameDecoder, ServerFrame,
};
use gmdf_server::{DebugServer, EngineEvent, ServerConfig, SessionId, WireClient, WireServer};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

/// Sessions multiplexed on the single connection of the
/// `multiplexed_event_stream_per_event` row — also the denominator of
/// the `threads_per_watched_session` comparison.
const MUX_SESSIONS: usize = 8;

fn session() -> DebugSession {
    Workflow::from_system(ring_system(5, 0.001, 1_000_000))
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            gmdf_target::SimConfig::default(),
        )
        .expect("session boots")
}

fn delta_frame(entries: usize) -> ServerFrame {
    ServerFrame::Event {
        event: EngineEvent::TraceDelta {
            session: 0,
            entries: (0..entries as u64)
                .map(|seq| TraceEntry {
                    seq,
                    event: ModelEvent::new(seq * 1_000, EventKind::StateEnter, "node/actor/fsm")
                        .with_to("Run"),
                    reactions: vec![],
                    violations: vec![],
                })
                .collect(),
        },
    }
}

fn bench_wire(c: &mut Criterion) {
    let server = Arc::new(DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 1_000_000,
        ..ServerConfig::default()
    }));
    let handle = server.add_session(session());
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");

    let mut group = c.benchmark_group("wire");
    let frame = delta_frame(64);
    // Allocation count, fresh-buffer path (what the v3 streamer did per
    // event frame): one `String` grown for the JSON text + one `Vec`
    // for the length-prefixed bytes = 2 buffer allocations per frame,
    // on top of the serializer's Content tree.
    group.bench_function("codec_trace_delta64", |b| {
        b.iter(|| {
            let bytes = encode_frame(black_box(&frame)).expect("fits in a frame");
            let mut decoder = FrameDecoder::new();
            decoder.feed(&bytes);
            let payload = decoder.next_payload().expect("valid").expect("complete");
            decode_payload::<ServerFrame>(&payload).expect("decodes")
        });
    });
    // Allocation count, reuse path (the v4 streamer's steady state):
    // both buffers are warm after the first frame, so 0 buffer
    // allocations per frame — only the serializer's Content tree
    // remains. Same deframe + decode tail as the row above, so the
    // delta between the two rows is exactly the encode-side reuse.
    group.bench_function("codec_trace_delta64_reuse", |b| {
        let mut json = String::new();
        let mut out: Vec<u8> = Vec::new();
        b.iter(|| {
            out.clear();
            encode_frame_into(black_box(&frame), &mut json, &mut out).expect("fits in a frame");
            let mut decoder = FrameDecoder::new();
            decoder.feed(&out);
            let payload = decoder.next_payload().expect("valid").expect("complete");
            decode_payload::<ServerFrame>(&payload).expect("decodes")
        });
    });
    group.bench_function("snapshot_roundtrip", |b| {
        b.iter(|| {
            client
                .snapshot(handle.id(), false, WAIT)
                .expect("snapshot")
                .now_ns
        });
    });
    group.finish();
}

/// Runs every session in `ids` for `horizon_ns` and drains `client`
/// until each has delivered its end-of-run `Idle`. Returns events
/// received (all sessions merged).
fn run_and_drain(client: &mut WireClient, ids: &[SessionId], horizon_ns: u64) -> usize {
    for &id in ids {
        client.run_for(id, horizon_ns).expect("run");
    }
    let mut pending: BTreeSet<SessionId> = ids.iter().copied().collect();
    let mut events = 0usize;
    while !pending.is_empty() {
        match client.next_event(WAIT) {
            Ok(event) => {
                events += 1;
                if let EngineEvent::Idle { session, .. } = event {
                    pending.remove(&session);
                }
            }
            Err(e) => panic!("stream failed: {e}"),
        }
    }
    events
}

/// Streams one pumped horizon over the wire and returns
/// `(ns_per_event, events)`.
fn stream_throughput() -> (f64, usize) {
    let horizon_ns: u64 = if criterion::quick_mode() {
        20_000_000
    } else {
        200_000_000
    };
    let server = Arc::new(DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 500_000,
        ..ServerConfig::default()
    }));
    let handle = server.add_session(session());
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");
    let t0 = Instant::now();
    let events = run_and_drain(&mut client, &[handle.id()], horizon_ns);
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    eprintln!(
        "[wire_loopback] streamed {events} events over {} ms of target time in {:.2} ms wall",
        horizon_ns / 1_000_000,
        elapsed_ns / 1e6
    );
    (elapsed_ns / events.max(1) as f64, events)
}

/// [`MUX_SESSIONS`] sessions streaming concurrently over ONE
/// connection — one socket, one streamer thread, session-tagged frames
/// demultiplexed client-side. Returns `(ns_per_event, events)`.
fn multiplexed_stream_throughput() -> (f64, usize) {
    let horizon_ns: u64 = if criterion::quick_mode() {
        5_000_000
    } else {
        25_000_000
    };
    let server = Arc::new(DebugServer::start(ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        ..ServerConfig::default()
    }));
    let ids: Vec<SessionId> = (0..MUX_SESSIONS)
        .map(|_| server.add_session(session()).id())
        .collect();
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach_many(&ids).expect("attach fleet");
    let t0 = Instant::now();
    let events = run_and_drain(&mut client, &ids, horizon_ns);
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    eprintln!(
        "[wire_loopback] multiplexed {events} events from {MUX_SESSIONS} sessions over one \
         connection in {:.2} ms wall",
        elapsed_ns / 1e6
    );
    (elapsed_ns / events.max(1) as f64, events)
}

/// Fan-out: many concurrent clients on one listener, each multiplexing
/// several attaches over a shared fleet. Returns
/// `(ns_per_event_across_all_clients, clients)`.
fn fanout_throughput() -> (f64, usize) {
    let (clients, fleet, horizon_ns): (usize, usize, u64) = if criterion::quick_mode() {
        (16, 8, 2_000_000)
    } else {
        (200, 32, 5_000_000)
    };
    let attaches_per_client = 2usize;
    let server = Arc::new(DebugServer::start(ServerConfig {
        workers: 2,
        slice_ns: 500_000,
        ..ServerConfig::default()
    }));
    let ids: Vec<SessionId> = (0..fleet)
        .map(|_| server.add_session(session()).id())
        .collect();
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    // All connections are live and attached before the fleet runs, so
    // the measured window is pure streaming fan-out.
    let mut pool: Vec<(WireClient, Vec<SessionId>)> = (0..clients)
        .map(|i| {
            let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
            let watch: Vec<SessionId> = (0..attaches_per_client)
                .map(|k| ids[(i + k) % fleet])
                .collect();
            client.attach_many(&watch).expect("attach");
            (client, watch)
        })
        .collect();
    let t0 = Instant::now();
    let mut driver = WireClient::connect(wire.local_addr()).expect("handshake");
    for &id in &ids {
        driver.run_for(id, horizon_ns).expect("run");
    }
    let mut events = 0usize;
    for (client, watch) in &mut pool {
        let mut pending: BTreeSet<SessionId> = watch.iter().copied().collect();
        while !pending.is_empty() {
            match client.next_event(WAIT) {
                Ok(event) => {
                    events += 1;
                    if let EngineEvent::Idle { session, .. } = event {
                        pending.remove(&session);
                    }
                }
                Err(e) => panic!("fan-out stream failed: {e}"),
            }
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    eprintln!(
        "[wire_loopback] fanned {events} events to {clients} clients ({attaches_per_client} \
         attaches each) over a {fleet}-session fleet in {:.2} ms wall",
        elapsed_ns / 1e6
    );
    (elapsed_ns / events.max(1) as f64, clients)
}

criterion_group!(benches, bench_wire);

/// Median and mean of repeated single-shot throughput runs — one
/// pumped horizon is not an `iter`-able unit, so robustness comes from
/// repeating the whole scenario (fresh server each time) instead.
fn sampled(runs: usize, mut one: impl FnMut() -> f64) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..runs).map(|_| one()).collect();
    samples.sort_by(f64::total_cmp);
    let median = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2.0
    };
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (median, mean)
}

fn main() {
    benches();
    let runs = if criterion::quick_mode() { 3 } else { 5 };
    let (stream_median, stream_mean) = sampled(runs, || stream_throughput().0);
    let (mux_median, mux_mean) = sampled(runs, || multiplexed_stream_throughput().0);
    let mut connections = 0usize;
    let (fanout_median, fanout_mean) = sampled(3, || {
        let (ns, conns) = fanout_throughput();
        connections = conns;
        ns
    });
    let mut results = criterion::take_results();
    results.push(criterion::BenchResult {
        name: "wire/event_stream_per_event".to_owned(),
        median_ns: stream_median,
        mean_ns: stream_mean,
    });
    results.push(criterion::BenchResult {
        name: "wire/multiplexed_event_stream_per_event".to_owned(),
        median_ns: mux_median,
        mean_ns: mux_mean,
    });
    results.push(criterion::BenchResult {
        name: "wire/fanout_per_client_per_event".to_owned(),
        median_ns: fanout_median,
        mean_ns: fanout_mean,
    });
    // A count, not a latency: how many concurrent connections the
    // fan-out row was measured at. Kept as a positive "median" so the
    // gate notices if the soak silently shrinks.
    results.push(criterion::BenchResult {
        name: "wire/fanout_connections".to_owned(),
        median_ns: connections as f64,
        mean_ns: connections as f64,
    });
    // Server threads per watched session: wire v3 needed one
    // connection (reader + streamer) per session = 2.0; v4 amortizes
    // one reader/streamer pair over every session multiplexed on the
    // connection.
    let threads_v3 = 2.0;
    let threads_v4 = 2.0 / MUX_SESSIONS as f64;
    let comparisons = vec![Comparison {
        name: "wire/threads_per_watched_session".to_owned(),
        baseline_ns: threads_v3,
        optimized_ns: threads_v4,
        speedup: threads_v3 / threads_v4,
    }];
    let report = report_from("wire", results, comparisons);
    let name = if criterion::quick_mode() {
        "BENCH_wire.quick.json"
    } else {
        "BENCH_wire.json"
    };
    write_report(&repo_root().join(name), &report);
}
