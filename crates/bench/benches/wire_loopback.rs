//! Wire-protocol loopback: what remote attach costs on localhost TCP.
//!
//! Three measurements:
//!
//! * `wire/codec_trace_delta64` — pure encode + deframe + decode of a
//!   64-entry `TraceDelta` frame (the protocol's dominant payload), no
//!   socket;
//! * `wire/snapshot_roundtrip` — one counter snapshot command →
//!   mailbox → reply frame, full client/server round trip over
//!   loopback TCP;
//! * `wire/event_stream_per_event` — a pumped session streaming its
//!   broadcast over the wire; wall time divided by events received
//!   (manual row: the horizon run is not an `iter`-able unit).
//!
//! Persists `BENCH_wire.json` at the repo root — regenerate with
//! `cargo bench -p gmdf-bench --bench wire_loopback`. With
//! `GMDF_BENCH_QUICK=1` it writes `BENCH_wire.quick.json` (smaller
//! horizon, same shape), the CI baseline.

use criterion::{criterion_group, Criterion};
use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_bench::report::{repo_root, report_from, write_report};
use gmdf_bench::ring_system;
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_engine::TraceEntry;
use gmdf_gdm::{EventKind, ModelEvent};
use gmdf_server::proto::{decode_payload, encode_frame, FrameDecoder, ServerFrame};
use gmdf_server::{DebugServer, EngineEvent, ServerConfig, WireClient, WireServer};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn session() -> DebugSession {
    Workflow::from_system(ring_system(5, 0.001, 1_000_000))
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            gmdf_target::SimConfig::default(),
        )
        .expect("session boots")
}

fn delta_frame(entries: usize) -> ServerFrame {
    ServerFrame::Event {
        event: EngineEvent::TraceDelta {
            session: 0,
            entries: (0..entries as u64)
                .map(|seq| TraceEntry {
                    seq,
                    event: ModelEvent::new(seq * 1_000, EventKind::StateEnter, "node/actor/fsm")
                        .with_to("Run"),
                    reactions: vec![],
                    violations: vec![],
                })
                .collect(),
        },
    }
}

fn bench_wire(c: &mut Criterion) {
    let server = Arc::new(DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 1_000_000,
        ..ServerConfig::default()
    }));
    let handle = server.add_session(session());
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");

    let mut group = c.benchmark_group("wire");
    let frame = delta_frame(64);
    group.bench_function("codec_trace_delta64", |b| {
        b.iter(|| {
            let bytes = encode_frame(black_box(&frame)).expect("fits in a frame");
            let mut decoder = FrameDecoder::new();
            decoder.feed(&bytes);
            let payload = decoder.next_payload().expect("valid").expect("complete");
            decode_payload::<ServerFrame>(&payload).expect("decodes")
        });
    });
    group.bench_function("snapshot_roundtrip", |b| {
        b.iter(|| client.snapshot(false, WAIT).expect("snapshot").now_ns);
    });
    group.finish();
}

/// Streams one pumped horizon over the wire and returns
/// `(ns_per_event, events)`.
fn stream_throughput() -> (f64, usize) {
    let horizon_ns: u64 = if criterion::quick_mode() {
        20_000_000
    } else {
        200_000_000
    };
    let server = Arc::new(DebugServer::start(ServerConfig {
        workers: 1,
        slice_ns: 500_000,
        ..ServerConfig::default()
    }));
    let handle = server.add_session(session());
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let mut client = WireClient::connect(wire.local_addr()).expect("handshake");
    client.attach(handle.id()).expect("attach");
    let t0 = Instant::now();
    client.run_for(horizon_ns).expect("run");
    let mut events = 0usize;
    loop {
        match client.next_event(WAIT) {
            Ok(EngineEvent::Idle { .. }) => {
                events += 1;
                break;
            }
            Ok(_) => events += 1,
            Err(e) => panic!("stream failed: {e}"),
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    eprintln!(
        "[wire_loopback] streamed {events} events over {} ms of target time in {:.2} ms wall",
        horizon_ns / 1_000_000,
        elapsed_ns / 1e6
    );
    (elapsed_ns / events.max(1) as f64, events)
}

criterion_group!(benches, bench_wire);

fn main() {
    benches();
    let (per_event_ns, _events) = stream_throughput();
    let mut results = criterion::take_results();
    results.push(criterion::BenchResult {
        name: "wire/event_stream_per_event".to_owned(),
        median_ns: per_event_ns,
        mean_ns: per_event_ns,
    });
    let report = report_from("wire", results, vec![]);
    let name = if criterion::quick_mode() {
        "BENCH_wire.quick.json"
    } else {
        "BENCH_wire.json"
    };
    write_report(&repo_root().join(name), &report);
}
