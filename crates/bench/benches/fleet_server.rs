//! Fleet scaling: the multi-session debug server vs sequential pumping,
//! and the event-calendar / step-memo speedup on a simulator-bound
//! large fleet.
//!
//! Two workloads:
//!
//! * the original **ring fleet** (N single-node ring-FSM sessions) —
//!   the server-vs-sequential wall-clock comparison from PR 2;
//! * the **large fleet** (`fleet_node_system`: multi-node sessions with
//!   dozens of tasks each, mostly quiescent) — the configuration the
//!   calendar dispatcher and VM step memoization target. It is measured
//!   twice, once under `DispatchMode::LegacyScan` + `memo_steps: false`
//!   (the pre-calendar simulator) and once under the defaults, and the
//!   pair lands in `BENCH_fleet_server.json` as a `Comparison` row.
//!
//! This bench persists `BENCH_fleet_server.json` at the repo root —
//! regenerate with `cargo bench -p gmdf-bench --bench fleet_server`.
//! With `GMDF_BENCH_QUICK=1` it measures the smaller CI-smoke shape and
//! writes `BENCH_fleet_server.quick.json` instead, so each mode keeps a
//! numerically comparable checked-in baseline.

use criterion::{criterion_group, BenchmarkId, Criterion};
use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_bench::report::{repo_root, report_from, write_report, Comparison};
use gmdf_bench::{fleet_node_system, ring_system};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::SignalValue;
use gmdf_server::{DebugServer, ServerConfig};
use gmdf_target::{DispatchMode, SimConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

const HORIZON_NS: u64 = 10_000_000;

fn connect(system: gmdf_comdes::System, sim: SimConfig) -> DebugSession {
    Workflow::from_system(system)
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            sim,
        )
        .expect("session boots")
}

fn fleet(n: usize) -> Vec<DebugSession> {
    (0..n)
        .map(|i| {
            connect(
                ring_system(3 + i % 5, 0.001, 1_000_000),
                SimConfig::default(),
            )
        })
        .collect()
}

fn pump_sequential(sessions: Vec<DebugSession>, horizon_ns: u64) -> usize {
    let mut fed = 0;
    for mut session in sessions {
        fed += session.run_for(horizon_ns).expect("runs").events_fed;
    }
    fed
}

fn pump_server(sessions: Vec<DebugSession>, workers: usize) -> usize {
    let server = DebugServer::start(ServerConfig {
        workers,
        slice_ns: 1_000_000,
        ..ServerConfig::default()
    });
    let handles: Vec<_> = sessions
        .into_iter()
        .map(|s| server.add_session(s))
        .collect();
    for handle in &handles {
        handle.run_for(HORIZON_NS).expect("send");
    }
    let mut fed = 0;
    for handle in &handles {
        handle.wait_idle(Duration::from_secs(120)).expect("idle");
        fed += handle
            .stats(Duration::from_secs(120))
            .expect("stats")
            .events_fed as usize;
    }
    fed
}

fn report_fleet_table() {
    eprintln!("[fleet_server] fleet of N sessions over a 10 ms horizon, wall time:");
    eprintln!("  sessions  sequential_ms  server4_ms  events_fed");
    for n in [8usize, 32] {
        let t0 = Instant::now();
        let fed_seq = pump_sequential(fleet(n), HORIZON_NS);
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let fed_srv = pump_server(fleet(n), 4);
        let srv_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(fed_seq, fed_srv, "scheduler must not change behaviour");
        eprintln!("  {n:>8} {seq_ms:>14.2} {srv_ms:>11.2} {fed_seq:>11}");
    }
}

// -- the large-fleet configuration ------------------------------------------

/// The shape of the simulator-bound fleet:
/// `(sessions, nodes/session, tasks-1/node, period scale, horizon_ns,
/// reps)` — sized down in quick mode so the CI smoke step stays cheap.
///
/// Period scale 8 (gain periods 4–16 ms) plus per-board clock jitter is
/// the *sparse, de-harmonized* profile of a real fleet: hundreds of
/// deployed tasks whose release instants rarely coincide. That is the
/// regime the event calendar exists for — a full rescan pays
/// O(nodes × tasks) at (nearly) every job, the calendar O(log n).
fn large_fleet_shape() -> (usize, usize, usize, u64, u64, usize) {
    // Odd rep counts: `time_large_fleet` records the median repetition,
    // and an even count would make that the slower (worst) sample.
    if criterion::quick_mode() {
        (1, 8, 7, 4, 100_000_000, 3)
    } else {
        (2, 24, 15, 8, 800_000_000, 3)
    }
}

fn large_fleet_config(optimized: bool) -> SimConfig {
    let base = SimConfig {
        // Independent boards drift: ±300 µs of release jitter, identical
        // in both configurations (it changes the workload, not the
        // contest).
        clock_jitter_ns: 300_000,
        ..SimConfig::default()
    };
    if optimized {
        base // Calendar dispatch + step memo (the defaults)
    } else {
        SimConfig {
            dispatch: DispatchMode::LegacyScan,
            memo_steps: false,
            ..base
        }
    }
}

fn large_fleet(sim: SimConfig) -> Vec<DebugSession> {
    let (sessions, nodes, gains, scale, _, _) = large_fleet_shape();
    (0..sessions)
        .map(|_| {
            let mut s = connect(fleet_node_system(nodes, gains, scale), sim);
            // One stimulus plateau: the gain stages latch it and go
            // quiescent — the mostly-idle fleet profile.
            s.schedule_signal(0, "u", SignalValue::Real(2.5))
                .expect("label u");
            s
        })
        .collect()
}

/// Wall-clock median of pumping the large fleet sequentially under
/// `sim`, over `reps` repetitions; also returns the events fed (must be
/// identical across configurations — the knobs are behaviour-neutral).
fn time_large_fleet(sim: SimConfig) -> (f64, usize) {
    let (_, _, _, _, horizon_ns, reps) = large_fleet_shape();
    let mut times = Vec::with_capacity(reps);
    let mut fed = 0;
    for _ in 0..reps {
        let sessions = large_fleet(sim);
        let t0 = Instant::now();
        fed = pump_sequential(sessions, horizon_ns);
        times.push(t0.elapsed().as_nanos() as f64);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], fed)
}

fn large_fleet_comparison() -> Comparison {
    let (sessions, nodes, gains, _, horizon_ns, _) = large_fleet_shape();
    let (baseline_ns, fed_base) = time_large_fleet(large_fleet_config(false));
    let (optimized_ns, fed_opt) = time_large_fleet(large_fleet_config(true));
    assert_eq!(fed_base, fed_opt, "calendar/memo must not change behaviour");
    let speedup = baseline_ns / optimized_ns;
    eprintln!(
        "[fleet_server] large fleet: {sessions} sessions × {nodes} nodes × {} tasks, \
         {} ms horizon",
        gains + 1,
        horizon_ns / 1_000_000
    );
    eprintln!(
        "  legacy scan + no memo: {:>9.2} ms   calendar + memo: {:>9.2} ms   speedup: {speedup:.2}x",
        baseline_ns / 1e6,
        optimized_ns / 1e6
    );
    Comparison {
        name: "large_fleet_pump".to_owned(),
        baseline_ns,
        optimized_ns,
        speedup,
    }
}

fn bench_fleet(c: &mut Criterion) {
    report_fleet_table();
    let mut group = c.benchmark_group("fleet_server");
    // Sessions are consumed by a run, so each iteration must rebuild the
    // fleet (the vendored criterion shim has no iter_batched to hoist
    // setup). The `build_only` baseline makes the construction share of
    // every other line explicit — subtract it to compare pump costs.
    group.bench_with_input(BenchmarkId::from_parameter("build_only32"), &32, |b, &n| {
        b.iter(|| black_box(fleet(n)).len());
    });
    for &n in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::new("server4", n), &n, |b, &n| {
            b.iter(|| black_box(pump_server(fleet(n), 4)));
        });
    }
    group.bench_with_input(BenchmarkId::from_parameter("sequential32"), &32, |b, &n| {
        b.iter(|| black_box(pump_sequential(fleet(n), HORIZON_NS)));
    });
    group.finish();
}

criterion_group!(benches, bench_fleet);

fn main() {
    benches();
    let comparison = large_fleet_comparison();
    let mut results = criterion::take_results();
    // Pump-only trend lines for the large fleet, taken from the
    // comparison's repetition medians. Deliberately NOT criterion rows:
    // a `b.iter` line would have to rebuild the fleet inside the timed
    // closure (the shim has no iter_batched), and compile/boot cost
    // would dilute exactly the dispatch signal these lines exist to
    // track.
    results.push(criterion::BenchResult {
        name: "fleet_server/large_fleet_pump_scan".to_owned(),
        median_ns: comparison.baseline_ns,
        mean_ns: comparison.baseline_ns,
    });
    results.push(criterion::BenchResult {
        name: "fleet_server/large_fleet_pump_calendar_memo".to_owned(),
        median_ns: comparison.optimized_ns,
        mean_ns: comparison.optimized_ns,
    });
    let report = report_from("fleet_server", results, vec![comparison]);
    // Full and quick mode measure different shapes, so each mode keeps
    // its own checked-in baseline — CI (quick) gets a numerically
    // comparable file instead of a mode mismatch.
    let name = if criterion::quick_mode() {
        "BENCH_fleet_server.quick.json"
    } else {
        "BENCH_fleet_server.json"
    };
    write_report(&repo_root().join(name), &report);
}
