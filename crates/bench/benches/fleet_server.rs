//! Fleet scaling: the multi-session debug server vs sequential pumping.
//!
//! The "heavy traffic" workload the server opens up: N independent debug
//! sessions advanced over the same target horizon. The table compares
//! wall time for (a) one thread pumping the fleet session by session and
//! (b) a 4-worker `DebugServer` slicing them round-robin — same traces,
//! different wall clock. Criterion then times the server path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_bench::ring_system;
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_server::{DebugServer, ServerConfig};
use gmdf_target::SimConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

const HORIZON_NS: u64 = 10_000_000;

fn fleet(n: usize) -> Vec<DebugSession> {
    (0..n)
        .map(|i| {
            Workflow::from_system(ring_system(3 + i % 5, 0.001, 1_000_000))
                .expect("valid system")
                .default_abstraction()
                .default_commands()
                .connect(
                    ChannelMode::Active,
                    CompileOptions {
                        instrument: InstrumentOptions::behavior(),
                        faults: vec![],
                    },
                    SimConfig::default(),
                )
                .expect("session boots")
        })
        .collect()
}

fn pump_sequential(sessions: Vec<DebugSession>) -> usize {
    let mut fed = 0;
    for mut session in sessions {
        fed += session.run_for(HORIZON_NS).expect("runs").events_fed;
    }
    fed
}

fn pump_server(sessions: Vec<DebugSession>, workers: usize) -> usize {
    let server = DebugServer::start(ServerConfig {
        workers,
        slice_ns: 1_000_000,
    });
    let handles: Vec<_> = sessions
        .into_iter()
        .map(|s| server.add_session(s))
        .collect();
    for handle in &handles {
        handle.run_for(HORIZON_NS).expect("send");
    }
    let mut fed = 0;
    for handle in &handles {
        handle.wait_idle(Duration::from_secs(120)).expect("idle");
        fed += handle
            .stats(Duration::from_secs(120))
            .expect("stats")
            .events_fed as usize;
    }
    fed
}

fn report_fleet_table() {
    eprintln!("[fleet_server] fleet of N sessions over a 10 ms horizon, wall time:");
    eprintln!("  sessions  sequential_ms  server4_ms  events_fed");
    for n in [8usize, 32] {
        let t0 = Instant::now();
        let fed_seq = pump_sequential(fleet(n));
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let fed_srv = pump_server(fleet(n), 4);
        let srv_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(fed_seq, fed_srv, "scheduler must not change behaviour");
        eprintln!("  {n:>8} {seq_ms:>14.2} {srv_ms:>11.2} {fed_seq:>11}");
    }
}

fn bench_fleet(c: &mut Criterion) {
    report_fleet_table();
    let mut group = c.benchmark_group("fleet_server");
    // Sessions are consumed by a run, so each iteration must rebuild the
    // fleet (the vendored criterion shim has no iter_batched to hoist
    // setup). The `build_only` baseline makes the construction share of
    // every other line explicit — subtract it to compare pump costs.
    group.bench_with_input(BenchmarkId::from_parameter("build_only32"), &32, |b, &n| {
        b.iter(|| black_box(fleet(n)).len());
    });
    for &n in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::new("server4", n), &n, |b, &n| {
            b.iter(|| black_box(pump_server(fleet(n), 4)));
        });
    }
    group.bench_with_input(BenchmarkId::from_parameter("sequential32"), &32, |b, &n| {
        b.iter(|| black_box(pump_sequential(fleet(n))));
    });
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
