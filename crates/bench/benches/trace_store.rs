//! Trace-store costs: append throughput and window seeks, in-memory vs
//! the segmented on-disk store.
//!
//! The measurements:
//!
//! * `trace_store/append_mem_batch` / `append_disk_batch` /
//!   `append_disk_binary` — recording a 4096-entry batch through
//!   `ExecutionTrace` into the in-memory backend and the segmented-disk
//!   backend under each record codec (the disk lines include the
//!   per-batch store creation and flush — the full durability bill);
//! * `trace_store/window_mem` / `window_cold_disk` /
//!   `cold_window_compacted` — a narrow `window` query against a long
//!   prebuilt trace: the in-memory store answers from its `Vec`, the
//!   disk store from its per-segment index plus the one or two boundary
//!   segments it actually reads, and the compacted store additionally
//!   decompresses those segments from the `.lgz` cold tier;
//! * comparison row `window_indexed_vs_linear` — the indexed
//!   (`partition_point`) window against the pre-refactor full scan on
//!   the same in-memory trace, measured on the narrow-window shape the
//!   refactor targets;
//! * comparison row `append_disk_binary_vs_json` — the same durable
//!   batch under the binary record codec against the JSON codec: the
//!   serialization share of the durability bill.
//! * `trace_store/replay_from_zero` / `seek_to_time` — time travel to
//!   the end of a long deterministic run: re-executing the whole
//!   session from t = 0 versus restoring the nearest persisted
//!   full-state checkpoint (4096-entry cadence, the
//!   `PersistConfig::checkpoint_interval` default) and replaying only
//!   the O(interval) tail; comparison row `seek_vs_replay_from_zero`.
//!
//! Persists `BENCH_trace.json` at the repo root — regenerate with
//! `cargo bench -p gmdf-bench --bench trace_store`. With
//! `GMDF_BENCH_QUICK=1` it writes `BENCH_trace.quick.json` (smaller
//! trace, same shape), the CI baseline.

use criterion::{criterion_group, Criterion};
use gmdf_bench::report::{repo_root, report_from, write_report, Comparison};
use gmdf_engine::store::{Codec, MemStore, Retention, SegmentConfig, SegmentStore, TraceStore};
use gmdf_engine::{ExecutionTrace, TraceEntry};
use gmdf_gdm::{EventKind, EventValue, ModelEvent, ReactionSpec};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Entries per append batch (one bench iteration).
const BATCH: u64 = 4096;

/// Segment capacity of the disk store under test.
const SEGMENT: usize = 256;

fn trace_len() -> u64 {
    if criterion::quick_mode() {
        20_000
    } else {
        100_000
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    // A per-process atomic counter, not the wall clock: concurrent
    // bench processes can land in the same nanosecond and collide, and
    // a pre-epoch clock would panic the `expect`.
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gmdf-bench-{tag}-{}-{n}", std::process::id()))
}

/// A fresh durable trace over a segment store with `codec`.
fn disk_trace(dir: &PathBuf, codec: Codec) -> ExecutionTrace {
    let config = SegmentConfig {
        capacity: SEGMENT,
        codec,
        ..SegmentConfig::default()
    };
    ExecutionTrace::with_store(Box::new(
        SegmentStore::open_with(dir, config).expect("segment store"),
    ))
}

/// One synthetic entry; times advance 1 µs per seq (a busy trace).
fn event(seq: u64) -> ModelEvent {
    let time_ns = seq * 1_000;
    match seq % 3 {
        0 => ModelEvent::new(time_ns, EventKind::StateEnter, "node/actor/fsm").with_to("Run"),
        1 => ModelEvent::new(time_ns, EventKind::SignalWrite, "node/actor/out")
            .with_value(EventValue::Real(seq as f64 * 0.5)),
        _ => ModelEvent::new(time_ns, EventKind::TaskStart, "node/actor"),
    }
}

fn record_batch(trace: &mut ExecutionTrace, n: u64) {
    for seq in 0..n {
        trace.record(event(seq), vec![ReactionSpec::HighlightTarget], vec![]);
    }
}

/// Builds the long reference trace once, on both backends.
fn prebuilt(dir: &PathBuf) -> (ExecutionTrace, ExecutionTrace) {
    let n = trace_len();
    let mut mem = ExecutionTrace::new();
    record_batch(&mut mem, n);
    let mut disk = ExecutionTrace::with_store(Box::new(
        SegmentStore::open(dir, SEGMENT).expect("segment store"),
    ));
    record_batch(&mut disk, n);
    disk.sync().expect("flush");
    (mem, disk)
}

/// The pre-refactor `window`: a linear scan over every entry.
fn window_linear(entries: &[TraceEntry], t0_ns: u64, t1_ns: u64) -> usize {
    entries
        .iter()
        .filter(|e| e.event.time_ns >= t0_ns && e.event.time_ns <= t1_ns)
        .count()
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_store");

    group.bench_function("append_mem_batch", |b| {
        b.iter(|| {
            let mut trace = ExecutionTrace::new();
            record_batch(&mut trace, BATCH);
            black_box(trace.len())
        })
    });

    let append_dir = tmp_dir("append");
    group.bench_function("append_disk_batch", |b| {
        b.iter(|| {
            std::fs::remove_dir_all(&append_dir).ok();
            let mut trace = disk_trace(&append_dir, Codec::Json);
            record_batch(&mut trace, BATCH);
            trace.sync().expect("flush");
            black_box(trace.len())
        })
    });
    std::fs::remove_dir_all(&append_dir).ok();

    let binary_dir = tmp_dir("append-bin");
    group.bench_function("append_disk_binary", |b| {
        b.iter(|| {
            std::fs::remove_dir_all(&binary_dir).ok();
            let mut trace = disk_trace(&binary_dir, Codec::Binary);
            record_batch(&mut trace, BATCH);
            trace.sync().expect("flush");
            black_box(trace.len())
        })
    });
    std::fs::remove_dir_all(&binary_dir).ok();

    // Narrow-window seeks against the long trace: ~64 entries out of
    // the middle, the replay/timing-diagram access pattern.
    let window_dir = tmp_dir("window");
    let (mem, disk) = prebuilt(&window_dir);
    let mid = trace_len() / 2 * 1_000;
    let (t0, t1) = (mid, mid + 64_000);
    group.bench_function("window_mem", |b| {
        b.iter(|| black_box(mem.window(black_box(t0), black_box(t1)).count()))
    });
    group.bench_function("window_cold_disk", |b| {
        b.iter(|| black_box(disk.window(black_box(t0), black_box(t1)).count()))
    });

    // The same narrow window against a fully compacted store: every
    // sealed segment lives on the `.lgz` cold tier, so the seek pays
    // per-segment decompression on top of the index walk.
    let compact_dir = tmp_dir("compacted");
    let mut compacted = {
        let config = SegmentConfig {
            capacity: SEGMENT,
            codec: Codec::Binary,
            retention: Retention {
                compress_after: Some(1),
                max_disk_bytes: None,
            },
        };
        ExecutionTrace::with_store(Box::new(
            SegmentStore::open_with(&compact_dir, config).expect("segment store"),
        ))
    };
    record_batch(&mut compacted, trace_len());
    compacted.sync().expect("flush");
    while compacted.maintain().expect("maintain").did_work() {}
    group.bench_function("cold_window_compacted", |b| {
        b.iter(|| black_box(compacted.window(black_box(t0), black_box(t1)).count()))
    });
    group.finish();
    std::fs::remove_dir_all(&window_dir).ok();
    std::fs::remove_dir_all(&compact_dir).ok();
}

/// Checkpoint cadence for the time-travel rows — the durable-session
/// default (`PersistConfig::checkpoint_interval`).
const CKPT_INTERVAL: u64 = 4096;

/// A busy ring session for the time-travel rows: one trace entry every
/// ~100 µs of target time, so `trace_len()` entries span seconds of
/// deterministic re-execution.
fn seek_session() -> gmdf::DebugSession {
    use gmdf_comdes::{
        ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
        VAR_TIME_IN_STATE,
    };
    let mut fb = FsmBuilder::new().output(Port::int("s"));
    for i in 0..3 {
        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i)));
    }
    for i in 0..3u64 {
        fb = fb.transition(
            &format!("S{i}"),
            &format!("S{}", (i + 1) % 3),
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(1e-4)),
        );
    }
    let fsm = fb.initial("S0").build().expect("ring fsm");
    let net = NetworkBuilder::new()
        .output(Port::int("s"))
        .state_machine("ring", fsm)
        .connect("ring.s", "s")
        .expect("endpoint")
        .build()
        .expect("ring net");
    let actor = ActorBuilder::new("Ring", net)
        .output("s", "state_sig")
        .timing(Timing::periodic(50_000, 0))
        .build()
        .expect("ring actor");
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    gmdf::Workflow::from_system(System::new("seek_ring").with_node(node))
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .connect(
            gmdf::ChannelMode::Active,
            gmdf_codegen::CompileOptions {
                instrument: gmdf_codegen::InstrumentOptions::behavior(),
                faults: vec![],
            },
            // A fast debug link: at the default 115200 baud the UART
            // cannot sustain this event rate, so the backlog (part of
            // the checkpoint image) would grow with the trace and the
            // seek would degenerate to O(n) image parsing.
            gmdf_target::SimConfig {
                uart_baud: 10_000_000,
                ..gmdf_target::SimConfig::default()
            },
        )
        .expect("session boots")
}

/// Time travel to the end of a long run: full deterministic re-execution
/// from t = 0 versus nearest-checkpoint restore (JSON image parse +
/// state restore, as the durable-session seek path pays it) plus an
/// O(interval) replay of the tail.
fn bench_time_travel(c: &mut Criterion) {
    let n = trace_len();
    // The reference run, imaged every `CKPT_INTERVAL` entries the same
    // way the durable-session pump does (checked at slice boundaries).
    let mut reference = seek_session();
    let mut images: Vec<(u64, String)> = Vec::new();
    let mut last = 0u64;
    while (reference.engine().trace().len() as u64) < n {
        reference.run_for(10_000_000).expect("reference run");
        let len = reference.engine().trace().len() as u64;
        if len.saturating_sub(last) >= CKPT_INTERVAL {
            let image = reference.save_state();
            images.push((image.t_ns(), serde_json::to_string(&image).expect("image")));
            last = len;
        }
    }
    let target_ns = reference.now_ns();
    let (ckpt_t_ns, payload) = images.last().expect("checkpoints written").clone();
    drop(reference);

    let mut group = c.benchmark_group("trace_store");
    group.bench_function("replay_from_zero", |b| {
        b.iter(|| {
            let mut session = seek_session();
            session.run_for(target_ns).expect("replay");
            black_box(session.engine().trace().len())
        })
    });
    group.bench_function("seek_to_time", |b| {
        b.iter(|| {
            let image: gmdf::SessionCheckpoint =
                serde_json::from_str(&payload).expect("image parses");
            let mut session = seek_session();
            session.restore_state(&image).expect("restore");
            session.resume_trace_store(Box::new(gmdf_engine::OffsetMemStore::new(
                image.trace_len(),
            )));
            session.run_for(target_ns - ckpt_t_ns).expect("replay tail");
            black_box(session.engine().trace().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store, bench_time_travel);

/// The satellite comparison: indexed window vs the old linear scan, on
/// the in-memory backend (identical data, identical answer).
fn window_comparison() -> Comparison {
    let n = trace_len();
    let mut store = MemStore::new();
    for seq in 0..n {
        store
            .append(TraceEntry {
                seq,
                event: event(seq),
                reactions: vec![],
                violations: vec![],
            })
            .expect("append");
    }
    let entries = store.as_slice().expect("memory-backed").to_vec();
    let trace = ExecutionTrace::with_store(Box::new(store));
    let mid = n / 2 * 1_000;
    let (t0, t1) = (mid, mid + 64_000);
    let reps = if criterion::quick_mode() { 200 } else { 1_000 };

    let start = Instant::now();
    let mut hits_linear = 0usize;
    for _ in 0..reps {
        hits_linear = black_box(window_linear(&entries, black_box(t0), black_box(t1)));
    }
    let baseline_ns = start.elapsed().as_nanos() as f64 / reps as f64;

    let start = Instant::now();
    let mut hits_indexed = 0usize;
    for _ in 0..reps {
        hits_indexed = black_box(trace.window(black_box(t0), black_box(t1)).count());
    }
    let optimized_ns = start.elapsed().as_nanos() as f64 / reps as f64;

    assert_eq!(hits_linear, hits_indexed, "both windows must agree");
    let speedup = baseline_ns / optimized_ns;
    eprintln!(
        "[trace_store] window over {n} entries: linear {:.1} us, indexed {:.2} us ({speedup:.0}x)",
        baseline_ns / 1e3,
        optimized_ns / 1e3,
    );
    Comparison {
        name: "window_indexed_vs_linear".to_owned(),
        baseline_ns,
        optimized_ns,
        speedup,
    }
}

/// The codec comparison: the same durable 4096-entry batch (store
/// creation + appends + flush) under the binary record codec against
/// the JSON codec. Derived from the criterion-timed medians of the
/// `append_disk_batch` / `append_disk_binary` rows rather than
/// re-measured — re-running the pair back-to-back makes whichever
/// codec goes second pay the first one's dirty-page writeback.
fn codec_comparison(results: &[criterion::BenchResult]) -> Comparison {
    let median_of = |name: &str| -> f64 {
        results
            .iter()
            .find(|r| r.name == format!("trace_store/{name}"))
            .unwrap_or_else(|| panic!("bench row `{name}` was measured"))
            .median_ns
    };
    let baseline_ns = median_of("append_disk_batch");
    let optimized_ns = median_of("append_disk_binary");
    let speedup = baseline_ns / optimized_ns;
    eprintln!(
        "[trace_store] durable {BATCH}-entry batch: json {:.2} ms, binary {:.2} ms ({speedup:.1}x)",
        baseline_ns / 1e6,
        optimized_ns / 1e6,
    );
    Comparison {
        name: "append_disk_binary_vs_json".to_owned(),
        baseline_ns,
        optimized_ns,
        speedup,
    }
}

/// The tentpole comparison: time travel to the end of the long run via
/// nearest-checkpoint restore against full re-execution from t = 0.
/// Derived from the criterion-timed medians of the `replay_from_zero` /
/// `seek_to_time` rows.
fn seek_comparison(results: &[criterion::BenchResult]) -> Comparison {
    let median_of = |name: &str| -> f64 {
        results
            .iter()
            .find(|r| r.name == format!("trace_store/{name}"))
            .unwrap_or_else(|| panic!("bench row `{name}` was measured"))
            .median_ns
    };
    let baseline_ns = median_of("replay_from_zero");
    let optimized_ns = median_of("seek_to_time");
    let speedup = baseline_ns / optimized_ns;
    eprintln!(
        "[trace_store] seek over {} entries at {CKPT_INTERVAL}-entry checkpoints: \
         from-zero {:.1} ms, checkpointed {:.1} ms ({speedup:.0}x)",
        trace_len(),
        baseline_ns / 1e6,
        optimized_ns / 1e6,
    );
    Comparison {
        name: "seek_vs_replay_from_zero".to_owned(),
        baseline_ns,
        optimized_ns,
        speedup,
    }
}

fn main() {
    benches();
    let comparison = window_comparison();
    let results = criterion::take_results();
    let comparisons = vec![
        comparison,
        codec_comparison(&results),
        seek_comparison(&results),
    ];
    let report = report_from("trace_store", results, comparisons);
    let name = if criterion::quick_mode() {
        "BENCH_trace.quick.json"
    } else {
        "BENCH_trace.json"
    };
    write_report(&repo_root().join(name), &report);
}
