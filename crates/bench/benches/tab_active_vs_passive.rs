//! T1 — §II claim: "the overhead of using additional codes to send
//! commands to GDM can be eliminated" by JTAG.
//!
//! Sweeps the model-event rate and reports, in *target cycles*, the cost
//! of active instrumentation versus the passive JTAG channel (always
//! zero), plus the host-side price the passive channel pays instead.
//! Expected shape: active overhead grows linearly with event rate;
//! passive target overhead is exactly 0 at every rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdf_bench::ring_system;
use gmdf_codegen::{compile_system, CompileOptions, InstrumentOptions};
use gmdf_target::{JtagMonitor, SimConfig, Simulator};
use std::hint::black_box;

const HORIZON_NS: u64 = 100_000_000; // 100 ms

/// Target cycles executed over the horizon with the given dwell time
/// (shorter dwell = higher event rate) and instrumentation.
fn target_cycles(dwell_s: f64, instrument: InstrumentOptions, passive: bool) -> (u64, u64) {
    let system = ring_system(4, dwell_s, 1_000_000);
    let image = compile_system(
        &system,
        &CompileOptions {
            instrument,
            faults: vec![],
        },
    )
    .expect("compiles");
    let mut sim = Simulator::new(image, SimConfig::default()).expect("boots");
    let mut host_ns = 0;
    if passive {
        let mut monitor = JtagMonitor::new(1_000_000, 10_000_000);
        monitor
            .watch(&sim, "ecu", "Ring/ring#state")
            .expect("watch");
        monitor.run_until(&mut sim, HORIZON_NS).expect("runs");
        host_ns = monitor.scan_ns_total;
    } else {
        sim.run_until(HORIZON_NS).expect("runs");
    }
    (sim.cycles_executed("ecu").expect("cycles"), host_ns)
}

fn report_overhead_table() {
    eprintln!("[tab_active_vs_passive] target-cycle overhead over {HORIZON_NS} ns:");
    eprintln!("  dwell_ms  events/s  clean_cycles  active_cycles  overhead%  passive_cycles  host_scan_us");
    for dwell_ms in [16.0f64, 8.0, 4.0, 2.0] {
        let events_per_s = 1000.0 / dwell_ms;
        let (clean, _) = target_cycles(dwell_ms / 1e3, InstrumentOptions::none(), false);
        let (active, _) = target_cycles(dwell_ms / 1e3, InstrumentOptions::full(), false);
        let (passive, host_ns) = target_cycles(dwell_ms / 1e3, InstrumentOptions::none(), true);
        assert_eq!(passive, clean, "JTAG must add zero target cycles");
        let overhead = (active as f64 - clean as f64) / clean as f64 * 100.0;
        eprintln!(
            "  {dwell_ms:>8} {events_per_s:>9.1} {clean:>13} {active:>14} {overhead:>9.2} {passive:>15} {:>13.1}",
            host_ns as f64 / 1000.0
        );
    }
}

fn bench_active(c: &mut Criterion) {
    report_overhead_table();
    let mut g = c.benchmark_group("tab1/wall_time");
    for (name, instrument, passive) in [
        ("clean", InstrumentOptions::none(), false),
        ("active_full", InstrumentOptions::full(), false),
        ("passive_jtag", InstrumentOptions::none(), true),
    ] {
        g.bench_with_input(
            BenchmarkId::new("mode", name),
            &(instrument, passive),
            |b, &(instrument, passive)| {
                b.iter(|| black_box(target_cycles(0.004, instrument, passive)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_active);
criterion_main!(benches);
