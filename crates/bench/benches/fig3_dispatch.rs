//! F3 — paper Fig. 3: the GDM event-driven machine.
//!
//! Measures raw engine dispatch throughput (commands/second through the
//! waiting→reacting loop) as the binding list and model size grow.
//!
//! This bench persists `BENCH_dispatch.json` at the repo root —
//! regenerate with `cargo bench -p gmdf-bench --bench fig3_dispatch`.
//! With `GMDF_BENCH_QUICK=1` it writes `BENCH_dispatch.quick.json`
//! instead, so each mode keeps a comparable checked-in baseline.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use gmdf_bench::report::{repo_root, report_from, write_report};
use gmdf_engine::DebuggerEngine;
use gmdf_gdm::{
    default_bindings, CommandBinding, CommandMatcher, DebuggerModel, EventKind, GdmElement,
    GdmPattern, ModelEvent, ReactionSpec,
};
use gmdf_render::Rect;
use std::hint::black_box;

fn gdm_with(n_states: usize, extra_bindings: usize) -> DebuggerModel {
    let mut m = DebuggerModel::new("bench");
    m.bindings = default_bindings();
    for i in 0..extra_bindings {
        m.bindings.push(CommandBinding::new(
            CommandMatcher::kind(EventKind::StateEnter).under(&format!("Other{i}")),
            ReactionSpec::RecordOnly,
        ));
    }
    m.elements.push(GdmElement {
        path: "A/fsm".into(),
        label: "fsm".into(),
        metaclass: "StateMachineBlock".into(),
        pattern: GdmPattern::RoundedRectangle,
        parent: None,
        bounds: Rect::new(0.0, 0.0, 900.0, 600.0),
    });
    for i in 0..n_states {
        m.elements.push(GdmElement {
            path: format!("A/fsm/S{i}"),
            label: format!("S{i}"),
            metaclass: "State".into(),
            pattern: GdmPattern::Circle,
            parent: Some(0),
            bounds: Rect::new(
                20.0 + 130.0 * (i % 6) as f64,
                50.0 + 70.0 * (i / 6) as f64,
                110.0,
                46.0,
            ),
        });
    }
    m
}

fn events(n_states: usize, count: usize) -> Vec<ModelEvent> {
    (0..count)
        .map(|k| {
            ModelEvent::new(k as u64 * 1000, EventKind::StateEnter, "A/fsm")
                .with_to(&format!("S{}", k % n_states))
        })
        .collect()
}

fn bench_dispatch_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/dispatch");
    const BATCH: usize = 1000;
    g.throughput(Throughput::Elements(BATCH as u64));
    for (states, bindings) in [(4usize, 0usize), (16, 0), (16, 50), (64, 200)] {
        let gdm = gdm_with(states, bindings);
        let evs = events(states, BATCH);
        g.bench_with_input(
            BenchmarkId::new(
                "states_bindings",
                format!("{states}s_{}b", gdm.bindings.len()),
            ),
            &(gdm, evs),
            |b, (gdm, evs)| {
                b.iter(|| {
                    let mut engine = DebuggerEngine::new(gdm.clone());
                    for e in evs {
                        engine.feed(black_box(e.clone()));
                    }
                    black_box(engine.stats().events_processed)
                })
            },
        );
    }
    g.finish();
}

fn bench_dispatch_with_breakpoint_scan(c: &mut Criterion) {
    let gdm = gdm_with(16, 0);
    let evs = events(16, 1000);
    c.bench_function("fig3/dispatch_with_20_breakpoints", |b| {
        b.iter(|| {
            let mut engine = DebuggerEngine::new(gdm.clone());
            for i in 0..20 {
                // Breakpoints that never match (worst-case scan).
                engine.add_breakpoint(
                    CommandMatcher::kind(EventKind::TaskStart).under(&format!("Ghost{i}")),
                    false,
                );
            }
            for e in &evs {
                engine.feed(black_box(e.clone()));
            }
            black_box(engine.stats().events_processed)
        })
    });
}

criterion_group!(
    benches,
    bench_dispatch_rate,
    bench_dispatch_with_breakpoint_scan
);

fn main() {
    benches();
    let report = report_from("dispatch", criterion::take_results(), vec![]);
    // Per-mode baselines: CI runs quick mode and compares against the
    // checked-in quick file, keeping the regression gate numeric.
    let name = if criterion::quick_mode() {
        "BENCH_dispatch.quick.json"
    } else {
        "BENCH_dispatch.json"
    };
    write_report(&repo_root().join(name), &report);
}
