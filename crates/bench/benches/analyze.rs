//! Static-analysis cost: a full `gmdf_analyze::analyze` report over a
//! fleet-scale compiled image, against the pump slice it rides along
//! with.
//!
//! The server runs the analyzer synchronously inside
//! `add_session`/`add_durable_session` and caches the report for the
//! wire `Analyze` frame, so its cost budget is "invisible next to one
//! scheduler slice". This bench makes that budget falsifiable:
//!
//! * `analyze/full_report` — lint + per-node RTA + route-graph passes
//!   over a 32-node × 16-task fleet image (quick mode: 8 × 8);
//! * `analyze/pump_slice` — one default-config scheduler slice
//!   (`ServerConfig::slice_ns` = 1 ms of target time) of the *same*
//!   fleet on a warmed simulator, stimuli flowing;
//! * comparison row `pump_slice_vs_analyze` — slice/analyze wall-time
//!   ratio. A speedup well above 1 is the claim "analysis at
//!   registration is ≪ one pump slice"; `bench_check` gates CI on it
//!   not collapsing.
//!
//! Persists `BENCH_analyze.json` at the repo root — regenerate with
//! `cargo bench -p gmdf-bench --bench analyze`. With
//! `GMDF_BENCH_QUICK=1` it measures the smaller shape and writes
//! `BENCH_analyze.quick.json` instead, the CI baseline.

use criterion::{criterion_group, Criterion};
use gmdf_analyze::analyze;
use gmdf_bench::fleet_node_system;
use gmdf_bench::report::{repo_root, report_from, write_report, Comparison};
use gmdf_codegen::{compile_system, CompileOptions, InstrumentOptions, ProgramImage};
use gmdf_comdes::{SignalValue, System};
use gmdf_target::{SimConfig, Simulator};
use std::hint::black_box;

/// One default-config scheduler slice of target time (`ServerConfig`'s
/// `slice_ns` default), the unit the analysis cost is judged against.
const SLICE_NS: u64 = 1_000_000;

/// `(n_nodes, gains_per_node)` — 16 tasks per node in full mode.
fn shape() -> (usize, usize) {
    if criterion::quick_mode() {
        (8, 7)
    } else {
        (32, 15)
    }
}

fn compiled() -> (System, ProgramImage) {
    let (n_nodes, gains) = shape();
    let system = fleet_node_system(n_nodes, gains, 1);
    let image = compile_system(
        &system,
        &CompileOptions {
            instrument: InstrumentOptions::behavior(),
            faults: vec![],
        },
    )
    .expect("fleet compiles");
    (system, image)
}

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze");
    let (system, image) = compiled();
    let config = SimConfig::default();

    group.bench_function("full_report", |b| {
        b.iter(|| {
            let report = analyze(black_box(&system), black_box(&image), black_box(&config))
                .expect("fleet settles");
            black_box(report.diagnostic_counts())
        })
    });

    // The yardstick: one slice of the same fleet on a warmed simulator,
    // with the shared stimulus flowing so the gain chains actually run.
    // The first slice is paid outside the timed region (cold caches,
    // first releases of every task); each iteration then advances one
    // further slice.
    let mut sim = Simulator::new(image.clone(), config).expect("fleet boots");
    for k in 0..10_000u64 {
        sim.schedule_signal(k * SLICE_NS, "u", SignalValue::Real((k % 5) as f64))
            .ok();
    }
    let mut now = SLICE_NS;
    sim.run_until(now).expect("warmup slice");
    group.bench_function("pump_slice", |b| {
        b.iter(|| {
            now += SLICE_NS;
            sim.run_until(now).expect("slice runs");
            black_box(sim.now_ns())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analyze);

fn main() {
    benches();
    let results = criterion::take_results();
    let median_of = |name: &str| -> f64 {
        results
            .iter()
            .find(|r| r.name == format!("analyze/{name}"))
            .unwrap_or_else(|| panic!("bench row `{name}` was measured"))
            .median_ns
    };
    let slice_ns = median_of("pump_slice");
    let analyze_ns = median_of("full_report");
    let (n_nodes, gains) = shape();
    eprintln!(
        "[analyze] {n_nodes} nodes x {} tasks: full report {:.1} us, one {} ms pump slice {:.1} us \
         ({:.1}x headroom)",
        gains + 1,
        analyze_ns / 1e3,
        SLICE_NS / 1_000_000,
        slice_ns / 1e3,
        slice_ns / analyze_ns,
    );
    let comparison = Comparison {
        name: "pump_slice_vs_analyze".to_owned(),
        baseline_ns: slice_ns,
        optimized_ns: analyze_ns,
        speedup: slice_ns / analyze_ns,
    };
    let report = report_from("analyze", results, vec![comparison]);
    let name = if criterion::quick_mode() {
        "BENCH_analyze.quick.json"
    } else {
        "BENCH_analyze.json"
    };
    write_report(&repo_root().join(name), &report);
}
