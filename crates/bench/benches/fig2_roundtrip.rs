//! F2 — paper Fig. 2: the three-part framework wired together.
//!
//! Measures the command round trip (target behaviour → channel → engine
//! reaction) for both transports, and reports the *observation latency*
//! in simulated time: how long after a state change the debugger's view
//! updates (UART serialization delay for the active channel, poll period
//! + scan time for the passive one).

use criterion::{criterion_group, criterion_main, Criterion};
use gmdf::{ChannelMode, Workflow};
use gmdf_bench::ring_system;
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_gdm::EventKind;
use gmdf_target::SimConfig;
use std::hint::black_box;

fn session(channel: ChannelMode, instrument: InstrumentOptions) -> gmdf::DebugSession {
    Workflow::from_system(ring_system(4, 0.004, 1_000_000))
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .connect(
            channel,
            CompileOptions {
                instrument,
                faults: vec![],
            },
            SimConfig::default(),
        )
        .expect("session builds")
}

fn bench_active_roundtrip(c: &mut Criterion) {
    c.bench_function("fig2/active_50ms_window", |b| {
        b.iter(|| {
            let mut s = session(ChannelMode::Active, InstrumentOptions::behavior());
            s.run_for(black_box(50_000_000)).expect("runs");
            black_box(s.engine().trace().len())
        })
    });
}

fn bench_passive_roundtrip(c: &mut Criterion) {
    c.bench_function("fig2/passive_50ms_window", |b| {
        b.iter(|| {
            let mut s = session(
                ChannelMode::Passive {
                    poll_period_ns: 500_000,
                    tck_hz: 10_000_000,
                },
                InstrumentOptions::none(),
            );
            s.run_for(black_box(50_000_000)).expect("runs");
            black_box(s.engine().trace().len())
        })
    });
}

/// Observation latency in *simulated* time (reported once for the record).
fn report_observation_latency(c: &mut Criterion) {
    // Active: transition happens at a release instant; the frame lands
    // after UART serialization.
    let mut s = session(ChannelMode::Active, InstrumentOptions::behavior());
    s.run_for(50_000_000).unwrap();
    let entries = s.engine().trace().entries();
    let first = entries
        .iter()
        .find(|e| e.event.kind == EventKind::StateEnter)
        .expect("a transition");
    // Releases are at multiples of the period; the latency is the offset
    // past the enclosing release.
    let active_latency = first.event.time_ns % 1_000_000;
    let mut p = session(
        ChannelMode::Passive {
            poll_period_ns: 500_000,
            tck_hz: 10_000_000,
        },
        InstrumentOptions::none(),
    );
    p.run_for(50_000_000).unwrap();
    let entries_p = p.engine().trace().entries();
    let first_p = entries_p
        .iter()
        .filter(|e| e.event.kind == EventKind::StateEnter)
        .nth(1)
        .expect("a transition");
    let passive_latency = first_p.event.time_ns % 1_000_000;
    eprintln!(
        "[fig2] observation latency (sim time past the causing release): \
         active ≈ {active_latency} ns (uart), passive ≈ {passive_latency} ns (poll+scan)"
    );
    // Keep criterion happy with a trivial measurement.
    c.bench_function("fig2/report", |b| b.iter(|| black_box(1)));
}

criterion_group!(
    benches,
    bench_active_roundtrip,
    bench_passive_roundtrip,
    report_observation_latency
);
criterion_main!(benches);
