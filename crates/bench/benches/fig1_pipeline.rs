//! F1 — paper Fig. 1: the MDD pipeline (modeling tool → model
//! transformation → executable code).
//!
//! Measures the model-transformation stage GMDF slots into: compiling
//! COMDES systems of growing size into deployable program images, with
//! and without the command-interface instrumentation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdf_bench::{chain_system, multi_actor_system};
use gmdf_codegen::{compile_system, CompileOptions, InstrumentOptions};
use std::hint::black_box;

fn bench_compile_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/compile_chain");
    for n in [5usize, 20, 80] {
        let system = chain_system(n, 1_000_000);
        g.bench_with_input(BenchmarkId::new("blocks", n), &system, |b, sys| {
            b.iter(|| compile_system(black_box(sys), &CompileOptions::default()).expect("compiles"))
        });
    }
    g.finish();
}

fn bench_compile_multi_actor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/compile_actors");
    for n in [1usize, 4, 16] {
        let system = multi_actor_system(n, 6);
        g.bench_with_input(BenchmarkId::new("actors", n), &system, |b, sys| {
            b.iter(|| compile_system(black_box(sys), &CompileOptions::default()).expect("compiles"))
        });
    }
    g.finish();
}

fn bench_instrumentation_cost_at_compile_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/instrumentation");
    let system = multi_actor_system(8, 6);
    for (name, opts) in [
        ("none", InstrumentOptions::none()),
        ("behavior", InstrumentOptions::behavior()),
        ("full", InstrumentOptions::full()),
    ] {
        let options = CompileOptions {
            instrument: opts,
            faults: vec![],
        };
        g.bench_function(name, |b| {
            b.iter(|| compile_system(black_box(&system), &options).expect("compiles"))
        });
    }
    // Report the code-size effect once (recorded in EXPERIMENTS.md).
    let clean = compile_system(
        &system,
        &CompileOptions {
            instrument: InstrumentOptions::none(),
            faults: vec![],
        },
    )
    .unwrap();
    let full = compile_system(
        &system,
        &CompileOptions {
            instrument: InstrumentOptions::full(),
            faults: vec![],
        },
    )
    .unwrap();
    eprintln!(
        "[fig1] code size: {} instrs clean, {} instrs fully instrumented ({} emits)",
        clean.total_instructions(),
        full.total_instructions(),
        full.emit_count()
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_compile_chain,
    bench_compile_multi_actor,
    bench_instrumentation_cost_at_compile_time
);
criterion_main!(benches);
