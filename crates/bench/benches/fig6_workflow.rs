//! F6 — paper Fig. 6: the five-step prototype execution flow.
//!
//! Measures end-to-end workflow setup (steps 1–5: load, abstraction,
//! command settings, GDM creation + channel establishment) and a
//! debugging window on the live session.

use criterion::{criterion_group, criterion_main, Criterion};
use gmdf::{ChannelMode, Workflow};
use gmdf_bench::{multi_actor_system, ring_system};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_target::SimConfig;
use std::hint::black_box;

fn bench_workflow_setup(c: &mut Criterion) {
    c.bench_function("fig6/setup_steps_1_to_5", |b| {
        b.iter(|| {
            let session = Workflow::from_system(black_box(ring_system(6, 0.003, 1_000_000)))
                .expect("steps 1-2")
                .default_abstraction() // step 3
                .default_commands() // step 4
                .connect(
                    ChannelMode::Active,
                    CompileOptions::default(),
                    SimConfig::default(),
                ) // step 5
                .expect("channel");
            black_box(session)
        })
    });
}

fn bench_workflow_setup_large(c: &mut Criterion) {
    c.bench_function("fig6/setup_fleet_16x6", |b| {
        b.iter(|| {
            let session = Workflow::from_system(black_box(multi_actor_system(16, 6)))
                .expect("steps 1-2")
                .default_abstraction()
                .default_commands()
                .connect(
                    ChannelMode::Active,
                    CompileOptions::default(),
                    SimConfig::default(),
                )
                .expect("channel");
            black_box(session)
        })
    });
}

fn bench_debug_window(c: &mut Criterion) {
    // A 100 ms debugging window on an established session (the step-6
    // "monitor his application" phase).
    c.bench_function("fig6/run_100ms_window", |b| {
        b.iter(|| {
            let mut session = Workflow::from_system(ring_system(6, 0.003, 1_000_000))
                .expect("wf")
                .default_abstraction()
                .default_commands()
                .connect(
                    ChannelMode::Active,
                    CompileOptions {
                        instrument: InstrumentOptions::behavior(),
                        faults: vec![],
                    },
                    SimConfig::default(),
                )
                .expect("channel");
            session.run_for(black_box(100_000_000)).expect("runs");
            black_box(session.engine().trace().len())
        })
    });
}

criterion_group!(
    benches,
    bench_workflow_setup,
    bench_workflow_setup_large,
    bench_debug_window
);
criterion_main!(benches);
