//! Metrics overhead: the instrumented scheduler pump vs the same pump
//! with a disabled registry (`ServerConfig { metrics: false }`, i.e.
//! [`MetricsRegistry::disabled`]).
//!
//! The observability layer's contract is that recording is cheap enough
//! to leave on: relaxed atomics per slice, one branch per site when
//! disabled. This bench makes that claim falsifiable — it pumps the
//! same ring fleet through a `DebugServer` twice, once per registry
//! flavor, on a deliberately small slice so per-slice recording (wall
//! clock, events-per-slice histograms, the rate series) is exercised as
//! often as possible, and persists the pair as a `Comparison` row. The
//! `speedup` column reads as disabled/instrumented wall time: 1.00
//! means free, 0.95 means the instrumented pump costs 5%.
//!
//! Persists `BENCH_metrics.json` at the repo root — regenerate with
//! `cargo bench -p gmdf-bench --bench metrics_overhead`. With
//! `GMDF_BENCH_QUICK=1` it measures a smaller shape and writes
//! `BENCH_metrics.quick.json` instead.
//!
//! [`MetricsRegistry::disabled`]: gmdf_server::MetricsRegistry::disabled

use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_bench::report::{repo_root, report_from, write_report, Comparison};
use gmdf_bench::ring_system;
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_server::{DebugServer, ServerConfig};
use gmdf_target::SimConfig;
use std::time::{Duration, Instant};

/// `(sessions, horizon_ns, slice_ns, reps)` — sized down in quick mode
/// for the CI smoke step. Odd rep counts so the recorded median is the
/// true middle sample.
fn shape() -> (usize, u64, u64, usize) {
    if criterion::quick_mode() {
        (8, 5_000_000, 250_000, 3)
    } else {
        (32, 10_000_000, 250_000, 5)
    }
}

fn connect(system: gmdf_comdes::System) -> DebugSession {
    Workflow::from_system(system)
        .expect("valid system")
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )
        .expect("session boots")
}

fn fleet(n: usize) -> Vec<DebugSession> {
    (0..n)
        .map(|i| connect(ring_system(3 + i % 5, 0.001, 1_000_000)))
        .collect()
}

/// Pumps `sessions` through a 4-worker server to the horizon and
/// returns the total events fed (must be identical across flavors —
/// metrics never change behaviour).
fn pump(metrics: bool, sessions: Vec<DebugSession>, horizon_ns: u64, slice_ns: u64) -> usize {
    let server = DebugServer::start(ServerConfig {
        workers: 4,
        slice_ns,
        metrics,
        ..ServerConfig::default()
    });
    let handles: Vec<_> = sessions
        .into_iter()
        .map(|s| server.add_session(s))
        .collect();
    for handle in &handles {
        handle.run_for(horizon_ns).expect("send");
    }
    let mut fed = 0;
    for handle in &handles {
        handle.wait_idle(Duration::from_secs(120)).expect("idle");
        fed += handle
            .stats(Duration::from_secs(120))
            .expect("stats")
            .events_fed as usize;
    }
    fed
}

/// Median wall time of `reps` full pumps under one registry flavor.
/// Fleet construction happens outside the timed region.
fn time_pump(metrics: bool) -> (f64, usize) {
    let (n, horizon_ns, slice_ns, reps) = shape();
    let mut times = Vec::with_capacity(reps);
    let mut fed = 0;
    for _ in 0..reps {
        let sessions = fleet(n);
        let t0 = Instant::now();
        fed = pump(metrics, sessions, horizon_ns, slice_ns);
        times.push(t0.elapsed().as_nanos() as f64);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], fed)
}

fn main() {
    let (n, horizon_ns, slice_ns, _) = shape();
    let (disabled_ns, fed_off) = time_pump(false);
    let (enabled_ns, fed_on) = time_pump(true);
    assert_eq!(fed_off, fed_on, "metrics must not change behaviour");
    let overhead = enabled_ns / disabled_ns - 1.0;
    eprintln!(
        "[metrics_overhead] {n} sessions, {} ms horizon, {} µs slices:",
        horizon_ns / 1_000_000,
        slice_ns / 1_000
    );
    eprintln!(
        "  disabled registry: {:>9.2} ms   instrumented: {:>9.2} ms   overhead: {:+.2}%",
        disabled_ns / 1e6,
        enabled_ns / 1e6,
        overhead * 100.0
    );
    let results = vec![
        criterion::BenchResult {
            name: "metrics_overhead/pump_disabled".to_owned(),
            median_ns: disabled_ns,
            mean_ns: disabled_ns,
        },
        criterion::BenchResult {
            name: "metrics_overhead/pump_instrumented".to_owned(),
            median_ns: enabled_ns,
            mean_ns: enabled_ns,
        },
    ];
    let comparison = Comparison {
        name: "instrumented_vs_disabled_pump".to_owned(),
        baseline_ns: disabled_ns,
        optimized_ns: enabled_ns,
        speedup: disabled_ns / enabled_ns,
    };
    let report = report_from("metrics_overhead", results, vec![comparison]);
    let name = if criterion::quick_mode() {
        "BENCH_metrics.quick.json"
    } else {
        "BENCH_metrics.json"
    };
    write_report(&repo_root().join(name), &report);
}
