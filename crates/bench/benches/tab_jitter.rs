//! T2 — §III claim: Distributed Timed Multitasking results "in the
//! elimination of I/O jitter at both actor task and transaction levels".
//!
//! A heavy low-priority actor shares a slow CPU with a fast high-priority
//! actor; we measure the heavy actor's output-publication jitter with
//! deadline latching on (timed multitasking) and off (publish at
//! completion). Expected shape: latched jitter is exactly 0 ns at every
//! load level; unlatched jitter grows with interference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmdf_codegen::{compile_system, CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, BasicOp, NetworkBuilder, NodeSpec, Port, SignalValue, System, Timing,
};
use gmdf_target::{SimConfig, SimEvent, Simulator};
use std::hint::black_box;

fn contended_system(load_blocks: usize) -> System {
    let heavy_net = {
        let mut b = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"));
        let mut prev = "x".to_owned();
        for i in 0..load_blocks {
            let name = format!("p{i}");
            b = b.block(
                &name,
                BasicOp::Pid {
                    kp: 1.0,
                    ki: 0.1,
                    kd: 0.01,
                    lo: -1e9,
                    hi: 1e9,
                },
            );
            b = b.connect(&prev, &format!("{name}.sp")).expect("endpoint");
            prev = format!("{name}.u");
        }
        b.connect(&prev, "y")
            .expect("endpoint")
            .build()
            .expect("net")
    };
    let heavy = ActorBuilder::new("Heavy", heavy_net)
        .input("x", "hx")
        .output("y", "hy")
        .timing(Timing {
            period_ns: 1_000_000,
            offset_ns: 0,
            deadline_ns: 1_000_000,
            priority: 5,
        })
        .build()
        .expect("actor");
    let light_net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block("g", BasicOp::Gain { k: 1.0 })
        .connect("x", "g.x")
        .expect("endpoint")
        .connect("g.y", "y")
        .expect("endpoint")
        .build()
        .expect("net");
    let light = ActorBuilder::new("Light", light_net)
        .input("x", "lx")
        .output("y", "ly")
        // Non-harmonic with the heavy period (lcm = 33 ms) so the
        // preemption pattern — and thus completion time — varies release
        // to release.
        .timing(Timing {
            period_ns: 330_000,
            offset_ns: 130_000,
            deadline_ns: 330_000,
            priority: 0,
        })
        .build()
        .expect("actor");
    let mut node = NodeSpec::new("ecu", 10_000_000);
    node.actors.push(heavy);
    node.actors.push(light);
    System::new("jitter").with_node(node)
}

fn jitter_ns(system: &System, latch: bool) -> i64 {
    let image = compile_system(
        system,
        &CompileOptions {
            instrument: InstrumentOptions::none(),
            faults: vec![],
        },
    )
    .expect("compiles");
    let mut sim = Simulator::new(
        image,
        SimConfig {
            latch_outputs: latch,
            ..SimConfig::default()
        },
    )
    .expect("boots");
    sim.schedule_signal(0, "hx", SignalValue::Real(1.0))
        .expect("label");
    sim.run_until(60_000_000).expect("runs");
    let times: Vec<u64> = sim
        .events()
        .iter()
        .filter_map(|e| match e {
            SimEvent::Publish {
                time_ns,
                actor,
                label,
                ..
            } if &**actor == "Heavy" && label == "hy" => Some(*time_ns),
            _ => None,
        })
        .collect();
    assert!(times.len() > 20, "need many publications");
    let intervals: Vec<i64> = times
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    intervals.iter().max().unwrap() - intervals.iter().min().unwrap()
}

fn report_jitter_table() {
    eprintln!("[tab_jitter] Heavy actor output jitter (max-min inter-publication interval):");
    eprintln!("  load_blocks  latched_ns  unlatched_ns");
    for load in [10usize, 25, 45] {
        let system = contended_system(load);
        let latched = jitter_ns(&system, true);
        let unlatched = jitter_ns(&system, false);
        assert_eq!(latched, 0, "timed multitasking must eliminate jitter");
        eprintln!("  {load:>11} {latched:>11} {unlatched:>13}");
    }
}

fn bench_jitter_runs(c: &mut Criterion) {
    report_jitter_table();
    let system = contended_system(25);
    let mut g = c.benchmark_group("tab2/wall_time");
    for latch in [true, false] {
        g.bench_with_input(BenchmarkId::new("latched", latch), &latch, |b, &latch| {
            b.iter(|| black_box(jitter_ns(&system, latch)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_jitter_runs);
criterion_main!(benches);
