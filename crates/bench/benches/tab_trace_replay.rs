//! T3 — §II claim: "GDM animation will trace model-level behavior and
//! always make a record of the execution trace … replay function
//! associated with a timing diagram".
//!
//! Measures trace recording overhead inside the engine, replay
//! throughput (entries/second), seek cost, and timing-diagram
//! generation/rendering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmdf_engine::{timing_diagram, DebuggerEngine, Replayer};
use gmdf_gdm::{default_bindings, DebuggerModel, EventKind, GdmElement, GdmPattern, ModelEvent};
use gmdf_render::Rect;
use std::hint::black_box;

fn gdm(n_states: usize) -> DebuggerModel {
    let mut m = DebuggerModel::new("trace bench");
    m.bindings = default_bindings();
    m.elements.push(GdmElement {
        path: "A/fsm".into(),
        label: "fsm".into(),
        metaclass: "StateMachineBlock".into(),
        pattern: GdmPattern::RoundedRectangle,
        parent: None,
        bounds: Rect::new(0.0, 0.0, 900.0, 600.0),
    });
    for i in 0..n_states {
        m.elements.push(GdmElement {
            path: format!("A/fsm/S{i}"),
            label: format!("S{i}"),
            metaclass: "State".into(),
            pattern: GdmPattern::Circle,
            parent: Some(0),
            bounds: Rect::new(130.0 * (i % 6) as f64, 70.0 * (i / 6) as f64, 110.0, 46.0),
        });
    }
    m
}

fn recorded(n_entries: usize) -> (DebuggerModel, gmdf_engine::ExecutionTrace) {
    let g = gdm(8);
    let mut engine = DebuggerEngine::new(g.clone());
    for k in 0..n_entries {
        engine.feed(
            ModelEvent::new(k as u64 * 1_000, EventKind::StateEnter, "A/fsm")
                .with_to(&format!("S{}", k % 8)),
        );
    }
    (g, engine.trace().clone())
}

fn bench_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab3/record");
    const BATCH: u64 = 2_000;
    g.throughput(Throughput::Elements(BATCH));
    g.bench_function("engine_feed_2k", |b| {
        let gdm = gdm(8);
        b.iter(|| {
            let mut engine = DebuggerEngine::new(gdm.clone());
            for k in 0..BATCH {
                engine.feed(
                    ModelEvent::new(k * 1_000, EventKind::StateEnter, "A/fsm")
                        .with_to(&format!("S{}", k % 8)),
                );
            }
            black_box(engine.trace().len())
        })
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab3/replay");
    for n in [500usize, 5_000] {
        let (gdm, trace) = recorded(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("full_replay", n),
            &(gdm, trace),
            |b, (gdm, trace)| {
                b.iter(|| {
                    let mut r = Replayer::new(gdm, trace);
                    while r.step_forward().is_some() {}
                    black_box(r.position())
                })
            },
        );
    }
    g.finish();
}

fn bench_seek_and_diagram(c: &mut Criterion) {
    let (gdm, trace) = recorded(5_000);
    c.bench_function("tab3/seek_mid", |b| {
        b.iter(|| {
            let mut r = Replayer::new(&gdm, &trace);
            r.seek(black_box(2_500));
            black_box(r.position())
        })
    });
    c.bench_function("tab3/timing_diagram_build", |b| {
        b.iter(|| black_box(timing_diagram(&trace, "bench")))
    });
    let d = timing_diagram(&trace, "bench");
    c.bench_function("tab3/timing_diagram_svg", |b| {
        b.iter(|| black_box(d.to_svg()))
    });
    c.bench_function("tab3/trace_json", |b| b.iter(|| black_box(trace.to_json())));
    eprintln!(
        "[tab3] 5k-entry trace: {} bytes JSON, diagram {} lanes",
        trace.to_json().len(),
        d.lanes.len()
    );
}

criterion_group!(benches, bench_record, bench_replay, bench_seek_and_diagram);
criterion_main!(benches);
