//! A/B harness for the simulator's perf knobs: pumps the large-fleet
//! workload under every `{dispatch} × {memo_steps}` combination and
//! prints wall time, events fed (must match — the knobs are
//! behaviour-neutral), and memo hit/miss counters.
//!
//! ```text
//! cargo run --release -p gmdf-bench --example dispatch_matrix \
//!     [nodes] [tasks_per_node-1] [horizon_ns] [sessions] [period_scale]
//! ```
//!
//! Environment:
//! * `JITTER=<ns>` — per-board clock jitter. Jitter de-harmonizes
//!   release instants; without it, harmonic periods make many tasks
//!   fire at the same instant, which is the legacy scan's best case
//!   (one rescan amortizes over many releases) and hides the
//!   calendar's advantage.
//! * `ONLY=<scan-nomemo|scan-memo|cal-nomemo|cal-memo>` — run a single
//!   cell (handy under a profiler).

use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_bench::fleet_node_system;
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::SignalValue;
use gmdf_target::{DispatchMode, SimConfig};
use std::time::Instant;

fn connect(nodes: usize, gains: usize, scale: u64, sim: SimConfig) -> DebugSession {
    let mut s = Workflow::from_system(fleet_node_system(nodes, gains, scale))
        .unwrap()
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            sim,
        )
        .unwrap();
    s.schedule_signal(0, "u", SignalValue::Real(2.5)).unwrap();
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).map_or(8, |s| s.parse().unwrap());
    let gains: usize = args.get(2).map_or(7, |s| s.parse().unwrap());
    let horizon: u64 = args.get(3).map_or(50_000_000, |s| s.parse().unwrap());
    let nsess: usize = args.get(4).map_or(4, |s| s.parse().unwrap());
    let scale: u64 = args.get(5).map_or(1, |s| s.parse().unwrap());
    let jitter: u64 = std::env::var("JITTER").map_or(0, |s| s.parse().unwrap());
    let only = std::env::var("ONLY").ok();
    println!(
        "{nodes} nodes x {} tasks, horizon {horizon} ns, {nsess} sessions, \
         scale {scale}, jitter {jitter} ns",
        gains + 1
    );
    for (label, dispatch, memo) in [
        ("scan  nomemo", DispatchMode::LegacyScan, false),
        ("scan  memo  ", DispatchMode::LegacyScan, true),
        ("cal   nomemo", DispatchMode::Calendar, false),
        ("cal   memo  ", DispatchMode::Calendar, true),
    ] {
        if let Some(f) = &only {
            let key: String = label.split_whitespace().collect::<Vec<_>>().join("-");
            if key != *f {
                continue;
            }
        }
        let sim = SimConfig {
            dispatch,
            memo_steps: memo,
            clock_jitter_ns: jitter,
            ..SimConfig::default()
        };
        let mut best = f64::MAX;
        let mut fed = 0;
        let mut stats = (0u64, 0u64);
        for _ in 0..3 {
            fed = 0;
            let sessions: Vec<DebugSession> = (0..nsess)
                .map(|_| connect(nodes, gains, scale, sim))
                .collect();
            let t0 = Instant::now();
            let mut done = Vec::new();
            for mut s in sessions {
                fed += s.run_for(horizon).unwrap().events_fed;
                done.push(s);
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            stats = done.iter().fold((0, 0), |(h, m), s| {
                let (sh, sm) = s.simulator().memo_stats();
                (h + sh, m + sm)
            });
        }
        println!("  {label}  {best:>9.2} ms   fed {fed}  memo hits/misses {stats:?}");
    }
}
