//! RTA-vs-simulator soundness: the analyzer's promise, checked against
//! the ground truth.
//!
//! The contract (ISSUE 9): for any spec where the analyzer reports every
//! task `Schedulable`, the simulated run must produce **zero deadline
//! violations**, and the predicted WCRT must upper-bound **every
//! observed response time** — under zero jitter and under the widened
//! jitter/tick models alike. Deadline misses the simulator does produce
//! must land on tasks the analyzer flagged (`DeadlineRisk` /
//! `Overutilized`): risk verdicts are true positives, never the other
//! way around.
//!
//! Random workloads reuse the calendar-props generator shape (ring FSMs,
//! filters, cross-node relays over random periods, offsets, deadlines,
//! priorities); unit fixtures pin the textbook cases — harmonic vs
//! non-harmonic period sets, utilization > 1, adversarial periods that
//! diverge the fixpoint, and hyperperiod overflow.

use gmdf_analyze::{analyze, AnalysisError, TaskVerdict};
use gmdf_codegen::{
    compile_system, CompileOptions, DebugInfo, Instr, InstrumentOptions, NodeImage, ProgramImage,
    SymbolTable, TaskImage,
};
use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, SignalValue, System,
    Timing, VAR_TIME_IN_STATE,
};
use gmdf_target::{SimConfig, SimEvent, Simulator};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const HORIZON_NS: u64 = 20_000_000;

// -- randomized workload (calendar_props shape) -----------------------------

#[derive(Debug, Clone, Copy)]
enum ActorKind {
    Ring { states: usize },
    Filter,
    Relay,
}

#[derive(Debug, Clone)]
struct ActorSpec {
    kind: ActorKind,
    period_ns: u64,
    offset_ns: u64,
    tight_deadline: bool,
    priority: u8,
}

fn build_system(nodes: &[Vec<ActorSpec>]) -> System {
    let mut system = System::new("soundness_sys");
    let mut last_real_label: Option<String> = None;
    for (ni, actors) in nodes.iter().enumerate() {
        let mut node = NodeSpec::new(&format!("n{ni}"), 50_000_000);
        for (ai, spec) in actors.iter().enumerate() {
            let timing = Timing {
                period_ns: spec.period_ns,
                offset_ns: spec.offset_ns,
                deadline_ns: if spec.tight_deadline {
                    spec.period_ns / 2
                } else {
                    spec.period_ns
                },
                priority: spec.priority,
            };
            let out_label = format!("sig_{ni}_{ai}");
            let actor = match spec.kind {
                ActorKind::Ring { states } => {
                    let mut fb = FsmBuilder::new().output(Port::int("s"));
                    for i in 0..states {
                        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
                    }
                    for i in 0..states {
                        fb = fb.transition(
                            &format!("S{i}"),
                            &format!("S{}", (i + 1) % states),
                            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.0015)),
                        );
                    }
                    let fsm = fb.initial("S0").build().unwrap();
                    let net = NetworkBuilder::new()
                        .output(Port::int("s"))
                        .state_machine("ring", fsm)
                        .connect("ring.s", "s")
                        .unwrap()
                        .build()
                        .unwrap();
                    ActorBuilder::new(&format!("Ring{ni}_{ai}"), net)
                        .output("s", &out_label)
                        .timing(timing)
                        .build()
                        .unwrap()
                }
                ActorKind::Filter => {
                    let net = NetworkBuilder::new()
                        .input(Port::real("x"))
                        .output(Port::real("y"))
                        .block("lp", BasicOp::LowPass { alpha: 0.5 })
                        .connect("x", "lp.x")
                        .unwrap()
                        .connect("lp.y", "y")
                        .unwrap()
                        .build()
                        .unwrap();
                    let actor = ActorBuilder::new(&format!("Filter{ni}_{ai}"), net)
                        .input("x", "u")
                        .output("y", &out_label)
                        .timing(timing)
                        .build()
                        .unwrap();
                    last_real_label = Some(out_label.clone());
                    actor
                }
                ActorKind::Relay => {
                    let src = last_real_label.clone().unwrap_or_else(|| "u".to_owned());
                    let net = NetworkBuilder::new()
                        .input(Port::real("x"))
                        .output(Port::real("y"))
                        .block("g", BasicOp::Gain { k: 1.5 })
                        .connect("x", "g.x")
                        .unwrap()
                        .connect("g.y", "y")
                        .unwrap()
                        .build()
                        .unwrap();
                    let actor = ActorBuilder::new(&format!("Relay{ni}_{ai}"), net)
                        .input("x", &src)
                        .output("y", &out_label)
                        .timing(timing)
                        .build()
                        .unwrap();
                    last_real_label = Some(out_label.clone());
                    actor
                }
            };
            node.actors.push(actor);
        }
        system = system.with_node(node);
    }
    system
}

fn arb_actor() -> impl Strategy<Value = ActorSpec> {
    (
        (0u8..3, 2usize..5, 0usize..4),
        (0usize..3, any::<bool>(), 0u8..3),
    )
        .prop_map(|((kind, states, pi), (oi, tight_deadline, priority))| {
            let kind = match kind {
                0 => ActorKind::Ring { states },
                1 => ActorKind::Filter,
                _ => ActorKind::Relay,
            };
            ActorSpec {
                kind,
                period_ns: [500_000, 1_000_000, 1_250_000, 2_000_000][pi],
                offset_ns: [0, 137_000, 250_000][oi],
                tight_deadline,
                priority,
            }
        })
}

fn arb_nodes() -> impl Strategy<Value = Vec<Vec<ActorSpec>>> {
    proptest::collection::vec(proptest::collection::vec(arb_actor(), 1..4), 1..4)
}

/// Analyzes and simulates the same compiled image under `config`, then
/// checks the soundness contract on the outcome.
fn check_soundness(system: &System, config: SimConfig, instrument: InstrumentOptions) {
    let image = compile_system(
        system,
        &CompileOptions {
            instrument,
            faults: vec![],
        },
    )
    .expect("compiles");
    let report = analyze(system, &image, &config).expect("analysis settles");

    let mut sim = Simulator::new(image, config).expect("boots");
    for k in 0..7u64 {
        sim.schedule_signal(k * 3_000_000, "u", SignalValue::Real((k % 3) as f64))
            .ok();
    }
    sim.run_until(HORIZON_NS).expect("runs");

    // Observed ground truth, per (node, actor).
    let mut max_response: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut missed: BTreeSet<(String, String)> = BTreeSet::new();
    for ev in sim.events() {
        match ev {
            SimEvent::Completion {
                node,
                actor,
                response_ns,
                ..
            } => {
                let r = max_response
                    .entry((node.to_string(), actor.to_string()))
                    .or_insert(0);
                *r = (*r).max(*response_ns);
            }
            SimEvent::DeadlineMiss { node, actor, .. } => {
                missed.insert((node.to_string(), actor.to_string()));
            }
            _ => {}
        }
    }

    for node in &report.nodes {
        for task in &node.tasks {
            let key = (node.node.clone(), task.actor.clone());
            if let TaskVerdict::Schedulable { wcrt_ns } = task.verdict {
                // Schedulable ⇒ the simulator may not miss…
                assert!(
                    !missed.contains(&key),
                    "{}/{} declared Schedulable (wcrt {} ns) but missed its deadline",
                    node.node,
                    task.actor,
                    wcrt_ns
                );
                // …and every observed response is within the bound.
                if let Some(&observed) = max_response.get(&key) {
                    assert!(
                        observed <= wcrt_ns,
                        "{}/{}: observed response {} ns > predicted WCRT {} ns",
                        node.node,
                        task.actor,
                        observed,
                        wcrt_ns
                    );
                }
            }
        }
    }
    // Every miss is a true positive of some flagged task.
    for (node, actor) in &missed {
        let task = report.task(node, actor).expect("missed task is reported");
        assert!(
            !task.verdict.is_schedulable(),
            "{node}/{actor} missed but was not flagged"
        );
    }
    // And the headline form: all-Schedulable ⇒ a clean run.
    if report.all_schedulable() {
        assert!(missed.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero-jitter, tickless: the pure RTA contract.
    #[test]
    fn rta_is_sound_under_zero_jitter(
        nodes in arb_nodes(),
        latch_outputs in any::<bool>(),
        bus_latency_ns in prop_oneof![Just(0u64), Just(150_000u64)],
        instrument in 0u8..3,
    ) {
        let system = build_system(&nodes);
        let config = SimConfig {
            latch_outputs,
            bus_latency_ns,
            uart_baud: 1_000_000,
            ..SimConfig::default()
        };
        let instrument = match instrument {
            0 => InstrumentOptions::none(),
            1 => InstrumentOptions::behavior(),
            _ => InstrumentOptions::full(),
        };
        check_soundness(&system, config, instrument);
    }

    /// Jitter and tick knobs on: the *widened* bounds must still hold —
    /// releases displaced by capped jitter plus tick quantization never
    /// push a Schedulable task past its predicted WCRT.
    #[test]
    fn rta_is_sound_under_jitter_and_tick(
        nodes in arb_nodes(),
        seed in any::<u64>(),
        clock_jitter_ns in prop_oneof![Just(0u64), Just(40_000u64), Just(90_000u64)],
        tick_ns in prop_oneof![Just(0u64), Just(100_000u64)],
        latch_outputs in any::<bool>(),
    ) {
        let system = build_system(&nodes);
        let config = SimConfig {
            latch_outputs,
            uart_baud: 1_000_000,
            tick_ns,
            clock_jitter_ns,
            seed,
            ..SimConfig::default()
        };
        check_soundness(&system, config, InstrumentOptions::behavior());
    }
}

// -- textbook fixtures ------------------------------------------------------

/// A task whose step costs exactly `cycles` (PushI padding + Halt).
fn fixture_task(
    actor: &str,
    period_ns: u64,
    deadline_ns: u64,
    priority: u8,
    cycles: u64,
) -> TaskImage {
    assert!(cycles >= 1);
    let mut code = vec![Instr::PushI(0); (cycles - 1) as usize];
    code.push(Instr::Halt);
    TaskImage {
        actor: actor.into(),
        code,
        period_ns,
        offset_ns: 0,
        deadline_ns,
        priority,
        input_latches: vec![],
        publications: vec![],
        start_event: None,
        end_event: None,
        wcet: 0,
    }
}

fn fixture_image(cpu_hz: u64, tasks: Vec<TaskImage>) -> ProgramImage {
    ProgramImage {
        system: "fixture".into(),
        nodes: vec![NodeImage {
            node: "n0".into(),
            cpu_hz,
            data_cells: 0,
            data_init: vec![],
            tasks,
            board: BTreeMap::new(),
            subscriptions: vec![],
            symbols: SymbolTable::new(),
        }],
        debug: DebugInfo::default(),
    }
}

fn fixture_analyze(image: &ProgramImage) -> Result<gmdf_analyze::AnalysisReport, AnalysisError> {
    analyze(&System::new("fixture"), image, &SimConfig::default())
}

/// Harmonic periods at 95 % utilization: everything fits, with exact
/// pinned WCRTs (1 MHz CPU ⇒ 1 cycle = 1 µs; interference instances are
/// widened by one cycle for preemption rounding).
#[test]
fn harmonic_set_at_95_percent_is_schedulable() {
    let image = fixture_image(
        1_000_000,
        vec![
            fixture_task("A", 1_000_000, 1_000_000, 0, 500),
            fixture_task("B", 2_000_000, 2_000_000, 1, 500),
            fixture_task("C", 4_000_000, 4_000_000, 2, 800),
        ],
    );
    let report = fixture_analyze(&image).expect("settles");
    assert!(report.all_schedulable(), "report: {report:?}");
    let node = &report.nodes[0];
    assert_eq!(node.utilization_ppm, 950_000);
    assert!(!node.overutilized);
    assert_eq!(node.hyperperiod_ns, Some(4_000_000));
    let wcrt = |a: &str| match report.task("n0", a).unwrap().verdict {
        TaskVerdict::Schedulable { wcrt_ns } => wcrt_ns,
        other => panic!("{a}: {other:?}"),
    };
    assert_eq!(wcrt("A"), 500_000);
    assert_eq!(wcrt("B"), 1_502_000);
    assert_eq!(wcrt("C"), 3_806_000);
}

/// Same ~96 % utilization but non-harmonic periods: the lowest-priority
/// task no longer fits — the classic harmonic-vs-non-harmonic contrast.
#[test]
fn non_harmonic_set_at_96_percent_is_at_risk() {
    let image = fixture_image(
        1_000_000,
        vec![
            fixture_task("A", 1_000_000, 1_000_000, 0, 500),
            fixture_task("B", 1_400_000, 1_400_000, 1, 400),
            fixture_task("C", 2_000_000, 2_000_000, 2, 350),
        ],
    );
    let report = fixture_analyze(&image).expect("settles");
    let node = &report.nodes[0];
    assert!(!node.overutilized, "U ≈ 0.96 < 1");
    assert!(report.task("n0", "A").unwrap().verdict.is_schedulable());
    assert!(report.task("n0", "B").unwrap().verdict.is_schedulable());
    match report.task("n0", "C").unwrap().verdict {
        TaskVerdict::DeadlineRisk { bound_ns } => assert!(bound_ns > 2_000_000),
        other => panic!("expected DeadlineRisk, got {other:?}"),
    }
    let (_, warnings) = report.diagnostic_counts();
    assert!(warnings >= 1, "the risk must surface as a warning");
}

/// Utilization over 1: the high-priority task still fits, the rest is
/// `Overutilized` — and everything is warnings, never a refusal.
#[test]
fn overutilized_node_is_flagged_not_refused() {
    let image = fixture_image(
        1_000_000,
        vec![
            fixture_task("A", 1_000_000, 1_000_000, 0, 600),
            fixture_task("B", 1_000_000, 1_000_000, 1, 600),
        ],
    );
    let report = fixture_analyze(&image).expect("settles");
    let node = &report.nodes[0];
    assert!(node.overutilized);
    assert!(node.utilization_ppm > 1_000_000);
    assert!(report.task("n0", "A").unwrap().verdict.is_schedulable());
    assert_eq!(
        report.task("n0", "B").unwrap().verdict,
        TaskVerdict::Overutilized
    );
    let (errors, warnings) = report.diagnostic_counts();
    assert_eq!(errors, 0, "overutilization is advisory");
    assert!(warnings >= 2, "task + node warnings expected");
}

/// Adversarial period ratio: utilization a hair under 1 with a huge
/// deadline makes the fixpoint crawl through thousands of iterations —
/// the bounded budget turns that into an explicit `Diverged` error
/// instead of a near-endless spin.
#[test]
fn adversarial_periods_diverge_explicitly() {
    // 1 GHz ⇒ 1 cycle = 1 ns. hp task: C+slack = 9 999 ns of each
    // 10 000 ns period ⇒ 1 − U = 1e-4; the victim adds 5 000 ns more, so
    // the fixpoint sits ~5e7 ns away, one ceil boundary per iteration.
    let image = fixture_image(
        1_000_000_000,
        vec![
            fixture_task("hp", 10_000, 10_000, 0, 9_998),
            fixture_task("victim", 1_000_000_000_000, 1_000_000_000_000, 1, 5_000),
        ],
    );
    match fixture_analyze(&image) {
        Err(AnalysisError::Diverged {
            node,
            actor,
            iterations,
        }) => {
            assert_eq!((node.as_str(), actor.as_str()), ("n0", "victim"));
            assert_eq!(iterations, gmdf_analyze::MAX_RTA_ITERATIONS);
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

/// Pairwise-coprime periods near 2⁶³: the hyperperiod overflows u128 and
/// must come back as `None`, with the rest of the report intact.
#[test]
fn hyperperiod_overflow_is_survived() {
    let p1 = 1u64 << 63;
    let p2 = (1u64 << 63) - 1;
    let p3 = (1u64 << 63) - 3;
    let image = fixture_image(
        1_000_000_000,
        vec![
            fixture_task("A", p1, p1, 0, 2),
            fixture_task("B", p2, p2, 1, 2),
            fixture_task("C", p3, p3, 2, 2),
        ],
    );
    let report = fixture_analyze(&image).expect("settles");
    let node = &report.nodes[0];
    assert_eq!(node.hyperperiod_ns, None);
    assert!(!node.overutilized);
    assert!(report.all_schedulable());
}
