//! Fixed-priority preemptive response-time analysis, widened so every
//! bound is *sound against the simulator* — not just against the
//! textbook task model.
//!
//! The classic RTA fixpoint for task *i* is
//!
//! ```text
//! w ← C_i + Σ_{j ∈ hp(i)} ⌈(w + J_j) / T_j⌉ · C_j
//! ```
//!
//! We widen each term to cover the kernel's actual arithmetic:
//!
//! * **Costs** are `cycles_to_ns(wcet_cycles, hz)` — the kernel's own
//!   round-*up* conversion — so a task is never priced cheaper than the
//!   simulator charges it.
//! * **Release jitter** `J` comes from
//!   [`SimConfig::release_jitter_bound_ns`]: capped clock jitter plus
//!   tick quantization, mirroring `release_instant` exactly. The
//!   reported WCRT is `w + J_i`, measured from the *nominal* release —
//!   an upper bound on the simulator's `completion − actual_release`
//!   (actual releases never precede nominal ones) and the right quantity
//!   to compare against the relative deadline.
//! * **Preemption rounding**: the kernel floors a preempted job's
//!   progress to whole cycles and re-ceils the remainder, wasting less
//!   than one cycle-duration per preemption. Each interference instance
//!   is therefore charged `C_j + cycles_to_ns(1, hz)`.
//! * **Equal priorities**: the kernel breaks ties FIFO by release then
//!   task index; we count equal-priority peers as full interference — a
//!   sound over-approximation of either tie-break outcome.
//!
//! `Schedulable` additionally requires `wcrt ≤ period`: within one task
//! the kernel queues jobs FIFO, so a response bound is only carry-in-free
//! when each job finishes by the next release.
//!
//! All accumulation is `u128`; adversarial period ratios that make the
//! fixpoint crawl hit [`MAX_RTA_ITERATIONS`] and surface as
//! [`AnalysisError::Diverged`] instead of spinning.

use crate::{AnalysisError, Diagnostic, NodeReport, Pass, Severity, TaskReport, TaskVerdict};
use gmdf_codegen::{NodeImage, ProgramImage, TaskImage};
use gmdf_target::{cycles_to_ns, SimConfig};

/// Fixpoint iteration budget per task before declaring divergence.
pub const MAX_RTA_ITERATIONS: u32 = 4096;

/// Per-task parameters, pre-priced in nanoseconds.
struct Params {
    cost_ns: u64,
    period_ns: u64,
    deadline_ns: u64,
    priority: u8,
    jitter_ns: u64,
}

enum Rta {
    /// Fixpoint converged; payload is `w + J_i`.
    Converged(u64),
    /// The iterate crossed the deadline; payload is the bound reached.
    Exceeded(u64),
}

pub(crate) fn analyze_nodes(
    image: &ProgramImage,
    config: &SimConfig,
    diagnostics: &mut Vec<Diagnostic>,
) -> Result<Vec<NodeReport>, AnalysisError> {
    image
        .nodes
        .iter()
        .map(|n| analyze_node(n, config, diagnostics))
        .collect()
}

fn analyze_node(
    node: &NodeImage,
    config: &SimConfig,
    diagnostics: &mut Vec<Diagnostic>,
) -> Result<NodeReport, AnalysisError> {
    let cycle_ns = cycles_to_ns(1, node.cpu_hz.max(1));
    // The longest-path sweep is the expensive part of building `Params`;
    // computed once here and reused for the per-task report rows.
    let wcet: Vec<u64> = node.tasks.iter().map(TaskImage::wcet_cycles).collect();
    let params: Vec<Params> = node
        .tasks
        .iter()
        .zip(&wcet)
        .map(|(t, &wcet_cycles)| {
            // The simulator rejects period 0 at boot; analysis clamps it
            // (with an error diagnostic) so it can still report the rest.
            let period_ns = t.period_ns.max(1);
            if t.period_ns == 0 {
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    location: format!("{}/{}", node.node, t.actor),
                    message: "task period is zero; the simulator will refuse this image".into(),
                    pass: Pass::Schedulability,
                });
            }
            Params {
                cost_ns: cycles_to_ns(wcet_cycles, node.cpu_hz.max(1)),
                period_ns,
                deadline_ns: t.deadline_ns,
                priority: t.priority,
                jitter_ns: config.release_jitter_bound_ns(period_ns),
            }
        })
        .collect();

    let overutilized = utilization_exceeds_one(&params);
    let utilization_ppm = utilization_ppm(&params);
    let hyperperiod_ns = hyperperiod_ns(&params);

    let mut tasks = Vec::with_capacity(node.tasks.len());
    for (i, t) in node.tasks.iter().enumerate() {
        let p = &params[i];
        let verdict = match response_bound(i, &params, cycle_ns) {
            Ok(Rta::Converged(wcrt)) if wcrt <= p.deadline_ns && wcrt <= p.period_ns => {
                TaskVerdict::Schedulable { wcrt_ns: wcrt }
            }
            Ok(Rta::Converged(wcrt)) if wcrt <= p.deadline_ns => {
                // Fits the deadline but spans past the period: a later
                // job can queue behind this one (FIFO within a task), so
                // the bound is not carry-in-free.
                diagnostics.push(Diagnostic {
                    severity: Severity::Warning,
                    location: format!("{}/{}", node.node, t.actor),
                    message: format!(
                        "response bound {wcrt} ns exceeds the period {} ns: \
                         successive jobs can queue, so the deadline {} ns is \
                         not guaranteed",
                        p.period_ns, p.deadline_ns
                    ),
                    pass: Pass::Schedulability,
                });
                TaskVerdict::DeadlineRisk { bound_ns: wcrt }
            }
            Ok(Rta::Converged(bound) | Rta::Exceeded(bound)) => {
                if overutilized {
                    diagnostics.push(Diagnostic {
                        severity: Severity::Warning,
                        location: format!("{}/{}", node.node, t.actor),
                        message: format!(
                            "cannot meet its {} ns deadline: node `{}` is \
                             overutilized, so backlog grows without bound",
                            p.deadline_ns, node.node
                        ),
                        pass: Pass::Schedulability,
                    });
                    TaskVerdict::Overutilized
                } else {
                    diagnostics.push(Diagnostic {
                        severity: Severity::Warning,
                        location: format!("{}/{}", node.node, t.actor),
                        message: format!(
                            "worst-case response reaches {bound} ns, past the \
                             {} ns deadline (period {} ns, priority {})",
                            p.deadline_ns, p.period_ns, p.priority
                        ),
                        pass: Pass::Schedulability,
                    });
                    TaskVerdict::DeadlineRisk { bound_ns: bound }
                }
            }
            Err(iterations) => {
                return Err(AnalysisError::Diverged {
                    node: node.node.clone(),
                    actor: t.actor.clone(),
                    iterations,
                })
            }
        };
        tasks.push(TaskReport {
            actor: t.actor.clone(),
            period_ns: t.period_ns,
            deadline_ns: t.deadline_ns,
            priority: t.priority,
            wcet_cycles: wcet[i],
            wcet_ns: p.cost_ns,
            release_jitter_ns: p.jitter_ns,
            verdict,
        });
    }

    if overutilized {
        diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            location: node.node.clone(),
            message: format!(
                "utilization {:.2} % exceeds 100 % — the task set is \
                 overutilized (the simulator still runs it; verdicts are \
                 advisory)",
                utilization_ppm as f64 / 10_000.0
            ),
            pass: Pass::Schedulability,
        });
    }

    Ok(NodeReport {
        node: node.node.clone(),
        cpu_hz: node.cpu_hz,
        utilization_ppm,
        overutilized,
        hyperperiod_ns,
        tasks,
    })
}

/// One task's widened RTA fixpoint. `Err` carries the iteration count on
/// divergence.
///
/// Arithmetic is checked u64, not u128: this runs per task on the
/// server's registration path, and the window only overflows u64 after
/// it already dwarfs any representable deadline — overflow therefore
/// short-circuits to `Exceeded(u64::MAX)`, which is exact for every
/// deadline a `TaskImage` can carry.
fn response_bound(i: usize, params: &[Params], cycle_ns: u64) -> Result<Rta, u32> {
    let t = &params[i];
    let exceeded = Rta::Exceeded(u64::MAX);
    // Interference set — (jitter, period, per-release charge) — hoisted
    // out of the fixpoint, which otherwise re-filters and re-prices it
    // every iteration. Lower numeric priority preempts; equal priority
    // is counted as interference too (sound for FIFO tie-breaking).
    let mut interferers: Vec<(u64, u64, u64)> = Vec::with_capacity(params.len());
    for (j, o) in params.iter().enumerate() {
        if j == i || o.priority > t.priority {
            continue;
        }
        let Some(charge) = o.cost_ns.checked_add(cycle_ns) else {
            return Ok(exceeded);
        };
        interferers.push((o.jitter_ns, o.period_ns, charge));
    }
    let mut w = t.cost_ns;
    for _ in 0..MAX_RTA_ITERATIONS {
        let mut next = Some(t.cost_ns);
        for &(jitter_ns, period_ns, charge_ns) in &interferers {
            next = next.and_then(|acc| {
                let releases = w.checked_add(jitter_ns)?.div_ceil(period_ns);
                acc.checked_add(releases.checked_mul(charge_ns)?)
            });
        }
        let Some(next) = next else {
            return Ok(exceeded);
        };
        if next == w {
            return Ok(Rta::Converged(w.saturating_add(t.jitter_ns)));
        }
        w = next;
        let Some(response) = w.checked_add(t.jitter_ns) else {
            return Ok(exceeded);
        };
        if response > t.deadline_ns {
            return Ok(Rta::Exceeded(response));
        }
    }
    Err(MAX_RTA_ITERATIONS)
}

fn clamp(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

fn gcd64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Euclid with a u64 fast path: operands here are periods and reduced
/// fraction parts, which in practice fit u64 — and a hardware division
/// beats the software `__umodti3` loop by an order of magnitude on the
/// session-registration path.
fn gcd(a: u128, b: u128) -> u128 {
    match (u64::try_from(a), u64::try_from(b)) {
        (Ok(a), Ok(b)) => u128::from(gcd64(a, b)),
        _ => {
            let (mut a, mut b) = (a, b);
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        }
    }
}

/// Exact rational test `Σ cost/period > 1`, kept reduced as it
/// accumulates. Coprime near-2⁶⁴ periods can overflow the u128
/// denominator; falling back to the floored-ppm sum there never calls a
/// clearly feasible set overutilized (the exact path already caught any
/// single task with cost > period before the product can overflow).
fn utilization_exceeds_one(params: &[Params]) -> bool {
    // Cheap ppm bracket first: if even the ceiled sum stays at or below
    // 10⁶ the set cannot exceed 1, and if the floored sum is already
    // past 10⁶ it certainly does. Only the ambiguous band in between
    // pays for the exact rational accumulation (u128 gcd per task).
    let (mut lo, mut hi): (u128, u128) = (0, 0);
    for p in params {
        let c = u128::from(p.cost_ns) * 1_000_000;
        let t = u128::from(p.period_ns);
        lo = lo.saturating_add(c / t);
        hi = hi.saturating_add(c.div_ceil(t));
    }
    if hi <= 1_000_000 {
        return false;
    }
    if lo > 1_000_000 {
        return true;
    }
    let (mut num, mut den): (u128, u128) = (0, 1);
    for p in params {
        let c = u128::from(p.cost_ns);
        let t = u128::from(p.period_ns);
        let widened = num
            .checked_mul(t)
            .and_then(|a| c.checked_mul(den).and_then(|b| a.checked_add(b)))
            .zip(den.checked_mul(t));
        let Some((n, d)) = widened else {
            return utilization_ppm(params) > 1_000_000;
        };
        let g = gcd(n, d).max(1);
        num = n / g;
        den = d / g;
        if num > den {
            return true;
        }
    }
    num > den
}

/// Display utilization: Σ ⌊cost · 10⁶ / period⌋, saturating.
fn utilization_ppm(params: &[Params]) -> u64 {
    let mut total: u128 = 0;
    for p in params {
        total = total.saturating_add(u128::from(p.cost_ns) * 1_000_000 / u128::from(p.period_ns));
    }
    clamp(total)
}

/// LCM of all periods; `None` for an empty task set or on overflow.
fn hyperperiod_ns(params: &[Params]) -> Option<u128> {
    if params.is_empty() {
        return None;
    }
    let mut l: u128 = 1;
    for p in params {
        let t = u128::from(p.period_ns);
        l = (l / gcd(l, t).max(1)).checked_mul(t)?;
    }
    Some(l)
}
