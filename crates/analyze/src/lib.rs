//! # gmdf-analyze — static schedulability & model analysis
//!
//! The paper's model debugger catches design slips *at runtime*; this
//! crate catches a large class of them **before the first simulated
//! tick**, by analyzing the compiled [`ProgramImage`] together with the
//! platform [`SimConfig`] — no simulation involved. Three passes feed a
//! single [`Diagnostic`] stream:
//!
//! * **Schedulability** ([`Pass::Schedulability`]) — classic
//!   fixed-priority preemptive response-time analysis per task, priced
//!   with the image's cycle-accurate worst-case path
//!   ([`TaskImage::wcet_cycles`](gmdf_codegen::TaskImage::wcet_cycles))
//!   and *widened* by the kernel's release-jitter, tick-quantization and
//!   cycle-rounding models, so the bound is sound against the simulator
//!   (see `crates/analyze/tests/soundness.rs`). Yields per-task
//!   [`TaskVerdict`]s plus per-node utilization and hyperperiod.
//! * **Routes** ([`Pass::Routes`]) — graph analysis over the same
//!   publish routes the simulator precomputes: unreachable subscribers,
//!   publish cycles (feedback that can oscillate or amplify under
//!   deadline latching), and watch suggestions over cells nothing ever
//!   writes.
//! * **Lint** ([`Pass::Lint`]) — absorbs
//!   [`gmdf_comdes::lint`] model-level findings (undriven inputs,
//!   unreachable FSM states, …) so remote clients finally see them.
//!
//! Every verdict here is advisory: `Overutilized` is a **warning, never
//! a refusal** — the simulator stays the ground truth, and the soundness
//! suite holds the analyzer to it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod routes;
mod rta;

use gmdf_codegen::ProgramImage;
use gmdf_comdes::{LintWarning, System};
use gmdf_target::SimConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

pub use rta::MAX_RTA_ITERATIONS;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational — worth a look, not necessarily a problem.
    Info,
    /// Likely design slip; the spec still runs.
    Warning,
    /// The spec is broken in a way analysis can prove.
    Error,
}

/// Which analysis pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pass {
    /// Model-level lint absorbed from [`gmdf_comdes::lint`].
    Lint,
    /// Fixed-priority response-time / utilization analysis.
    Schedulability,
    /// Signal-route graph analysis.
    Routes,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Lint => "lint",
            Pass::Schedulability => "schedulability",
            Pass::Routes => "routes",
        })
    }
}

/// One finding from any pass — the single currency all diagnostics flow
/// through, from `comdes` lint to RTA verdicts to wire clients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Path-ish location (`node/actor`, `actor/block`, `node:board/x`).
    pub location: String,
    /// Human-readable description.
    pub message: String,
    /// The pass that produced it.
    pub pass: Pass,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(
            f,
            "{sev}: {} ({}) [{}]",
            self.message, self.location, self.pass
        )
    }
}

impl From<LintWarning> for Diagnostic {
    fn from(w: LintWarning) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            location: w.location,
            message: w.message,
            pass: Pass::Lint,
        }
    }
}

/// Schedulability verdict for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskVerdict {
    /// The RTA fixpoint converged within the deadline (and the period, so
    /// no same-task backlog): `wcrt_ns` upper-bounds every response time
    /// the simulator can observe under the analyzed configuration.
    Schedulable {
        /// Worst-case response time from the nominal release (ns),
        /// including the release-jitter widening.
        wcrt_ns: u64,
    },
    /// Demand can exceed the deadline. `bound_ns` is the response-time
    /// iterate at which analysis stopped — a certified lower bound on
    /// worst-case demand, already past the deadline.
    DeadlineRisk {
        /// Response bound reached when analysis stopped (ns).
        bound_ns: u64,
    },
    /// The task misses because its node's total utilization exceeds 1 —
    /// backlog grows without bound. Advisory only: the simulator still
    /// runs such specs (that is often the point of a debugger).
    Overutilized,
}

impl TaskVerdict {
    /// `true` for [`TaskVerdict::Schedulable`].
    pub fn is_schedulable(&self) -> bool {
        matches!(self, TaskVerdict::Schedulable { .. })
    }
}

/// Per-task analysis row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskReport {
    /// Actor name.
    pub actor: String,
    /// Release period (ns).
    pub period_ns: u64,
    /// Relative deadline (ns).
    pub deadline_ns: u64,
    /// Fixed priority (lower = higher).
    pub priority: u8,
    /// Worst-case cycles per activation (longest code path).
    pub wcet_cycles: u64,
    /// Worst-case execution time (ns, rounded up like the kernel does).
    pub wcet_ns: u64,
    /// Effective release-jitter bound (ns): capped clock jitter plus
    /// tick quantization, exactly as the kernel displaces releases.
    pub release_jitter_ns: u64,
    /// The schedulability verdict.
    pub verdict: TaskVerdict,
}

/// Per-node analysis summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node name.
    pub node: String,
    /// CPU clock (Hz).
    pub cpu_hz: u64,
    /// Total utilization in parts per million (Σ wcet/period, floored
    /// per task; saturates at `u64::MAX`). 1 000 000 = 100 %.
    pub utilization_ppm: u64,
    /// `true` when *exact* rational utilization exceeds 1 (conservative
    /// on arithmetic overflow).
    pub overutilized: bool,
    /// LCM of all task periods (ns), `None` when there are no tasks or
    /// the LCM overflows `u128`.
    pub hyperperiod_ns: Option<u128>,
    /// Per-task rows, in image task order.
    pub tasks: Vec<TaskReport>,
}

/// The full analysis output: per-node schedulability plus the unified
/// diagnostic stream from all passes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// System name (from the image).
    pub system: String,
    /// Per-node schedulability reports.
    pub nodes: Vec<NodeReport>,
    /// All findings, grouped by pass in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// `(errors, warnings)` counts — the summary the session directory
    /// carries per session.
    pub fn diagnostic_counts(&self) -> (u64, u64) {
        let mut errors = 0;
        let mut warnings = 0;
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => {}
            }
        }
        (errors, warnings)
    }

    /// `true` when every task on every node is `Schedulable`.
    pub fn all_schedulable(&self) -> bool {
        self.nodes
            .iter()
            .flat_map(|n| n.tasks.iter())
            .all(|t| t.verdict.is_schedulable())
    }

    /// Looks up one task's row.
    pub fn task(&self, node: &str, actor: &str) -> Option<&TaskReport> {
        self.nodes
            .iter()
            .find(|n| n.node == node)?
            .tasks
            .iter()
            .find(|t| t.actor == actor)
    }

    /// A degraded report carrying a single `Error` diagnostic — what the
    /// server caches when analysis itself fails, so a session is *never*
    /// refused over an analyzer limitation.
    pub fn from_failure(system: &str, message: String) -> Self {
        AnalysisReport {
            system: system.to_owned(),
            nodes: Vec::new(),
            diagnostics: vec![Diagnostic {
                severity: Severity::Error,
                location: system.to_owned(),
                message,
                pass: Pass::Schedulability,
            }],
        }
    }
}

/// Why analysis could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisError {
    /// The RTA fixpoint iteration neither converged nor crossed the
    /// deadline within [`MAX_RTA_ITERATIONS`] — adversarial period
    /// ratios can make the iteration crawl; we stop instead of spinning.
    Diverged {
        /// Node whose task diverged.
        node: String,
        /// Task actor name.
        actor: String,
        /// Iterations performed before giving up.
        iterations: u32,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Diverged {
                node,
                actor,
                iterations,
            } => write!(
                f,
                "response-time analysis for `{node}/{actor}` did not settle \
                 within {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Runs all passes over a system, its compiled image, and the platform
/// configuration.
///
/// `system` feeds the lint pass only; scheduling and routing analyze the
/// image — the artifact the simulator actually executes — so the bounds
/// hold for exactly what will run.
pub fn analyze(
    system: &System,
    image: &ProgramImage,
    config: &SimConfig,
) -> Result<AnalysisReport, AnalysisError> {
    let mut diagnostics: Vec<Diagnostic> = gmdf_comdes::lint(system)
        .into_iter()
        .map(Into::into)
        .collect();
    let nodes = rta::analyze_nodes(image, config, &mut diagnostics)?;
    routes::analyze_routes(image, config, &mut diagnostics);
    Ok(AnalysisReport {
        system: image.system.clone(),
        nodes,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_and_lint_conversion() {
        let d: Diagnostic = LintWarning {
            location: "Heater/ctl".into(),
            message: "state `Panic` is unreachable from the initial state".into(),
        }
        .into();
        assert_eq!(d.pass, Pass::Lint);
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(
            d.to_string(),
            "warning: state `Panic` is unreachable from the initial state \
             (Heater/ctl) [lint]"
        );
    }

    #[test]
    fn failure_report_counts_one_error() {
        let r = AnalysisReport::from_failure("sys", "rta diverged".into());
        assert_eq!(r.diagnostic_counts(), (1, 0));
        assert!(r.all_schedulable()); // vacuously: no tasks
        assert!(r.task("sys", "A").is_none());
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = AnalysisReport {
            system: "s".into(),
            nodes: vec![NodeReport {
                node: "n0".into(),
                cpu_hz: 50_000_000,
                utilization_ppm: 950_000,
                overutilized: false,
                hyperperiod_ns: Some(4_000_000),
                tasks: vec![TaskReport {
                    actor: "A".into(),
                    period_ns: 1_000_000,
                    deadline_ns: 1_000_000,
                    priority: 1,
                    wcet_cycles: 1_234,
                    wcet_ns: 24_680,
                    release_jitter_ns: 0,
                    verdict: TaskVerdict::Schedulable { wcrt_ns: 24_680 },
                }],
            }],
            diagnostics: vec![Diagnostic {
                severity: Severity::Warning,
                location: "n0/A".into(),
                message: "m".into(),
                pass: Pass::Schedulability,
            }],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
