//! Signal-route graph analysis over the compiled image.
//!
//! The simulator precomputes publish routes at boot: a publication of
//! label `L` on node `n` writes `n`'s own board cell and the board cell
//! of every *other* node whose board carries `L`. This pass analyzes the
//! same graph statically:
//!
//! * **Unreachable subscribers** — a node's `subscriptions` entry with no
//!   producer anywhere (a local publication writes the node's own board
//!   cell; a remote one is broadcast onto it): the cell can only move
//!   under an external stimulus.
//! * **Publish cycles** — tasks feeding each other's inputs in a loop
//!   (including self-loops). Legal, sometimes intentional (feedback
//!   controllers), but under deadline latching each hop adds a full
//!   deadline of delay and gain errors can amplify around the loop —
//!   worth a warning.
//! * **Undriven watches** — a `watch_suggestions` cell no task store, no
//!   kernel latch and no publication (local or routed) ever writes: the
//!   JTAG monitor would poll a constant forever.
//!
//! This pass runs on the server's session-registration path, so it is
//! budgeted against a scheduler pump slice (`BENCH_analyze.json`): the
//! node boards of a fleet image hold `nodes × labels` entries, and every
//! walk below is either a single linear scan of them or skipped outright
//! when the feature (latches, suggestions, edges) is absent.

use crate::{Diagnostic, Pass, Severity};
use gmdf_codegen::{Instr, ProgramImage};
use gmdf_comdes::fnv::FnvHashMap;
use gmdf_target::SimConfig;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) fn analyze_routes(
    image: &ProgramImage,
    config: &SimConfig,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // label → tasks that publish it, as (node index, task index), in
    // image order (only ever looked up, never iterated for output).
    let mut producers: FnvHashMap<&str, Vec<(usize, usize)>> = FnvHashMap::default();
    // label → tasks whose input latches read it (on their own node's board).
    let mut consumers: FnvHashMap<&str, Vec<(usize, usize)>> = FnvHashMap::default();
    for (ni, node) in image.nodes.iter().enumerate() {
        // Latched cell addresses, sorted; tiny in practice (most tasks
        // latch the handful of cells their inputs name), so one linear
        // walk of the board with a binary probe per entry resolves every
        // label without building a full reverse map per node.
        let mut latched: Vec<(u32, usize)> = Vec::new();
        for (ti, task) in node.tasks.iter().enumerate() {
            for p in &task.publications {
                producers
                    .entry(p.label.as_str())
                    .or_default()
                    .push((ni, ti));
            }
            for latch in &task.input_latches {
                latched.push((latch.from, ti));
            }
        }
        if latched.is_empty() {
            continue;
        }
        latched.sort_unstable();
        // Cell address → label for every cell a task can legally latch:
        // locally published cells plus subscribed cells. This sidesteps
        // walking the full `nodes × labels` board table; should an image
        // ever latch a cell outside that set, the per-node board walk
        // below restores full coverage.
        let mut cell_label: Vec<(u32, &str)> = Vec::new();
        for task in &node.tasks {
            for p in &task.publications {
                cell_label.push((p.board, p.label.as_str()));
            }
        }
        for label in &node.subscriptions {
            if let Some(sym) = node.board.get(label) {
                cell_label.push((sym.addr, label.as_str()));
            }
        }
        cell_label.sort_unstable();
        cell_label.dedup();
        let resolve = |addr: u32| -> Option<&str> {
            let i = cell_label.partition_point(|&(x, _)| x < addr);
            match cell_label.get(i) {
                Some(&(x, label)) if x == addr => Some(label),
                _ => None,
            }
        };
        if latched.iter().all(|&(a, _)| resolve(a).is_some()) {
            for &(addr, ti) in &latched {
                let label = resolve(addr).expect("checked above");
                consumers.entry(label).or_default().push((ni, ti));
            }
        } else {
            for (label, sym) in &node.board {
                let from = latched.partition_point(|&(a, _)| a < sym.addr);
                for &(_, ti) in latched[from..].iter().take_while(|&&(a, _)| a == sym.addr) {
                    consumers.entry(label.as_str()).or_default().push((ni, ti));
                }
            }
        }
    }

    unreachable_subscribers(image, &producers, diagnostics);
    publish_cycles(image, config, &producers, &consumers, diagnostics);
    undriven_watches(image, &producers, diagnostics);
}

/// Does any task on a node other than `ni` publish `label`?
fn has_remote_producer(
    producers: &FnvHashMap<&str, Vec<(usize, usize)>>,
    label: &str,
    ni: usize,
) -> bool {
    producers
        .get(label)
        .is_some_and(|ps| ps.iter().any(|&(pi, _)| pi != ni))
}

fn unreachable_subscribers(
    image: &ProgramImage,
    producers: &FnvHashMap<&str, Vec<(usize, usize)>>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    for node in &image.nodes {
        for label in &node.subscriptions {
            // A local publication writes the node's own board cell and a
            // remote one is broadcast onto it, so only a label nobody
            // publishes anywhere is unreachable.
            if !producers.contains_key(label.as_str()) {
                diagnostics.push(Diagnostic {
                    severity: Severity::Warning,
                    location: format!("{}:board/{label}", node.node),
                    message: format!(
                        "subscribes to `{label}` but no task on any node \
                         publishes it; only an external stimulus could \
                         drive this input"
                    ),
                    pass: Pass::Routes,
                });
            }
        }
    }
}

/// Tarjan-free cycle detection: iterative DFS with tri-coloring over the
/// task graph (edge = "publication of one task is latched by another").
fn publish_cycles(
    image: &ProgramImage,
    config: &SimConfig,
    producers: &FnvHashMap<&str, Vec<(usize, usize)>>,
    consumers: &FnvHashMap<&str, Vec<(usize, usize)>>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // An edge needs a label that is both published and latched; fleets
    // whose latched inputs are all externally driven have none, and skip
    // the id/adjacency build outright. Probe from the smaller side.
    let (small, large) = if producers.len() <= consumers.len() {
        (producers, consumers)
    } else {
        (consumers, producers)
    };
    if !small.keys().any(|l| large.contains_key(l)) {
        return;
    }
    // Dense task ids and adjacency.
    let mut ids: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut coords: Vec<(usize, usize)> = Vec::new();
    for (ni, node) in image.nodes.iter().enumerate() {
        for ti in 0..node.tasks.len() {
            ids.insert((ni, ti), coords.len());
            coords.push((ni, ti));
        }
    }
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); coords.len()];
    let mut edges = 0usize;
    for (label, prods) in producers {
        let Some(cons) = consumers.get(label) else {
            continue;
        };
        for &(pi, pt) in prods {
            for &(ci, ct) in cons {
                // Local consumption always sees the publish; remote
                // consumption requires the route (board carries the
                // label), which the consumer's input latch implies.
                if adj[ids[&(pi, pt)]].insert(ids[&(ci, ct)]) {
                    edges += 1;
                }
            }
        }
    }
    if edges == 0 {
        // No task feeds another: no cycle is possible and the DFS (plus
        // its per-task name strings) can be skipped wholesale.
        return;
    }
    let name = |id: usize| -> String {
        let (ni, ti) = coords[id];
        format!(
            "{}/{}",
            image.nodes[ni].node, image.nodes[ni].tasks[ti].actor
        )
    };

    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; coords.len()];
    let mut reported: BTreeSet<usize> = BTreeSet::new();
    for start in 0..coords.len() {
        if color[start] != 0 {
            continue;
        }
        // Stack of (vertex, successor list, next successor position).
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        color[start] = 1;
        stack.push((start, adj[start].iter().copied().collect(), 0));
        loop {
            let step = {
                let Some(frame) = stack.last_mut() else { break };
                if frame.2 < frame.1.len() {
                    let s = frame.1[frame.2];
                    frame.2 += 1;
                    Some(s)
                } else {
                    None
                }
            };
            let Some(s) = step else {
                let (v, _, _) = stack.pop().expect("non-empty stack");
                color[v] = 2;
                continue;
            };
            match color[s] {
                0 => {
                    color[s] = 1;
                    stack.push((s, adj[s].iter().copied().collect(), 0));
                }
                // Back edge: the cycle is the stack suffix from s.
                1 if reported.insert(s) => {
                    let from = stack
                        .iter()
                        .position(|&(x, _, _)| x == s)
                        .unwrap_or(stack.len() - 1);
                    let mut path: Vec<String> =
                        stack[from..].iter().map(|&(x, _, _)| name(x)).collect();
                    path.push(name(s));
                    let latching = if config.latch_outputs {
                        "each hop adds a full deadline of latency and \
                         gain errors can amplify around the loop"
                    } else {
                        "feedback timing depends on completion jitter"
                    };
                    diagnostics.push(Diagnostic {
                        severity: Severity::Warning,
                        location: name(s),
                        message: format!("publish cycle {}: {latching}", path.join(" -> ")),
                        pass: Pass::Routes,
                    });
                }
                _ => {}
            }
        }
    }
}

/// Marks every `pending` entry whose address equals `addr` as resolved.
fn mark_written(pending: &[(u32, usize)], resolved: &mut [bool], remaining: &mut usize, addr: u32) {
    let mut i = pending.partition_point(|&(a, _)| a < addr);
    while let Some(&(a, _)) = pending.get(i) {
        if a != addr {
            break;
        }
        if !resolved[i] {
            resolved[i] = true;
            *remaining -= 1;
        }
        i += 1;
    }
}

fn undriven_watches(
    image: &ProgramImage,
    producers: &FnvHashMap<&str, Vec<(usize, usize)>>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if image.debug.watch_suggestions.is_empty() {
        return;
    }
    let node_ix: FnvHashMap<&str, usize> = image
        .nodes
        .iter()
        .enumerate()
        .map(|(ni, n)| (n.node.as_str(), ni))
        .collect();
    // Per node, the suggested cells still unaccounted for, sorted by
    // address; `usize` is the suggestion index so surviving warnings can
    // be re-emitted in suggestion order.
    let mut pending: Vec<Vec<(u32, usize)>> = vec![Vec::new(); image.nodes.len()];
    for (si, (node_name, symbol)) in image.debug.watch_suggestions.iter().enumerate() {
        let Some(&ni) = node_ix.get(node_name.as_str()) else {
            continue;
        };
        if let Some(sym) = image.nodes[ni].symbols.get(symbol) {
            pending[ni].push((sym.addr, si));
        }
    }

    let mut survivors: Vec<usize> = Vec::new();
    for (ni, node) in image.nodes.iter().enumerate() {
        let pending = &mut pending[ni];
        if pending.is_empty() {
            continue;
        }
        pending.sort_unstable();
        let mut resolved = vec![false; pending.len()];
        let mut remaining = pending.len();
        // Latches and publications first: suggested watches are mostly
        // actor outputs, which publications cover without touching the
        // instruction stream. Only the leftovers pay the `Store` scan of
        // the node's code, and it stops as soon as everything resolves.
        'writes: {
            for task in &node.tasks {
                for latch in &task.input_latches {
                    mark_written(pending, &mut resolved, &mut remaining, latch.to);
                }
                for p in &task.publications {
                    mark_written(pending, &mut resolved, &mut remaining, p.board);
                }
            }
            if remaining == 0 {
                break 'writes;
            }
            for task in &node.tasks {
                for instr in &task.code {
                    if let Instr::Store(addr) = instr {
                        mark_written(pending, &mut resolved, &mut remaining, *addr);
                        if remaining == 0 {
                            break 'writes;
                        }
                    }
                }
            }
        }
        if remaining == 0 {
            continue;
        }
        // Not written locally: a broadcast routed in from another node
        // may still land on the cell, if it is a board cell of a
        // remotely produced label. Survivors are rare, so a linear board
        // probe per survivor beats indexing the whole board table.
        for (i, &(addr, si)) in pending.iter().enumerate() {
            if resolved[i] {
                continue;
            }
            let label = node
                .board
                .iter()
                .find(|(_, s)| s.addr == addr)
                .map(|(label, _)| label.as_str());
            if !label.is_some_and(|label| has_remote_producer(producers, label, ni)) {
                survivors.push(si);
            }
        }
    }

    survivors.sort_unstable();
    for si in survivors {
        let (node_name, symbol) = &image.debug.watch_suggestions[si];
        diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            location: format!("{node_name}:{symbol}"),
            message: format!(
                "suggested watch `{symbol}` is never written by any task, \
                 latch or publication — it would show its initial value \
                 forever"
            ),
            pass: Pass::Routes,
        });
    }
}
