//! Automatic layout algorithms for derived debug models.
//!
//! GMDF generates the GDM automatically from the input model (paper §II,
//! "automatic model abstraction and generation"), so element positions
//! must be computed, not hand-placed. Three layouts cover the COMDES
//! visuals: layered DAG for dataflow networks, a circle for state
//! machines, and a grid for flat element sets.

use crate::geom::{Point, Rect};
use std::collections::BTreeMap;

/// Size every laid-out element receives.
pub const NODE_W: f64 = 110.0;
/// Element height.
pub const NODE_H: f64 = 46.0;
/// Horizontal gap between layers / columns.
pub const GAP_X: f64 = 60.0;
/// Vertical gap between rows.
pub const GAP_Y: f64 = 34.0;

/// Places `n` items on a grid with `cols` columns; returns their bounds in
/// index order.
pub fn grid(n: usize, cols: usize) -> Vec<Rect> {
    let cols = cols.max(1);
    (0..n)
        .map(|i| {
            let col = i % cols;
            let row = i / cols;
            Rect::new(
                col as f64 * (NODE_W + GAP_X),
                row as f64 * (NODE_H + GAP_Y),
                NODE_W,
                NODE_H,
            )
        })
        .collect()
}

/// Places `n` items evenly on a circle (state-machine layout); returns
/// bounds in index order.
pub fn circle(n: usize) -> Vec<Rect> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![Rect::new(0.0, 0.0, NODE_W, NODE_H)];
    }
    // Radius grows with n so neighbors never overlap.
    let needed = (NODE_W + GAP_X) * n as f64 / std::f64::consts::TAU;
    let r = needed.max(NODE_W * 1.2);
    (0..n)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / n as f64 - std::f64::consts::FRAC_PI_2;
            let cx = r + r * a.cos();
            let cy = r + r * a.sin();
            Rect::new(cx - NODE_W / 2.0, cy - NODE_H / 2.0, NODE_W, NODE_H)
        })
        .collect()
}

/// Layered left-to-right DAG layout (dataflow networks).
///
/// `edges` are `(from, to)` index pairs. Nodes are assigned the layer
/// `1 + max(layer of predecessors)` (longest path); cycles are tolerated
/// by ignoring back edges discovered in index order. Within a layer,
/// nodes stack vertically in index order.
pub fn layered(n: usize, edges: &[(usize, usize)]) -> Vec<Rect> {
    let mut layer = vec![0usize; n];
    // Relaxation passes; n rounds suffice for any DAG, back edges damp out.
    for _ in 0..n {
        let mut changed = false;
        for &(a, b) in edges {
            if a < n && b < n && layer[b] < layer[a] + 1 && layer[a] + 1 < n {
                layer[b] = layer[a] + 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut row_of: BTreeMap<usize, usize> = BTreeMap::new();
    (0..n)
        .map(|i| {
            let l = layer[i];
            let row = row_of.entry(l).or_insert(0);
            let rect = Rect::new(
                l as f64 * (NODE_W + GAP_X),
                *row as f64 * (NODE_H + GAP_Y),
                NODE_W,
                NODE_H,
            );
            *row += 1;
            rect
        })
        .collect()
}

/// Routes a straight arrow between two element bounds, anchored on their
/// borders.
pub fn route_edge(from: &Rect, to: &Rect) -> Vec<Point> {
    if from == to {
        // Self-loop: a small detour above the element.
        let c = from.center();
        return vec![
            Point::new(c.x - 15.0, from.y),
            Point::new(c.x - 15.0, from.y - 25.0),
            Point::new(c.x + 15.0, from.y - 25.0),
            Point::new(c.x + 15.0, from.y),
        ];
    }
    let a = from.border_toward(to.center());
    let b = to.border_toward(from.center());
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_overlap(rects: &[Rect]) {
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                let disjoint =
                    a.right() <= b.x || b.right() <= a.x || a.bottom() <= b.y || b.bottom() <= a.y;
                assert!(disjoint, "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn grid_positions() {
        let r = grid(5, 2);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].x, 0.0);
        assert_eq!(r[1].x, NODE_W + GAP_X);
        assert_eq!(r[2].y, NODE_H + GAP_Y);
        no_overlap(&r);
    }

    #[test]
    fn circle_spreads_without_overlap() {
        for n in 1..12 {
            let r = circle(n);
            assert_eq!(r.len(), n);
            no_overlap(&r);
        }
        assert!(circle(0).is_empty());
    }

    #[test]
    fn layered_respects_edges() {
        // 0 → 1 → 2, 0 → 2.
        let r = layered(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(r[0].x < r[1].x);
        assert!(r[1].x < r[2].x);
        no_overlap(&r);
    }

    #[test]
    fn layered_tolerates_cycles() {
        let r = layered(2, &[(0, 1), (1, 0)]);
        assert_eq!(r.len(), 2);
        no_overlap(&r);
    }

    #[test]
    fn layered_stacks_same_layer_vertically() {
        // 0 → 1, 0 → 2: 1 and 2 share a layer.
        let r = layered(3, &[(0, 1), (0, 2)]);
        assert_eq!(r[1].x, r[2].x);
        assert_ne!(r[1].y, r[2].y);
    }

    #[test]
    fn route_edge_anchors_on_borders() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(100.0, 0.0, 10.0, 10.0);
        let pts = route_edge(&a, &b);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].x, 10.0); // right edge of a
        assert_eq!(pts[1].x, 100.0); // left edge of b
    }

    #[test]
    fn self_loop_routes_outside() {
        let a = Rect::new(0.0, 50.0, 10.0, 10.0);
        let pts = route_edge(&a, &a);
        assert!(pts.len() >= 4);
        assert!(pts.iter().any(|p| p.y < a.y));
    }
}
