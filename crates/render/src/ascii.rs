//! ASCII backend: renders a [`Scene`] onto a character grid.
//!
//! The terminal equivalent of the prototype's canvas — examples and tests
//! use it to show animated debug models without a display. Highlighted
//! elements are drawn with `#` borders, normal ones with `+-|`, dimmed
//! ones with `.`.

use crate::scene::{Scene, Shape, Style};

const SCALE_X: f64 = 0.14; // scene px → columns
const SCALE_Y: f64 = 0.07; // scene px → rows

#[derive(Debug)]
struct Grid {
    w: usize,
    h: usize,
    cells: Vec<char>,
}

impl Grid {
    fn new(w: usize, h: usize) -> Self {
        Grid {
            w,
            h,
            cells: vec![' '; w * h],
        }
    }

    fn set(&mut self, x: i64, y: i64, c: char) {
        if x >= 0 && y >= 0 && (x as usize) < self.w && (y as usize) < self.h {
            // Last writer wins; paint order (lines, then boxes, then
            // labels) keeps text on top.
            self.cells[y as usize * self.w + x as usize] = c;
        }
    }

    fn text(&mut self, x: i64, y: i64, s: &str) {
        for (i, c) in s.chars().enumerate() {
            self.set(x + i as i64, y, c);
        }
    }

    fn hline(&mut self, x0: i64, x1: i64, y: i64, c: char) {
        for x in x0.min(x1)..=x0.max(x1) {
            self.set(x, y, c);
        }
    }

    fn vline(&mut self, y0: i64, y1: i64, x: i64, c: char) {
        for y in y0.min(y1)..=y0.max(y1) {
            self.set(x, y, c);
        }
    }

    fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, _c: char) {
        // Bresenham with direction-aware glyphs.
        let (mut x, mut y) = (x0, y0);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            let glyph = if dy == 0 {
                '-'
            } else if dx == 0 {
                '|'
            } else if (sx > 0) == (sy > 0) {
                '\\'
            } else {
                '/'
            };
            self.set(x, y, glyph);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    fn to_string_trimmed(&self) -> String {
        let mut out = String::new();
        for row in 0..self.h {
            let line: String = self.cells[row * self.w..(row + 1) * self.w]
                .iter()
                .collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        // Trim trailing blank lines.
        while out.ends_with("\n\n") {
            out.pop();
        }
        out
    }
}

fn border_char(style: &Style) -> (char, char, char) {
    // (corner, horizontal, vertical)
    if *style == Style::highlighted() {
        ('#', '#', '#')
    } else if *style == Style::dimmed() {
        ('.', '.', '.')
    } else {
        ('+', '-', '|')
    }
}

/// Renders `scene` as ASCII art.
pub fn to_ascii(scene: &Scene) -> String {
    let b = scene.bounds();
    let w = ((b.right() * SCALE_X).ceil() as usize + 4).max(20);
    let h = ((b.bottom() * SCALE_Y).ceil() as usize + 3).max(4);
    let mut g = Grid::new(w.min(400), h.min(200));
    let cx = |v: f64| (v * SCALE_X) as i64;
    let cy = |v: f64| (v * SCALE_Y) as i64 + 1; // row 0 is the title

    g.text(0, 0, &format!("== {} ==", scene.title));

    // Lines first so boxes draw over them.
    for p in &scene.primitives {
        match &p.shape {
            Shape::Line { points } | Shape::Arrow { points } => {
                for wseg in points.windows(2) {
                    g.line(
                        cx(wseg[0].x),
                        cy(wseg[0].y),
                        cx(wseg[1].x),
                        cy(wseg[1].y),
                        '-',
                    );
                }
                if matches!(p.shape, Shape::Arrow { .. }) {
                    if let Some(last) = points.last() {
                        g.set(cx(last.x), cy(last.y), '>');
                    }
                }
            }
            _ => {}
        }
    }
    for p in &scene.primitives {
        match &p.shape {
            Shape::Rect { bounds, .. }
            | Shape::Ellipse { bounds }
            | Shape::Triangle { bounds }
            | Shape::Diamond { bounds } => {
                let (x0, y0) = (cx(bounds.x), cy(bounds.y));
                let (x1, y1) = (
                    cx(bounds.right()).max(x0 + 2),
                    cy(bounds.bottom()).max(y0 + 2),
                );
                let (corner, hc, vc) = border_char(&p.style);
                g.hline(x0, x1, y0, hc);
                g.hline(x0, x1, y1, hc);
                g.vline(y0, y1, x0, vc);
                g.vline(y0, y1, x1, vc);
                g.set(x0, y0, corner);
                g.set(x1, y0, corner);
                g.set(x0, y1, corner);
                g.set(x1, y1, corner);
                if let Some(label) = &p.label {
                    let mid_y = (y0 + y1) / 2;
                    let width = (x1 - x0 - 1).max(1) as usize;
                    let txt: String = label.chars().take(width).collect();
                    let start = x0 + 1 + ((width as i64 - txt.len() as i64) / 2).max(0);
                    g.text(start, mid_y, &txt);
                }
            }
            Shape::Text { at, .. } => {
                if let Some(label) = &p.label {
                    g.text(cx(at.x), cy(at.y), label);
                }
            }
            _ => {}
        }
    }
    g.to_string_trimmed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Rect};
    use crate::scene::{Primitive, Style};

    fn boxed(id: &str, x: f64, label: &str, style: Style) -> Primitive {
        Primitive {
            id: id.into(),
            shape: Shape::Rect {
                bounds: Rect::new(x, 0.0, 110.0, 46.0),
                rounded: 0.0,
            },
            style,
            label: Some(label.into()),
        }
    }

    #[test]
    fn labels_and_borders_appear() {
        let mut s = Scene::new("fsm");
        s.push(boxed("a", 0.0, "Idle", Style::default()));
        s.push(boxed("b", 200.0, "Run", Style::highlighted()));
        let art = to_ascii(&s);
        assert!(art.contains("== fsm =="));
        assert!(art.contains("Idle"));
        assert!(art.contains("Run"));
        assert!(art.contains('+'), "normal border");
        assert!(art.contains('#'), "highlighted border");
    }

    #[test]
    fn arrows_render_with_head() {
        let mut s = Scene::new("t");
        s.push(Primitive {
            id: "e".into(),
            shape: Shape::Arrow {
                points: vec![Point::new(0.0, 23.0), Point::new(300.0, 23.0)],
            },
            style: Style::default(),
            label: None,
        });
        let art = to_ascii(&s);
        assert!(art.contains('-'));
        assert!(art.contains('>'));
    }

    #[test]
    fn dimmed_style_uses_dots() {
        let mut s = Scene::new("t");
        s.push(boxed("a", 0.0, "Off", Style::dimmed()));
        let art = to_ascii(&s);
        assert!(art.contains('.'));
    }

    #[test]
    fn long_labels_truncate_within_box() {
        let mut s = Scene::new("t");
        s.push(boxed(
            "a",
            0.0,
            "AVeryLongStateNameIndeed",
            Style::default(),
        ));
        let art = to_ascii(&s);
        // Label must not leak past the right border into infinity.
        for line in art.lines() {
            assert!(line.len() < 80, "{line}");
        }
    }

    #[test]
    fn empty_scene_has_title_only() {
        let art = to_ascii(&Scene::new("nothing"));
        assert!(art.contains("== nothing =="));
    }
}
