//! The retained scene graph the debugger engine renders.
//!
//! A [`Scene`] is a flat list of primitives (the GEF figure-canvas
//! analog). Primitives carry stable string ids — the engine patches
//! styles by id to animate the model ("e.g. highlighting a GDM element",
//! paper §II) without rebuilding geometry.

use crate::geom::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A 24-bit RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Color(pub u8, pub u8, pub u8);

impl Color {
    /// Black.
    pub const BLACK: Color = Color(0, 0, 0);
    /// White.
    pub const WHITE: Color = Color(255, 255, 255);
    /// Light grey (default fill).
    pub const LIGHT: Color = Color(240, 240, 240);
    /// Highlight yellow (the active-state animation color).
    pub const HIGHLIGHT: Color = Color(255, 215, 0);
    /// Dimmed grey.
    pub const DIM: Color = Color(200, 200, 200);
    /// Alert red.
    pub const ALERT: Color = Color(220, 50, 47);
    /// Accent blue.
    pub const ACCENT: Color = Color(38, 139, 210);
    /// Confirm green.
    pub const OK: Color = Color(133, 153, 0);

    /// `#rrggbb` form.
    pub fn to_hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }
}

/// Visual style of a primitive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Style {
    /// Outline color.
    pub stroke: Color,
    /// Fill color (`None` = unfilled).
    pub fill: Option<Color>,
    /// Outline width.
    pub stroke_width: f64,
}

impl Default for Style {
    fn default() -> Self {
        Style {
            stroke: Color::BLACK,
            fill: Some(Color::LIGHT),
            stroke_width: 1.5,
        }
    }
}

impl Style {
    /// The style used for highlighted (active) elements.
    pub fn highlighted() -> Self {
        Style {
            stroke: Color::BLACK,
            fill: Some(Color::HIGHLIGHT),
            stroke_width: 3.0,
        }
    }

    /// The style used for dimmed (inactive) elements.
    pub fn dimmed() -> Self {
        Style {
            stroke: Color::DIM,
            fill: Some(Color::LIGHT),
            stroke_width: 1.0,
        }
    }
}

/// Geometry of a primitive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Axis-aligned rectangle (`rounded` corner radius, 0 = square).
    Rect {
        /// Bounds.
        bounds: Rect,
        /// Corner radius.
        rounded: f64,
    },
    /// Ellipse inscribed in `bounds`.
    Ellipse {
        /// Bounds.
        bounds: Rect,
    },
    /// Upward-pointing triangle inscribed in `bounds`.
    Triangle {
        /// Bounds.
        bounds: Rect,
    },
    /// Diamond (rhombus) inscribed in `bounds`.
    Diamond {
        /// Bounds.
        bounds: Rect,
    },
    /// Open polyline.
    Line {
        /// Waypoints (≥ 2).
        points: Vec<Point>,
    },
    /// Polyline with an arrowhead at the last point.
    Arrow {
        /// Waypoints (≥ 2).
        points: Vec<Point>,
    },
    /// Text anchored at `at` (baseline-left).
    Text {
        /// Anchor.
        at: Point,
        /// Font size in pixels.
        size: f64,
    },
}

impl Shape {
    /// Bounding box of the shape.
    pub fn bounds(&self) -> Rect {
        match self {
            Shape::Rect { bounds, .. }
            | Shape::Ellipse { bounds }
            | Shape::Triangle { bounds }
            | Shape::Diamond { bounds } => *bounds,
            Shape::Line { points } | Shape::Arrow { points } => {
                let mut r = Rect::new(points[0].x, points[0].y, 0.0, 0.0);
                for p in points {
                    r = r.union(&Rect::new(p.x, p.y, 0.0, 0.0));
                }
                r
            }
            Shape::Text { at, size } => Rect::new(at.x, at.y - size, size * 4.0, *size),
        }
    }
}

/// One drawable element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Primitive {
    /// Stable id (an element path for model-derived primitives).
    pub id: String,
    /// Geometry.
    pub shape: Shape,
    /// Style.
    pub style: Style,
    /// Centered label text, if any.
    pub label: Option<String>,
}

/// A renderable scene.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Primitives in paint order (later = on top).
    pub primitives: Vec<Primitive>,
    /// Scene title (rendered as a caption).
    pub title: String,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new(title: &str) -> Self {
        Scene {
            primitives: Vec::new(),
            title: title.to_owned(),
        }
    }

    /// Adds a primitive.
    pub fn push(&mut self, p: Primitive) {
        self.primitives.push(p);
    }

    /// Finds a primitive by id.
    pub fn find(&self, id: &str) -> Option<&Primitive> {
        self.primitives.iter().find(|p| p.id == id)
    }

    /// Mutable lookup by id (used by the engine to patch styles).
    pub fn find_mut(&mut self, id: &str) -> Option<&mut Primitive> {
        self.primitives.iter_mut().find(|p| p.id == id)
    }

    /// Overall bounding box (padded origin not applied).
    pub fn bounds(&self) -> Rect {
        let mut it = self.primitives.iter();
        let Some(first) = it.next() else {
            return Rect::default();
        };
        it.fold(first.shape.bounds(), |acc, p| acc.union(&p.shape.bounds()))
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.primitives.len()
    }

    /// `true` if the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.primitives.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_hex() {
        assert_eq!(Color::BLACK.to_hex(), "#000000");
        assert_eq!(Color(255, 215, 0).to_hex(), "#ffd700");
    }

    #[test]
    fn shape_bounds() {
        let line = Shape::Line {
            points: vec![Point::new(1.0, 2.0), Point::new(5.0, -3.0)],
        };
        let b = line.bounds();
        assert_eq!((b.x, b.y, b.w, b.h), (1.0, -3.0, 4.0, 5.0));
    }

    #[test]
    fn scene_find_and_bounds() {
        let mut s = Scene::new("t");
        s.push(Primitive {
            id: "a".into(),
            shape: Shape::Rect {
                bounds: Rect::new(0.0, 0.0, 10.0, 10.0),
                rounded: 0.0,
            },
            style: Style::default(),
            label: Some("A".into()),
        });
        s.push(Primitive {
            id: "b".into(),
            shape: Shape::Ellipse {
                bounds: Rect::new(20.0, 0.0, 10.0, 10.0),
            },
            style: Style::highlighted(),
            label: None,
        });
        assert_eq!(s.len(), 2);
        assert!(s.find("a").is_some());
        assert!(s.find("ghost").is_none());
        assert_eq!(s.bounds(), Rect::new(0.0, 0.0, 30.0, 10.0));
        s.find_mut("a").unwrap().style = Style::dimmed();
        assert_eq!(s.find("a").unwrap().style, Style::dimmed());
    }
}
