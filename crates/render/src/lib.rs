//! # gmdf-render — headless graphics for GMDF
//!
//! The reproduction's stand-in for the Eclipse Graphical Editing
//! Framework the prototype draws with (paper §III): a retained
//! [`Scene`] graph, automatic [`layout`]s for derived debug models,
//! [`to_svg`] and [`to_ascii`] backends, and the replay [`TimingDiagram`].
//!
//! ```
//! use gmdf_render::{layout, Primitive, Scene, Shape, Style};
//!
//! let mut scene = Scene::new("two states");
//! for (i, (name, style)) in [("Idle", Style::default()),
//!                            ("Run", Style::highlighted())].iter().enumerate() {
//!     let bounds = layout::grid(2, 2)[i];
//!     scene.push(Primitive {
//!         id: format!("fsm/{name}"),
//!         shape: Shape::Rect { bounds, rounded: 8.0 },
//!         style: *style,
//!         label: Some(name.to_string()),
//!     });
//! }
//! let svg = gmdf_render::to_svg(&scene);
//! assert!(svg.contains("Run"));
//! let art = gmdf_render::to_ascii(&scene);
//! assert!(art.contains("Idle"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ascii;
mod geom;
pub mod layout;
mod scene;
mod svg;
mod timing;

pub use ascii::to_ascii;
pub use geom::{Point, Rect};
pub use scene::{Color, Primitive, Scene, Shape, Style};
pub use svg::to_svg;
pub use timing::{Lane, Marker, Segment, TimingDiagram};
