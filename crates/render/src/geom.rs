//! Plain 2-D geometry for the scene graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in scene coordinates (pixels; y grows downward, SVG-style).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// An axis-aligned rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width (≥ 0).
    pub w: f64,
    /// Height (≥ 0).
    pub h: f64,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Rect { x, y, w, h }
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Right edge.
    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f64 {
        self.y + self.h
    }

    /// Smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let r = self.right().max(other.right());
        let b = self.bottom().max(other.bottom());
        Rect::new(x, y, r - x, b - y)
    }

    /// Grows the rectangle by `m` on every side.
    pub fn inflate(&self, m: f64) -> Rect {
        Rect::new(self.x - m, self.y - m, self.w + 2.0 * m, self.h + 2.0 * m)
    }

    /// Point where the segment from the center toward `target` crosses the
    /// rectangle border — used to anchor arrows on shape outlines.
    pub fn border_toward(&self, target: Point) -> Point {
        let c = self.center();
        let dx = target.x - c.x;
        let dy = target.y - c.y;
        if dx == 0.0 && dy == 0.0 {
            return c;
        }
        let half_w = self.w / 2.0;
        let half_h = self.h / 2.0;
        // Scale the direction vector until it touches the border.
        let sx = if dx != 0.0 {
            half_w / dx.abs()
        } else {
            f64::INFINITY
        };
        let sy = if dy != 0.0 {
            half_h / dy.abs()
        } else {
            f64::INFINITY
        };
        let s = sx.min(sy);
        Point::new(c.x + dx * s, c.y + dy * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_and_edges() {
        let r = Rect::new(10.0, 20.0, 30.0, 40.0);
        assert_eq!(r.center(), Point::new(25.0, 40.0));
        assert_eq!(r.right(), 40.0);
        assert_eq!(r.bottom(), 60.0);
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(20.0, 5.0, 10.0, 20.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 30.0, 25.0));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let r = Rect::new(5.0, 5.0, 10.0, 10.0).inflate(2.0);
        assert_eq!(r, Rect::new(3.0, 3.0, 14.0, 14.0));
    }

    #[test]
    fn border_toward_hits_edges() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        // Straight right.
        let p = r.border_toward(Point::new(100.0, 5.0));
        assert_eq!(p, Point::new(10.0, 5.0));
        // Straight down.
        let p = r.border_toward(Point::new(5.0, 100.0));
        assert_eq!(p, Point::new(5.0, 10.0));
        // Degenerate: target at center.
        let p = r.border_toward(r.center());
        assert_eq!(p, r.center());
    }
}
