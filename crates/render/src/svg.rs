//! SVG backend: serializes a [`Scene`] to a standalone SVG document.

use crate::geom::Rect;
use crate::scene::{Primitive, Scene, Shape};
use std::fmt::Write;

const MARGIN: f64 = 20.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn style_attrs(p: &Primitive) -> String {
    let fill = p
        .style
        .fill
        .map(|c| c.to_hex())
        .unwrap_or_else(|| "none".to_owned());
    format!(
        "fill=\"{}\" stroke=\"{}\" stroke-width=\"{}\"",
        fill,
        p.style.stroke.to_hex(),
        p.style.stroke_width
    )
}

fn render_primitive(out: &mut String, p: &Primitive, dx: f64, dy: f64) {
    let attrs = style_attrs(p);
    let id = esc(&p.id);
    match &p.shape {
        Shape::Rect { bounds, rounded } => {
            let _ = writeln!(
                out,
                "  <rect data-id=\"{id}\" x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" rx=\"{rounded}\" {attrs}/>",
                bounds.x + dx,
                bounds.y + dy,
                bounds.w,
                bounds.h
            );
        }
        Shape::Ellipse { bounds } => {
            let c = bounds.center();
            let _ = writeln!(
                out,
                "  <ellipse data-id=\"{id}\" cx=\"{:.1}\" cy=\"{:.1}\" rx=\"{:.1}\" ry=\"{:.1}\" {attrs}/>",
                c.x + dx,
                c.y + dy,
                bounds.w / 2.0,
                bounds.h / 2.0
            );
        }
        Shape::Triangle { bounds } => {
            let _ = writeln!(
                out,
                "  <polygon data-id=\"{id}\" points=\"{:.1},{:.1} {:.1},{:.1} {:.1},{:.1}\" {attrs}/>",
                bounds.x + bounds.w / 2.0 + dx,
                bounds.y + dy,
                bounds.x + dx,
                bounds.bottom() + dy,
                bounds.right() + dx,
                bounds.bottom() + dy
            );
        }
        Shape::Diamond { bounds } => {
            let c = bounds.center();
            let _ = writeln!(
                out,
                "  <polygon data-id=\"{id}\" points=\"{:.1},{:.1} {:.1},{:.1} {:.1},{:.1} {:.1},{:.1}\" {attrs}/>",
                c.x + dx,
                bounds.y + dy,
                bounds.right() + dx,
                c.y + dy,
                c.x + dx,
                bounds.bottom() + dy,
                bounds.x + dx,
                c.y + dy
            );
        }
        Shape::Line { points } | Shape::Arrow { points } => {
            let pts: Vec<String> = points
                .iter()
                .map(|p| format!("{:.1},{:.1}", p.x + dx, p.y + dy))
                .collect();
            let marker = if matches!(p.shape, Shape::Arrow { .. }) {
                " marker-end=\"url(#arrowhead)\""
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  <polyline data-id=\"{id}\" points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\"{marker}/>",
                pts.join(" "),
                p.style.stroke.to_hex(),
                p.style.stroke_width
            );
        }
        Shape::Text { at, size } => {
            let _ = writeln!(
                out,
                "  <text data-id=\"{id}\" x=\"{:.1}\" y=\"{:.1}\" font-size=\"{size}\" font-family=\"monospace\" fill=\"{}\">{}</text>",
                at.x + dx,
                at.y + dy,
                p.style.stroke.to_hex(),
                esc(p.label.as_deref().unwrap_or(""))
            );
        }
    }
    // Centered label for closed shapes.
    if !matches!(p.shape, Shape::Text { .. }) {
        if let Some(label) = &p.label {
            let b = p.shape.bounds();
            let c = b.center();
            let _ = writeln!(
                out,
                "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" font-family=\"monospace\" text-anchor=\"middle\" dominant-baseline=\"middle\" fill=\"#000000\">{}</text>",
                c.x + dx,
                c.y + dy,
                esc(label)
            );
        }
    }
}

/// Renders `scene` to a standalone SVG document.
pub fn to_svg(scene: &Scene) -> String {
    let b = if scene.is_empty() {
        Rect::new(0.0, 0.0, 100.0, 40.0)
    } else {
        scene.bounds().inflate(MARGIN)
    };
    let (dx, dy) = (-b.x, -b.y + 16.0); // leave room for the title
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">",
        b.w,
        b.h + 20.0,
        b.w,
        b.h + 20.0
    );
    out.push_str(
        "  <defs><marker id=\"arrowhead\" markerWidth=\"10\" markerHeight=\"8\" refX=\"9\" refY=\"4\" orient=\"auto\"><polygon points=\"0 0, 10 4, 0 8\"/></marker></defs>\n",
    );
    let _ = writeln!(
        out,
        "  <text x=\"6\" y=\"13\" font-size=\"13\" font-family=\"monospace\" font-weight=\"bold\">{}</text>",
        esc(&scene.title)
    );
    for p in &scene.primitives {
        render_primitive(&mut out, p, dx, dy);
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::scene::{Color, Style};

    fn sample_scene() -> Scene {
        let mut s = Scene::new("demo <model>");
        s.push(Primitive {
            id: "A/state".into(),
            shape: Shape::Rect {
                bounds: Rect::new(0.0, 0.0, 100.0, 40.0),
                rounded: 6.0,
            },
            style: Style::highlighted(),
            label: Some("Idle".into()),
        });
        s.push(Primitive {
            id: "edge".into(),
            shape: Shape::Arrow {
                points: vec![Point::new(100.0, 20.0), Point::new(160.0, 20.0)],
            },
            style: Style {
                fill: None,
                ..Style::default()
            },
            label: None,
        });
        s.push(Primitive {
            id: "t".into(),
            shape: Shape::Text {
                at: Point::new(0.0, 80.0),
                size: 12.0,
            },
            style: Style {
                stroke: Color::ALERT,
                ..Style::default()
            },
            label: Some("a < b".into()),
        });
        s
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = to_svg(&sample_scene());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("data-id=\"A/state\""));
        assert!(svg.contains("marker-end=\"url(#arrowhead)\""));
        assert!(svg.contains(">Idle<"));
        // Escaping.
        assert!(svg.contains("demo &lt;model&gt;"));
        assert!(svg.contains("a &lt; b"));
        assert!(!svg.contains("a < b<"));
    }

    #[test]
    fn highlight_color_present() {
        let svg = to_svg(&sample_scene());
        assert!(svg.contains(&Color::HIGHLIGHT.to_hex()));
    }

    #[test]
    fn empty_scene_renders() {
        let svg = to_svg(&Scene::new("empty"));
        assert!(svg.contains("empty"));
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn all_shapes_render() {
        let mut s = Scene::new("shapes");
        let b = Rect::new(0.0, 0.0, 50.0, 30.0);
        for (i, shape) in [
            Shape::Rect {
                bounds: b,
                rounded: 0.0,
            },
            Shape::Ellipse { bounds: b },
            Shape::Triangle { bounds: b },
            Shape::Diamond { bounds: b },
            Shape::Line {
                points: vec![Point::new(0.0, 0.0), Point::new(9.0, 9.0)],
            },
        ]
        .into_iter()
        .enumerate()
        {
            s.push(Primitive {
                id: format!("p{i}"),
                shape,
                style: Style::default(),
                label: None,
            });
        }
        let svg = to_svg(&s);
        assert_eq!(svg.matches("data-id=").count(), 5);
        assert!(svg.contains("<ellipse"));
        assert!(svg.contains("<polygon"));
        assert!(svg.contains("<polyline"));
    }
}
