//! Timing diagrams for trace replay.
//!
//! "The user can then monitor the application's behavior via a replay
//! function associated with a timing diagram" (paper §II). A
//! [`TimingDiagram`] holds per-element lanes of labeled occupancy
//! segments (state names, task activity) plus point events, and renders
//! to SVG or ASCII.

use std::fmt::Write;

/// A labeled occupancy interval on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Start time (ns).
    pub from_ns: u64,
    /// End time (ns).
    pub to_ns: u64,
    /// Label shown in the segment (state name, task phase…).
    pub label: String,
}

/// A point event marker on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Marker {
    /// Event instant (ns).
    pub at_ns: u64,
    /// One-character glyph (e.g. `*` publish, `!` violation).
    pub glyph: char,
    /// Tooltip/legend text.
    pub label: String,
}

/// One horizontal lane of the diagram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Lane {
    /// Lane name (element path or actor).
    pub name: String,
    /// Occupancy segments, non-overlapping, time-ordered.
    pub segments: Vec<Segment>,
    /// Point events.
    pub markers: Vec<Marker>,
}

/// A multi-lane timing diagram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimingDiagram {
    /// Diagram title.
    pub title: String,
    /// Lanes in display order.
    pub lanes: Vec<Lane>,
    /// Time window start.
    pub t0_ns: u64,
    /// Time window end.
    pub t1_ns: u64,
}

impl TimingDiagram {
    /// Creates an empty diagram over `[t0, t1]`.
    pub fn new(title: &str, t0_ns: u64, t1_ns: u64) -> Self {
        TimingDiagram {
            title: title.to_owned(),
            lanes: Vec::new(),
            t0_ns,
            t1_ns: t1_ns.max(t0_ns + 1),
        }
    }

    /// Adds (or reuses) a lane by name, returning its index.
    pub fn lane(&mut self, name: &str) -> usize {
        if let Some(i) = self.lanes.iter().position(|l| l.name == name) {
            return i;
        }
        self.lanes.push(Lane {
            name: name.to_owned(),
            ..Lane::default()
        });
        self.lanes.len() - 1
    }

    /// Appends a segment to lane `name` (clipped to the window).
    pub fn segment(&mut self, name: &str, from_ns: u64, to_ns: u64, label: &str) {
        let (t0, t1) = (self.t0_ns, self.t1_ns);
        let li = self.lane(name);
        let from = from_ns.max(t0);
        let to = to_ns.min(t1);
        if from < to {
            self.lanes[li].segments.push(Segment {
                from_ns: from,
                to_ns: to,
                label: label.to_owned(),
            });
        }
    }

    /// Adds a point marker to lane `name`.
    pub fn marker(&mut self, name: &str, at_ns: u64, glyph: char, label: &str) {
        if at_ns < self.t0_ns || at_ns > self.t1_ns {
            return;
        }
        let li = self.lane(name);
        self.lanes[li].markers.push(Marker {
            at_ns,
            glyph,
            label: label.to_owned(),
        });
    }

    fn span(&self) -> f64 {
        (self.t1_ns - self.t0_ns) as f64
    }

    /// Renders the diagram as ASCII art, `width` columns of timeline.
    pub fn to_ascii(&self, width: usize) -> String {
        let width = width.clamp(20, 300);
        let name_w = self
            .lanes
            .iter()
            .map(|l| l.name.len())
            .max()
            .unwrap_or(4)
            .clamp(4, 32);
        let col = |t: u64| -> usize {
            (((t - self.t0_ns) as f64 / self.span()) * (width - 1) as f64).round() as usize
        };
        let mut out = format!(
            "== {} ==  [{} ns .. {} ns]\n",
            self.title, self.t0_ns, self.t1_ns
        );
        for lane in &self.lanes {
            let mut row = vec![' '; width];
            for seg in &lane.segments {
                let a = col(seg.from_ns);
                let b = col(seg.to_ns).max(a + 1).min(width);
                for cell in row.iter_mut().take(b).skip(a) {
                    *cell = '=';
                }
                // Place the label inside the segment if it fits.
                let label: Vec<char> = seg.label.chars().take(b - a).collect();
                for (i, c) in label.iter().enumerate() {
                    row[a + i] = *c;
                }
            }
            for m in &lane.markers {
                let c = col(m.at_ns).min(width - 1);
                row[c] = m.glyph;
            }
            let _ = writeln!(
                out,
                "{:>name_w$} |{}|",
                truncate(&lane.name, name_w),
                row.iter().collect::<String>()
            );
        }
        // Time axis.
        let _ = writeln!(out, "{:>name_w$} +{}+", "", "-".repeat(width));
        out
    }

    /// Renders the diagram as an SVG document.
    pub fn to_svg(&self) -> String {
        const LANE_H: f64 = 34.0;
        const NAME_W: f64 = 170.0;
        const PLOT_W: f64 = 760.0;
        let h = 40.0 + self.lanes.len() as f64 * LANE_H + 24.0;
        let x_of = |t: u64| -> f64 { NAME_W + ((t - self.t0_ns) as f64 / self.span()) * PLOT_W };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{h:.0}\">",
            NAME_W + PLOT_W + 20.0
        );
        let _ = writeln!(
            out,
            "  <text x=\"6\" y=\"16\" font-size=\"13\" font-family=\"monospace\" font-weight=\"bold\">{}</text>",
            self.title
        );
        for (li, lane) in self.lanes.iter().enumerate() {
            let y = 34.0 + li as f64 * LANE_H;
            let _ = writeln!(
                out,
                "  <text x=\"6\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\">{}</text>",
                y + 16.0,
                lane.name
            );
            let _ = writeln!(
                out,
                "  <line x1=\"{NAME_W}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#cccccc\"/>",
                y + LANE_H - 6.0,
                NAME_W + PLOT_W,
                y + LANE_H - 6.0
            );
            for seg in &lane.segments {
                let x0 = x_of(seg.from_ns);
                let x1 = x_of(seg.to_ns);
                let hue = hash_color(&seg.label);
                let _ = writeln!(
                    out,
                    "  <rect x=\"{x0:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"20\" fill=\"{hue}\" stroke=\"#333333\" stroke-width=\"0.7\"/>",
                    y + 2.0,
                    (x1 - x0).max(1.0)
                );
                if x1 - x0 > 24.0 {
                    let _ = writeln!(
                        out,
                        "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" font-family=\"monospace\" text-anchor=\"middle\">{}</text>",
                        (x0 + x1) / 2.0,
                        y + 16.0,
                        seg.label
                    );
                }
            }
            for m in &lane.markers {
                let x = x_of(m.at_ns);
                let _ = writeln!(
                    out,
                    "  <text x=\"{x:.1}\" y=\"{:.1}\" font-size=\"13\" font-family=\"monospace\" text-anchor=\"middle\">{}</text>",
                    y + 14.0,
                    m.glyph
                );
            }
        }
        let _ = write!(
            out,
            "  <text x=\"{NAME_W}\" y=\"{:.1}\" font-size=\"10\" font-family=\"monospace\">{} ns</text>\n  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" font-family=\"monospace\" text-anchor=\"end\">{} ns</text>\n",
            h - 6.0,
            self.t0_ns,
            NAME_W + PLOT_W,
            h - 6.0,
            self.t1_ns
        );
        out.push_str("</svg>\n");
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("…{}", &s[s.len() - (n - 1)..])
    }
}

/// Deterministic pastel color for a segment label.
fn hash_color(label: &str) -> String {
    let mut h: u32 = 2166136261;
    for b in label.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    let r = 160 + (h & 0x3F) as u8;
    let g = 160 + ((h >> 8) & 0x3F) as u8;
    let b = 160 + ((h >> 16) & 0x3F) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimingDiagram {
        let mut d = TimingDiagram::new("Light/ctl", 0, 1000);
        d.segment("Light/ctl", 0, 400, "Red");
        d.segment("Light/ctl", 400, 700, "Green");
        d.segment("Light/ctl", 700, 1000, "Yellow");
        d.marker("Light/out", 400, '*', "publish");
        d
    }

    #[test]
    fn lanes_created_on_demand() {
        let d = sample();
        assert_eq!(d.lanes.len(), 2);
        assert_eq!(d.lanes[0].segments.len(), 3);
        assert_eq!(d.lanes[1].markers.len(), 1);
    }

    #[test]
    fn segments_clip_to_window() {
        let mut d = TimingDiagram::new("t", 100, 200);
        d.segment("a", 0, 150, "x"); // clipped to [100,150]
        d.segment("a", 180, 500, "y"); // clipped to [180,200]
        d.segment("a", 300, 400, "z"); // fully outside → dropped
        assert_eq!(d.lanes[0].segments.len(), 2);
        assert_eq!(d.lanes[0].segments[0].from_ns, 100);
        assert_eq!(d.lanes[0].segments[1].to_ns, 200);
        d.marker("a", 999, '!', "late"); // outside → dropped
        assert!(d.lanes[0].markers.is_empty());
    }

    #[test]
    fn ascii_shows_labels_and_markers() {
        let art = sample().to_ascii(60);
        assert!(art.contains("Red"));
        assert!(art.contains("Green"));
        assert!(art.contains('*'));
        assert!(art.contains("Light/ctl"));
        // Axis line present.
        assert!(art.lines().last().unwrap().contains('+'));
    }

    #[test]
    fn svg_contains_lane_names_and_segments() {
        let svg = sample().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("Light/ctl"));
        assert!(svg.contains(">Red<"));
        assert!(svg.matches("<rect").count() >= 3);
    }

    #[test]
    fn hash_color_is_stable_and_pastel() {
        assert_eq!(hash_color("Red"), hash_color("Red"));
        assert_ne!(hash_color("Red"), hash_color("Green"));
        let c = hash_color("anything");
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn degenerate_window_survives() {
        let d = TimingDiagram::new("t", 5, 5);
        assert!(d.t1_ns > d.t0_ns);
        let _ = d.to_ascii(40);
        let _ = d.to_svg();
    }
}
