//! The Graphical Debugger Model (GDM) — "the core of GMDF" (paper §II).
//!
//! A [`DebuggerModel`] is the event-driven debug model derived from the
//! user's input model via abstraction: graphical elements (with layout),
//! edges, and the command→reaction bindings that make it animate. The
//! runtime engine ([`gmdf-engine`]) loads it, displays it, and reacts to
//! incoming [`ModelEvent`](crate::ModelEvent)s.
//!
//! [`gmdf-engine`]: ../../gmdf_engine/index.html

use crate::binding::CommandBinding;
use crate::pattern::GdmPattern;
use gmdf_render::Rect;
use serde::{Deserialize, Serialize};

/// One graphical element of the debug model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GdmElement {
    /// Stable element path (mirrors the input model's element path).
    pub path: String,
    /// Display label.
    pub label: String,
    /// Metaclass of the source model element (e.g. `State`).
    pub metaclass: String,
    /// Graphical pattern chosen during abstraction.
    pub pattern: GdmPattern,
    /// Index of the parent element in the element list, if nested.
    pub parent: Option<usize>,
    /// Absolute scene bounds (computed by the abstraction layout).
    pub bounds: Rect,
}

/// A graphical edge (transition arrow, connection wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GdmEdge {
    /// Path of the source element.
    pub from: String,
    /// Path of the target element.
    pub to: String,
    /// Optional edge label (e.g. a guard expression).
    pub label: Option<String>,
    /// Metaclass of the source model element (e.g. `Transition`).
    pub metaclass: String,
}

/// The complete debug model: elements, edges and command bindings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DebuggerModel {
    /// Model name (shown as the canvas title).
    pub name: String,
    /// Elements; parents always precede their children.
    pub elements: Vec<GdmElement>,
    /// Edges between element paths.
    pub edges: Vec<GdmEdge>,
    /// Command → reaction bindings (Fig. 6 step 4).
    pub bindings: Vec<CommandBinding>,
}

impl DebuggerModel {
    /// Creates an empty debug model.
    pub fn new(name: &str) -> Self {
        DebuggerModel {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Finds an element by path.
    pub fn element(&self, path: &str) -> Option<&GdmElement> {
        self.elements.iter().find(|e| e.path == path)
    }

    /// Index of an element by path.
    pub fn element_index(&self, path: &str) -> Option<usize> {
        self.elements.iter().position(|e| e.path == path)
    }

    /// Direct children of element `idx`.
    pub fn children(&self, idx: usize) -> Vec<usize> {
        self.elements
            .iter()
            .enumerate()
            .filter(|(_, e)| e.parent == Some(idx))
            .map(|(i, _)| i)
            .collect()
    }

    /// Paths of all elements sharing the parent of `path` (its animation
    /// siblings — what gets dimmed when one is highlighted).
    pub fn siblings(&self, path: &str) -> Vec<&str> {
        let Some(idx) = self.element_index(path) else {
            return Vec::new();
        };
        let parent = self.elements[idx].parent;
        self.elements
            .iter()
            .filter(|e| e.parent == parent && e.path != path)
            .map(|e| e.path.as_str())
            .collect()
    }

    /// Rewrites all element paths and edge endpoints, dropping the first
    /// `segments` path segments (at least one segment is always kept).
    ///
    /// Input-model exports often prefix paths with container segments the
    /// runtime does not report (the COMDES export prefixes
    /// `system/node/`, while commands arrive with actor-rooted paths);
    /// stripping aligns the GDM with the command stream.
    pub fn strip_path_prefix(&mut self, segments: usize) {
        let strip = |p: &str| -> String {
            let parts: Vec<&str> = p.split('/').collect();
            let keep = segments.min(parts.len().saturating_sub(1));
            parts[keep..].join("/")
        };
        for e in &mut self.elements {
            e.path = strip(&e.path);
        }
        for edge in &mut self.edges {
            edge.from = strip(&edge.from);
            edge.to = strip(&edge.to);
        }
    }

    /// Serializes to pretty JSON (the `.gdm.json` file of the workflow's
    /// step 4, "an initial GDM file is automatically generated").
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("gdm serializes")
    }

    /// Parses a saved debug model.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Sanity check: parent indices in range and acyclic, edge endpoints
    /// resolvable. Returns problems found.
    pub fn check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, e) in self.elements.iter().enumerate() {
            if let Some(p) = e.parent {
                if p >= i {
                    problems.push(format!(
                        "element `{}` has parent index {p} not preceding it",
                        e.path
                    ));
                }
            }
            if self.elements[..i].iter().any(|q| q.path == e.path) {
                problems.push(format!("duplicate element path `{}`", e.path));
            }
        }
        for edge in &self.edges {
            for end in [&edge.from, &edge.to] {
                if self.element(end).is_none() {
                    problems.push(format!("edge endpoint `{end}` has no element"));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DebuggerModel {
        let mut m = DebuggerModel::new("demo");
        m.elements.push(GdmElement {
            path: "A".into(),
            label: "A".into(),
            metaclass: "Actor".into(),
            pattern: GdmPattern::Rectangle,
            parent: None,
            bounds: Rect::new(0.0, 0.0, 300.0, 200.0),
        });
        for (i, s) in ["Idle", "Run"].iter().enumerate() {
            m.elements.push(GdmElement {
                path: format!("A/fsm/{s}"),
                label: (*s).into(),
                metaclass: "State".into(),
                pattern: GdmPattern::Circle,
                parent: Some(0),
                bounds: Rect::new(20.0 + i as f64 * 120.0, 40.0, 100.0, 40.0),
            });
        }
        m.edges.push(GdmEdge {
            from: "A/fsm/Idle".into(),
            to: "A/fsm/Run".into(),
            label: Some("go".into()),
            metaclass: "Transition".into(),
        });
        m
    }

    #[test]
    fn lookup_and_children() {
        let m = sample();
        assert!(m.element("A/fsm/Idle").is_some());
        assert_eq!(m.children(0).len(), 2);
        assert_eq!(m.siblings("A/fsm/Idle"), vec!["A/fsm/Run"]);
        assert!(m.check().is_empty());
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let back = DebuggerModel::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
        assert!(DebuggerModel::from_json("{bad").is_err());
    }

    #[test]
    fn check_flags_problems() {
        let mut m = sample();
        m.edges.push(GdmEdge {
            from: "ghost".into(),
            to: "A".into(),
            label: None,
            metaclass: "Transition".into(),
        });
        m.elements.push(GdmElement {
            path: "A".into(), // duplicate
            label: "dup".into(),
            metaclass: "Actor".into(),
            pattern: GdmPattern::Rectangle,
            parent: Some(99), // bad parent
            bounds: Rect::default(),
        });
        let problems = m.check();
        assert_eq!(problems.len(), 3);
    }
}
