//! The GDM meta-model (paper Fig. 3) expressed in the generic
//! metamodeling layer.
//!
//! Fig. 3 defines "the basic elements needed to construct a debug model
//! from the user input meta-model": an event-driven finite state machine
//! of the debugger itself — graphical elements, commands, reactions and
//! bindings, with the engine normally "in a waiting state, listening for
//! commands and performing the corresponding reactions". Reifying the GDM
//! as a [`gmdf_metamodel::Model`] lets the framework introspect, persist
//! and validate debug models with the same machinery as input models.

use crate::model::DebuggerModel;
use gmdf_metamodel::{DataType, Metamodel, MetamodelBuilder, Model, ModelError, Value};
use std::sync::Arc;

/// Package name of the GDM metamodel.
pub const GDM_METAMODEL: &str = "gdm";

/// Builds the GDM metamodel of paper Fig. 3.
///
/// Classes: `DebuggerModel` (the event-driven machine, with its `Waiting`
/// / `Reacting` engine states as an enum attribute), `GraphicalElement`,
/// `Edge`, `CommandBinding`.
///
/// # Panics
///
/// Never in practice — the metamodel is a fixed literal.
pub fn gdm_metamodel() -> Metamodel {
    let mut b = MetamodelBuilder::new(GDM_METAMODEL);
    b.enumeration(
        "Pattern",
        [
            "Rectangle",
            "RoundedRectangle",
            "Circle",
            "Triangle",
            "Diamond",
            "Label",
        ],
    )
    .expect("fixed metamodel");
    b.enumeration("EngineState", ["Waiting", "Reacting", "Paused"])
        .expect("fixed metamodel");
    b.enumeration(
        "Reaction",
        [
            "HighlightTarget",
            "HighlightSelf",
            "ShowValue",
            "Pulse",
            "RecordOnly",
        ],
    )
    .expect("fixed metamodel");
    b.class("DebuggerModel")
        .expect("fixed metamodel")
        .attribute("name", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute_with_default(
            "engine_state",
            DataType::Enum("EngineState".into()),
            Value::Enum("EngineState".into(), "Waiting".into()),
        )
        .expect("fixed metamodel")
        .containment_many("elements", "GraphicalElement")
        .expect("fixed metamodel")
        .containment_many("edges", "Edge")
        .expect("fixed metamodel")
        .containment_many("bindings", "CommandBinding")
        .expect("fixed metamodel");
    b.class("GraphicalElement")
        .expect("fixed metamodel")
        .attribute("name", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute("path", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute("metaclass", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute("pattern", DataType::Enum("Pattern".into()), true)
        .expect("fixed metamodel")
        .containment_many("children", "GraphicalElement")
        .expect("fixed metamodel");
    b.class("Edge")
        .expect("fixed metamodel")
        .attribute("from", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute("to", DataType::Str, true)
        .expect("fixed metamodel")
        .attribute("label", DataType::Str, false)
        .expect("fixed metamodel");
    b.class("CommandBinding")
        .expect("fixed metamodel")
        .attribute("kind", DataType::Str, false)
        .expect("fixed metamodel")
        .attribute("path_prefix", DataType::Str, false)
        .expect("fixed metamodel")
        .attribute("reaction", DataType::Enum("Reaction".into()), true)
        .expect("fixed metamodel");
    b.build().expect("fixed metamodel")
}

/// Reifies a [`DebuggerModel`] as an instance of the GDM metamodel.
///
/// # Errors
///
/// Wraps [`ModelError`]s, which cannot occur for checked debug models.
pub fn export_gdm(gdm: &DebuggerModel) -> Result<(Arc<Metamodel>, Model), ModelError> {
    let mm = Arc::new(gdm_metamodel());
    let mut model = Model::new(mm.clone());
    let root = model.create("DebuggerModel")?;
    model.set_attr(root, "name", Value::from(gdm.name.as_str()))?;
    let mut objs = Vec::with_capacity(gdm.elements.len());
    for e in &gdm.elements {
        let obj = model.create("GraphicalElement")?;
        model.set_attr(obj, "name", Value::from(e.label.as_str()))?;
        model.set_attr(obj, "path", Value::from(e.path.as_str()))?;
        model.set_attr(obj, "metaclass", Value::from(e.metaclass.as_str()))?;
        model.set_attr(
            obj,
            "pattern",
            Value::Enum("Pattern".into(), e.pattern.to_string()),
        )?;
        match e.parent {
            Some(p) => model.add_child(objs[p], "children", obj)?,
            None => model.add_child(root, "elements", obj)?,
        }
        objs.push(obj);
    }
    for edge in &gdm.edges {
        let obj = model.create("Edge")?;
        model.set_attr(obj, "from", Value::from(edge.from.as_str()))?;
        model.set_attr(obj, "to", Value::from(edge.to.as_str()))?;
        if let Some(l) = &edge.label {
            model.set_attr(obj, "label", Value::from(l.as_str()))?;
        }
        model.add_child(root, "edges", obj)?;
    }
    for binding in &gdm.bindings {
        let obj = model.create("CommandBinding")?;
        if let Some(k) = binding.matcher.kind {
            model.set_attr(obj, "kind", Value::from(k.to_string()))?;
        }
        if let Some(p) = &binding.matcher.path_prefix {
            model.set_attr(obj, "path_prefix", Value::from(p.as_str()))?;
        }
        model.set_attr(
            obj,
            "reaction",
            Value::Enum("Reaction".into(), format!("{:?}", binding.reaction)),
        )?;
        model.add_child(root, "bindings", obj)?;
    }
    Ok((mm, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::default_bindings;
    use crate::model::{GdmEdge, GdmElement};
    use crate::pattern::GdmPattern;
    use gmdf_render::Rect;

    fn sample() -> DebuggerModel {
        let mut m = DebuggerModel::new("demo");
        m.bindings = default_bindings();
        m.elements.push(GdmElement {
            path: "A".into(),
            label: "A".into(),
            metaclass: "Machine".into(),
            pattern: GdmPattern::Rectangle,
            parent: None,
            bounds: Rect::default(),
        });
        m.elements.push(GdmElement {
            path: "A/Idle".into(),
            label: "Idle".into(),
            metaclass: "State".into(),
            pattern: GdmPattern::Circle,
            parent: Some(0),
            bounds: Rect::default(),
        });
        m.edges.push(GdmEdge {
            from: "A/Idle".into(),
            to: "A/Idle".into(),
            label: Some("tick".into()),
            metaclass: "Transition".into(),
        });
        m
    }

    #[test]
    fn metamodel_matches_fig3_inventory() {
        let mm = gdm_metamodel();
        for c in [
            "DebuggerModel",
            "GraphicalElement",
            "Edge",
            "CommandBinding",
        ] {
            assert!(mm.class_by_name(c).is_some(), "missing {c}");
        }
        let engine = mm.enum_by_name("EngineState").unwrap();
        assert_eq!(engine.literals, ["Waiting", "Reacting", "Paused"]);
        assert!(mm.enum_by_name("Pattern").unwrap().literals.len() >= 4);
    }

    #[test]
    fn export_is_conformant_and_nested() {
        let gdm = sample();
        let (_, model) = export_gdm(&gdm).unwrap();
        let report = gmdf_metamodel::validate(&model);
        assert!(report.is_conformant(), "{report}");
        // Nesting: Idle is a child of A, not of the root.
        let idle = model
            .objects_of_class("GraphicalElement")
            .into_iter()
            .find(|&o| model.name_of(o) == Some("Idle"))
            .unwrap();
        let (parent, _) = model.object(idle).unwrap().container().unwrap();
        assert_eq!(model.name_of(parent), Some("A"));
        // Engine starts in Waiting.
        let root = model.objects_of_class("DebuggerModel")[0];
        assert_eq!(
            model.attr(root, "engine_state").unwrap(),
            Some(&Value::Enum("EngineState".into(), "Waiting".into()))
        );
        assert_eq!(model.objects_of_class("CommandBinding").len(), 6);
        assert_eq!(model.objects_of_class("Edge").len(), 1);
    }
}
