//! Rendering a [`DebuggerModel`] into a scene, with animation state.
//!
//! The engine keeps a [`VisualState`] per element (highlighted, dimmed,
//! value label, pulse count) and re-renders frames as commands arrive —
//! the "model behavior animation" functionality (paper §II).

use crate::model::DebuggerModel;
use crate::pattern::GdmPattern;
use gmdf_render::{layout, Primitive, Scene, Shape, Style};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-element animation state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ElementVisual {
    /// Drawn with the highlight style (active state).
    pub highlighted: bool,
    /// Drawn with the dimmed style (inactive sibling).
    pub dimmed: bool,
    /// Extra label line (last signal value).
    pub value_text: Option<String>,
    /// Number of pulses received (drawn as an emphasis tick).
    pub pulses: u32,
}

/// Animation state for the whole model: element path → visual.
pub type VisualState = BTreeMap<String, ElementVisual>;

/// Builds a renderable scene from the debug model and its current
/// animation state.
pub fn render_gdm(gdm: &DebuggerModel, visual: &VisualState) -> Scene {
    let mut scene = Scene::new(&gdm.name);
    // Containers first (paint order: parents under children).
    for e in &gdm.elements {
        let v = visual.get(&e.path).cloned().unwrap_or_default();
        let style = if v.highlighted {
            Style::highlighted()
        } else if v.dimmed {
            Style::dimmed()
        } else {
            Style::default()
        };
        let mut label = e.label.clone();
        if let Some(val) = &v.value_text {
            label = format!("{label} = {val}");
        }
        if v.pulses > 0 {
            label = format!("{label} ({}x)", v.pulses);
        }
        scene.push(Primitive {
            id: e.path.clone(),
            shape: e.pattern.to_shape(e.bounds),
            style,
            label: Some(label),
        });
    }
    // Edges on top of containers but under nothing else matters much;
    // anchor them on element borders.
    for (i, edge) in gdm.edges.iter().enumerate() {
        let (Some(from), Some(to)) = (gdm.element(&edge.from), gdm.element(&edge.to)) else {
            continue;
        };
        let points = layout::route_edge(&from.bounds, &to.bounds);
        scene.push(Primitive {
            id: format!("edge#{i}"),
            shape: Shape::Arrow {
                points: points.clone(),
            },
            style: Style {
                fill: None,
                ..Style::default()
            },
            label: None,
        });
        if let Some(text) = &edge.label {
            let mid = points[points.len() / 2 - 1];
            scene.push(Primitive {
                id: format!("edge#{i}/label"),
                shape: Shape::Text {
                    at: gmdf_render::Point::new(
                        (mid.x + points[points.len() / 2].x) / 2.0,
                        (mid.y + points[points.len() / 2].y) / 2.0 - 4.0,
                    ),
                    size: 10.0,
                },
                style: Style {
                    fill: None,
                    ..Style::default()
                },
                label: Some(text.clone()),
            });
        }
    }
    scene
}

/// Convenience: renders the model and serializes the frame as SVG.
pub fn render_svg(gdm: &DebuggerModel, visual: &VisualState) -> String {
    gmdf_render::to_svg(&render_gdm(gdm, visual))
}

/// Convenience: renders the model and serializes the frame as ASCII art.
pub fn render_ascii(gdm: &DebuggerModel, visual: &VisualState) -> String {
    gmdf_render::to_ascii(&render_gdm(gdm, visual))
}

/// `true` if `pattern` renders as a closed shape that can be highlighted.
pub fn is_highlightable(pattern: GdmPattern) -> bool {
    !matches!(pattern, GdmPattern::Label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GdmEdge, GdmElement};
    use gmdf_render::Rect;

    fn sample() -> DebuggerModel {
        let mut m = DebuggerModel::new("demo");
        m.elements.push(GdmElement {
            path: "A".into(),
            label: "A".into(),
            metaclass: "Machine".into(),
            pattern: GdmPattern::Rectangle,
            parent: None,
            bounds: Rect::new(0.0, 0.0, 400.0, 240.0),
        });
        for (i, s) in ["Idle", "Run"].iter().enumerate() {
            m.elements.push(GdmElement {
                path: format!("A/{s}"),
                label: (*s).into(),
                metaclass: "State".into(),
                pattern: GdmPattern::Circle,
                parent: Some(0),
                bounds: Rect::new(30.0 + 180.0 * i as f64, 60.0, 110.0, 46.0),
            });
        }
        m.edges.push(GdmEdge {
            from: "A/Idle".into(),
            to: "A/Run".into(),
            label: Some("go".into()),
            metaclass: "Transition".into(),
        });
        m
    }

    #[test]
    fn renders_elements_and_edges() {
        let gdm = sample();
        let scene = render_gdm(&gdm, &VisualState::new());
        // 3 elements + 1 arrow + 1 edge label.
        assert_eq!(scene.len(), 5);
        assert!(scene.find("A/Idle").is_some());
        assert!(scene.find("edge#0").is_some());
    }

    #[test]
    fn highlight_changes_style() {
        let gdm = sample();
        let mut vis = VisualState::new();
        vis.insert(
            "A/Run".into(),
            ElementVisual {
                highlighted: true,
                ..Default::default()
            },
        );
        vis.insert(
            "A/Idle".into(),
            ElementVisual {
                dimmed: true,
                ..Default::default()
            },
        );
        let scene = render_gdm(&gdm, &vis);
        assert_eq!(scene.find("A/Run").unwrap().style, Style::highlighted());
        assert_eq!(scene.find("A/Idle").unwrap().style, Style::dimmed());
        assert_eq!(scene.find("A").unwrap().style, Style::default());
    }

    #[test]
    fn value_text_and_pulses_in_label() {
        let gdm = sample();
        let mut vis = VisualState::new();
        vis.insert(
            "A/Run".into(),
            ElementVisual {
                value_text: Some("3.5".into()),
                pulses: 2,
                ..Default::default()
            },
        );
        let scene = render_gdm(&gdm, &vis);
        let label = scene.find("A/Run").unwrap().label.clone().unwrap();
        assert_eq!(label, "Run = 3.5 (2x)");
    }

    #[test]
    fn svg_and_ascii_backends_work() {
        let gdm = sample();
        let vis = VisualState::new();
        let svg = render_svg(&gdm, &vis);
        assert!(svg.contains("data-id=\"A/Run\""));
        let art = render_ascii(&gdm, &vis);
        assert!(art.contains("Idle"));
    }

    #[test]
    fn dangling_edges_are_skipped() {
        let mut gdm = sample();
        gdm.edges.push(GdmEdge {
            from: "ghost".into(),
            to: "A".into(),
            label: None,
            metaclass: "Transition".into(),
        });
        let scene = render_gdm(&gdm, &VisualState::new());
        assert_eq!(scene.len(), 5); // unchanged
    }

    #[test]
    fn highlightable_patterns() {
        assert!(is_highlightable(GdmPattern::Circle));
        assert!(!is_highlightable(GdmPattern::Label));
    }
}
