//! Abstraction: deriving the GDM from an input model.
//!
//! "GMDF defines an 'abstraction' procedure to specify the process of user
//! model conversion, whereby GDM is obtained from the user model via a
//! user-specified mapping" (paper §II). The [`AbstractionGuide`] is the
//! headless equivalent of the Fig. 4 dialog: a metamodel element list on
//! the left, pattern options on the right, a pairing list in the middle,
//! and an *ABSTRACTION FINISHED* action that freezes the mapping. The
//! frozen [`Abstraction`] then derives a laid-out [`DebuggerModel`] from
//! any conforming input model — "a GDM can be obtained automatically".

use crate::binding::{default_bindings, CommandBinding};
use crate::model::{DebuggerModel, GdmEdge, GdmElement};
use crate::pattern::GdmPattern;
use gmdf_metamodel::{ElementPath, Metamodel, Model, ObjectId, Value};
use gmdf_render::Rect;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Abstraction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstractionError {
    /// The metaclass is not in the input metamodel.
    UnknownMetaclass(String),
    /// The metaclass is already paired.
    AlreadyPaired(String),
    /// No pairings were configured before finishing.
    EmptyMapping,
    /// An edge rule references a feature the metaclass lacks.
    BadEdgeRule(String),
}

impl fmt::Display for AbstractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractionError::UnknownMetaclass(c) => write!(f, "unknown metaclass `{c}`"),
            AbstractionError::AlreadyPaired(c) => write!(f, "metaclass `{c}` already paired"),
            AbstractionError::EmptyMapping => write!(f, "no metaclass/pattern pairings configured"),
            AbstractionError::BadEdgeRule(m) => write!(f, "bad edge rule: {m}"),
        }
    }
}

impl std::error::Error for AbstractionError {}

/// One metaclass → pattern pairing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingRule {
    /// Input metaclass name.
    pub metaclass: String,
    /// Chosen GDM pattern.
    pub pattern: GdmPattern,
}

/// How edges are discovered in the input model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EdgeRule {
    /// Objects of `metaclass` contribute an edge from the element of the
    /// object referenced by `source` to that referenced by `target`
    /// (e.g. COMDES `Transition.source/.target`), labeled with the
    /// object's `label_attr` attribute if given.
    ByReferences {
        /// Edge metaclass.
        metaclass: String,
        /// Source reference name.
        source: String,
        /// Target reference name.
        target: String,
        /// Attribute shown as the edge label (e.g. `guard`).
        label_attr: Option<String>,
    },
    /// Objects of `metaclass` carry endpoint strings in attributes
    /// (`block.port` names a sibling element, a bare `port` names the
    /// enclosing parent element) — COMDES `Connection.from/.to`.
    ByAttributes {
        /// Edge metaclass.
        metaclass: String,
        /// Attribute holding the source endpoint string.
        from: String,
        /// Attribute holding the target endpoint string.
        to: String,
    },
}

/// The interactive mapping setup of Fig. 4.
#[derive(Debug)]
pub struct AbstractionGuide {
    metamodel: Arc<Metamodel>,
    pairings: Vec<MappingRule>,
    edge_rules: Vec<EdgeRule>,
}

impl AbstractionGuide {
    /// Opens the guide for an input metamodel.
    pub fn new(metamodel: Arc<Metamodel>) -> Self {
        AbstractionGuide {
            metamodel,
            pairings: Vec::new(),
            edge_rules: Vec::new(),
        }
    }

    /// The metamodel element list (left-hand side of the dialog):
    /// non-abstract class names in declaration order.
    pub fn element_list(&self) -> Vec<&str> {
        self.metamodel
            .classes()
            .iter()
            .filter(|c| !c.is_abstract)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// The GDM pattern options (right-hand side of the dialog).
    pub fn pattern_options(&self) -> &'static [GdmPattern] {
        &GdmPattern::ALL
    }

    /// Pairs a metaclass with a pattern (adds to the pairing list).
    ///
    /// # Errors
    ///
    /// Rejects unknown metaclasses and duplicates.
    pub fn pair(&mut self, metaclass: &str, pattern: GdmPattern) -> Result<(), AbstractionError> {
        if self.metamodel.class_by_name(metaclass).is_none() {
            return Err(AbstractionError::UnknownMetaclass(metaclass.to_owned()));
        }
        if self.pairings.iter().any(|p| p.metaclass == metaclass) {
            return Err(AbstractionError::AlreadyPaired(metaclass.to_owned()));
        }
        self.pairings.push(MappingRule {
            metaclass: metaclass.to_owned(),
            pattern,
        });
        Ok(())
    }

    /// Removes a pairing ("the user can view and delete his previous
    /// pairings"). Returns `true` if one was removed.
    pub fn unpair(&mut self, metaclass: &str) -> bool {
        let before = self.pairings.len();
        self.pairings.retain(|p| p.metaclass != metaclass);
        self.pairings.len() != before
    }

    /// The current pairing list (middle of the dialog).
    pub fn pairings(&self) -> &[MappingRule] {
        &self.pairings
    }

    /// Adds an edge discovery rule.
    ///
    /// # Errors
    ///
    /// Rejects rules naming unknown metaclasses or features.
    pub fn edge_rule(&mut self, rule: EdgeRule) -> Result<(), AbstractionError> {
        let (metaclass, features): (&str, Vec<&str>) = match &rule {
            EdgeRule::ByReferences {
                metaclass,
                source,
                target,
                ..
            } => (metaclass, vec![source, target]),
            EdgeRule::ByAttributes {
                metaclass,
                from,
                to,
            } => (metaclass, vec![from, to]),
        };
        let class = self
            .metamodel
            .class_by_name(metaclass)
            .ok_or_else(|| AbstractionError::UnknownMetaclass(metaclass.to_owned()))?;
        for f in features {
            let ok = match &rule {
                EdgeRule::ByReferences { .. } => self.metamodel.reference(class, f).is_some(),
                EdgeRule::ByAttributes { .. } => self.metamodel.attribute(class, f).is_some(),
            };
            if !ok {
                return Err(AbstractionError::BadEdgeRule(format!(
                    "`{metaclass}` has no feature `{f}`"
                )));
            }
        }
        self.edge_rules.push(rule);
        Ok(())
    }

    /// The *ABSTRACTION FINISHED* button: freezes the mapping.
    ///
    /// # Errors
    ///
    /// Returns [`AbstractionError::EmptyMapping`] if nothing was paired.
    pub fn finish(self) -> Result<Abstraction, AbstractionError> {
        if self.pairings.is_empty() {
            return Err(AbstractionError::EmptyMapping);
        }
        Ok(Abstraction {
            rules: self
                .pairings
                .into_iter()
                .map(|r| (r.metaclass.clone(), r))
                .collect(),
            edge_rules: self.edge_rules,
        })
    }
}

/// A frozen user-specified mapping, ready to derive debug models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Abstraction {
    rules: BTreeMap<String, MappingRule>,
    edge_rules: Vec<EdgeRule>,
}

const LEAF_W: f64 = 110.0;
const LEAF_H: f64 = 46.0;
const PAD: f64 = 18.0;
const TITLE_H: f64 = 22.0;
const GAP: f64 = 28.0;

impl Abstraction {
    /// The mapping rules, keyed by metaclass.
    pub fn rules(&self) -> &BTreeMap<String, MappingRule> {
        &self.rules
    }

    /// Finds the rule applying to `class` (walking up the supertype
    /// chain).
    fn rule_for(&self, mm: &Metamodel, class: gmdf_metamodel::ClassId) -> Option<&MappingRule> {
        if let Some(r) = self.rules.get(&mm.class(class).name) {
            return Some(r);
        }
        mm.class(class)
            .supertypes
            .iter()
            .find_map(|&s| self.rule_for(mm, s))
    }

    /// Derives the laid-out debug model from a conforming input model,
    /// with the default command bindings attached.
    pub fn derive(&self, model: &Model, name: &str) -> DebuggerModel {
        self.derive_with_bindings(model, name, default_bindings())
    }

    /// Derives the debug model with explicit bindings (Fig. 6 step 4).
    pub fn derive_with_bindings(
        &self,
        model: &Model,
        name: &str,
        bindings: Vec<CommandBinding>,
    ) -> DebuggerModel {
        let mm = model.metamodel();
        let mut gdm = DebuggerModel::new(name);
        gdm.bindings = bindings;
        // Map ObjectId → element index for edge resolution.
        let mut elem_of: BTreeMap<ObjectId, usize> = BTreeMap::new();

        // DFS from roots, tracking the nearest mapped ancestor.
        let mut stack: Vec<(ObjectId, Option<usize>)> =
            model.roots().into_iter().rev().map(|o| (o, None)).collect();
        while let Some((obj, mapped_parent)) = stack.pop() {
            let class = model.object(obj).expect("live object").class();
            let mut parent_for_children = mapped_parent;
            if let Some(rule) = self.rule_for(mm, class) {
                let path = ElementPath::of(model, obj)
                    .map(|p| p.to_string())
                    .unwrap_or_default();
                let label = model
                    .name_of(obj)
                    .map(str::to_owned)
                    .unwrap_or_else(|| mm.class(class).name.clone());
                let idx = gdm.elements.len();
                gdm.elements.push(GdmElement {
                    path,
                    label,
                    metaclass: mm.class(class).name.clone(),
                    pattern: rule.pattern,
                    parent: mapped_parent,
                    bounds: Rect::default(),
                });
                elem_of.insert(obj, idx);
                parent_for_children = Some(idx);
            }
            let kids: Vec<ObjectId> = model.children(obj).collect();
            for k in kids.into_iter().rev() {
                stack.push((k, parent_for_children));
            }
        }

        // Edges.
        for rule in &self.edge_rules {
            match rule {
                EdgeRule::ByReferences {
                    metaclass,
                    source,
                    target,
                    label_attr,
                } => {
                    for obj in model.objects_of_class(metaclass) {
                        let (Ok(Some(s)), Ok(Some(t))) =
                            (model.ref_one(obj, source), model.ref_one(obj, target))
                        else {
                            continue;
                        };
                        let (Some(&si), Some(&ti)) = (elem_of.get(&s), elem_of.get(&t)) else {
                            continue;
                        };
                        let label = label_attr.as_ref().and_then(|a| {
                            model
                                .attr(obj, a)
                                .ok()
                                .flatten()
                                .and_then(Value::as_str)
                                .map(str::to_owned)
                        });
                        gdm.edges.push(GdmEdge {
                            from: gdm.elements[si].path.clone(),
                            to: gdm.elements[ti].path.clone(),
                            label,
                            metaclass: metaclass.clone(),
                        });
                    }
                }
                EdgeRule::ByAttributes {
                    metaclass,
                    from,
                    to,
                } => {
                    for obj in model.objects_of_class(metaclass) {
                        // Scope: siblings under the connection's mapped parent.
                        let parent_idx = model
                            .object(obj)
                            .ok()
                            .and_then(|o| o.container())
                            .and_then(|(p, _)| elem_of.get(&p))
                            .copied();
                        let resolve = |endpoint: &str| -> Option<String> {
                            let block = endpoint.split('.').next().unwrap_or(endpoint);
                            if endpoint.contains('.') {
                                gdm.elements
                                    .iter()
                                    .find(|e| e.parent == parent_idx && e.label == block)
                                    .map(|e| e.path.clone())
                            } else {
                                parent_idx.map(|pi| gdm.elements[pi].path.clone())
                            }
                        };
                        let (Ok(Some(fv)), Ok(Some(tv))) =
                            (model.attr(obj, from), model.attr(obj, to))
                        else {
                            continue;
                        };
                        let (Some(fs), Some(ts)) = (fv.as_str(), tv.as_str()) else {
                            continue;
                        };
                        if let (Some(fp), Some(tp)) = (resolve(fs), resolve(ts)) {
                            if fp != tp {
                                gdm.edges.push(GdmEdge {
                                    from: fp,
                                    to: tp,
                                    label: None,
                                    metaclass: metaclass.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }

        layout(&mut gdm);
        gdm
    }
}

/// Geometry of one laid-out container: outer size + child offsets.
/// Keyed only by what the math actually depends on, so identical
/// subtree shapes share one computation (see [`layout`]).
type ShapeKey = (bool, usize, u64, u64);

/// A memoized container geometry: `(width, height, child offsets)`.
type Shape = (f64, f64, Vec<(f64, f64)>);

/// Hierarchical layout: leaves get a fixed size, containers wrap their
/// children (grid or circle, circle when edges connect the children —
/// the state-machine look), sized bottom-up and placed top-down.
///
/// Two costs dominate fleet boot-up and are avoided here:
///
/// * edge-connectivity used to rescan every edge per container, with a
///   linear path lookup per endpoint — now one pass over the edges
///   against a path→index map marks the connected containers up front;
/// * container geometry depends only on `(circle?, child count, cell
///   size)`, so a fleet of identical actors computes each distinct
///   subtree shape once and reuses it (`ShapeKey` memo) instead of
///   redoing the trig/grid math per instance.
fn layout(gdm: &mut DebuggerModel) {
    let n = gdm.elements.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for i in 0..n {
        match gdm.elements[i].parent {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    // Mark containers whose children are connected by an edge.
    let index_of: BTreeMap<&str, usize> = gdm
        .elements
        .iter()
        .enumerate()
        .map(|(i, e)| (e.path.as_str(), i))
        .collect();
    let mut connected = vec![false; n];
    for e in &gdm.edges {
        let (Some(&a), Some(&b)) = (index_of.get(e.from.as_str()), index_of.get(e.to.as_str()))
        else {
            continue;
        };
        if let (Some(pa), Some(pb)) = (gdm.elements[a].parent, gdm.elements[b].parent) {
            if pa == pb {
                connected[pa] = true;
            }
        }
    }

    // Pass 1: sizes bottom-up (children have higher indices than parents
    // is NOT guaranteed for size purposes — recurse instead).
    let mut size: Vec<(f64, f64)> = vec![(LEAF_W, LEAF_H); n];
    let mut offsets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    let mut shapes: HashMap<ShapeKey, Shape> = HashMap::new();
    #[allow(clippy::too_many_arguments)]
    fn compute_size(
        i: usize,
        children: &Vec<Vec<usize>>,
        connected: &[bool],
        size: &mut Vec<(f64, f64)>,
        offsets: &mut Vec<Vec<(f64, f64)>>,
        shapes: &mut HashMap<ShapeKey, Shape>,
    ) {
        let kids = &children[i];
        if kids.is_empty() {
            size[i] = (LEAF_W, LEAF_H);
            return;
        }
        for &k in kids {
            compute_size(k, children, connected, size, offsets, shapes);
        }
        let cell_w = kids.iter().map(|&k| size[k].0).fold(0.0, f64::max);
        let cell_h = kids.iter().map(|&k| size[k].1).fold(0.0, f64::max);
        let m = kids.len();
        let circle = m >= 2 && connected[i];
        let key: ShapeKey = (circle, m, cell_w.to_bits(), cell_h.to_bits());
        if let Some((w, h, local)) = shapes.get(&key) {
            size[i] = (*w, *h);
            offsets[i] = local.clone();
            return;
        }
        let mut local: Vec<(f64, f64)> = Vec::with_capacity(m);
        let (w, h);
        if circle {
            // Circle arrangement.
            let needed = (cell_w + GAP) * m as f64 / std::f64::consts::TAU;
            let r = needed.max(cell_w * 0.9);
            for j in 0..m {
                let a = std::f64::consts::TAU * j as f64 / m as f64 - std::f64::consts::FRAC_PI_2;
                local.push((
                    r + r * a.cos() - cell_w / 2.0 + cell_w / 2.0 + PAD,
                    r + r * a.sin() - cell_h / 2.0 + cell_h / 2.0 + PAD + TITLE_H,
                ));
            }
            w = 2.0 * r + cell_w + 2.0 * PAD;
            h = 2.0 * r + cell_h + 2.0 * PAD + TITLE_H;
        } else {
            // Grid arrangement.
            let cols = (m as f64).sqrt().ceil() as usize;
            let rows = m.div_ceil(cols);
            for j in 0..m {
                let col = j % cols;
                let row = j / cols;
                local.push((
                    PAD + col as f64 * (cell_w + GAP),
                    PAD + TITLE_H + row as f64 * (cell_h + GAP),
                ));
            }
            w = 2.0 * PAD + cols as f64 * cell_w + (cols - 1) as f64 * GAP;
            h = 2.0 * PAD + TITLE_H + rows as f64 * cell_h + (rows - 1) as f64 * GAP;
        }
        let w = w.max(LEAF_W);
        let h = h.max(LEAF_H);
        shapes.insert(key, (w, h, local.clone()));
        offsets[i] = local;
        size[i] = (w, h);
    }
    for &r in &roots {
        compute_size(
            r,
            &children,
            &connected,
            &mut size,
            &mut offsets,
            &mut shapes,
        );
    }

    // Pass 2: absolute placement, roots in a row.
    let mut x_cursor = 0.0;
    let mut place_stack: Vec<(usize, f64, f64)> = Vec::new();
    for &r in &roots {
        place_stack.push((r, x_cursor, 0.0));
        x_cursor += size[r].0 + GAP * 2.0;
    }
    while let Some((i, x, y)) = place_stack.pop() {
        gdm.elements[i].bounds = Rect::new(x, y, size[i].0, size[i].1);
        let kids = children[i].clone();
        for (j, &k) in kids.iter().enumerate() {
            let (ox, oy) = offsets[i][j];
            // Center each child in its cell.
            let cell_w = kids.iter().map(|&k2| size[k2].0).fold(0.0, f64::max);
            let cell_h = kids.iter().map(|&k2| size[k2].1).fold(0.0, f64::max);
            let cx = ox + (cell_w - size[k].0) / 2.0;
            let cy = oy + (cell_h - size[k].1) / 2.0;
            place_stack.push((k, x + cx, y + cy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_metamodel::{DataType, MetamodelBuilder};

    fn fsm_metamodel() -> Arc<Metamodel> {
        let mut b = MetamodelBuilder::new("fsm");
        b.class("Machine")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap()
            .containment_many("states", "State")
            .unwrap()
            .containment_many("transitions", "Transition")
            .unwrap();
        b.class("State")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap();
        b.class("Transition")
            .unwrap()
            .attribute("guard", DataType::Str, false)
            .unwrap()
            .cross_required("source", "State")
            .unwrap()
            .cross_required("target", "State")
            .unwrap();
        Arc::new(b.build().unwrap())
    }

    fn fsm_model() -> Model {
        let mm = fsm_metamodel();
        let mut m = Model::new(mm);
        let mach = m.create("Machine").unwrap();
        m.set_attr(mach, "name", "Gate".into()).unwrap();
        let mut states = Vec::new();
        for s in ["Open", "Closed", "Locked"] {
            let st = m.create("State").unwrap();
            m.set_attr(st, "name", s.into()).unwrap();
            m.add_child(mach, "states", st).unwrap();
            states.push(st);
        }
        for (a, b, g) in [(0, 1, "close"), (1, 2, "lock"), (2, 0, "unlock")] {
            let t = m.create("Transition").unwrap();
            m.set_attr(t, "guard", g.into()).unwrap();
            m.add_ref(t, "source", states[a]).unwrap();
            m.add_ref(t, "target", states[b]).unwrap();
            m.add_child(mach, "transitions", t).unwrap();
        }
        m
    }

    fn guide() -> AbstractionGuide {
        AbstractionGuide::new(fsm_metamodel())
    }

    #[test]
    fn element_list_excludes_abstract_classes() {
        let g = guide();
        assert_eq!(g.element_list(), ["Machine", "State", "Transition"]);
        assert_eq!(g.pattern_options().len(), 6);
    }

    #[test]
    fn pairing_workflow() {
        let mut g = guide();
        g.pair("Machine", GdmPattern::Rectangle).unwrap();
        g.pair("State", GdmPattern::Circle).unwrap();
        assert_eq!(g.pairings().len(), 2);
        assert_eq!(
            g.pair("State", GdmPattern::Triangle).unwrap_err(),
            AbstractionError::AlreadyPaired("State".into())
        );
        assert!(g.unpair("State"));
        assert!(!g.unpair("State"));
        assert_eq!(
            g.pair("Ghost", GdmPattern::Circle).unwrap_err(),
            AbstractionError::UnknownMetaclass("Ghost".into())
        );
    }

    #[test]
    fn empty_mapping_rejected() {
        assert_eq!(
            guide().finish().unwrap_err(),
            AbstractionError::EmptyMapping
        );
    }

    #[test]
    fn bad_edge_rule_rejected() {
        let mut g = guide();
        let err = g
            .edge_rule(EdgeRule::ByReferences {
                metaclass: "Transition".into(),
                source: "ghost".into(),
                target: "target".into(),
                label_attr: None,
            })
            .unwrap_err();
        assert!(matches!(err, AbstractionError::BadEdgeRule(_)));
    }

    fn fsm_abstraction() -> Abstraction {
        let mut g = guide();
        g.pair("Machine", GdmPattern::Rectangle).unwrap();
        g.pair("State", GdmPattern::Circle).unwrap();
        g.edge_rule(EdgeRule::ByReferences {
            metaclass: "Transition".into(),
            source: "source".into(),
            target: "target".into(),
            label_attr: Some("guard".into()),
        })
        .unwrap();
        g.finish().unwrap()
    }

    #[test]
    fn derive_creates_elements_edges_and_layout() {
        let model = fsm_model();
        let gdm = fsm_abstraction().derive(&model, "Gate debug model");
        assert!(gdm.check().is_empty(), "{:?}", gdm.check());
        // 1 machine + 3 states (transitions are edges, not elements).
        assert_eq!(gdm.elements.len(), 4);
        assert_eq!(gdm.edges.len(), 3);
        let machine = gdm.element("Gate").unwrap();
        assert_eq!(machine.pattern, GdmPattern::Rectangle);
        let open = gdm.element("Gate/Open").unwrap();
        assert_eq!(open.pattern, GdmPattern::Circle);
        assert_eq!(open.parent, Some(0));
        // States laid out inside the machine.
        assert!(open.bounds.x >= machine.bounds.x);
        assert!(open.bounds.bottom() <= machine.bounds.bottom());
        // Edge labels carried over.
        assert_eq!(gdm.edges[0].label.as_deref(), Some("close"));
        // Default bindings attached.
        assert!(!gdm.bindings.is_empty());
    }

    #[test]
    fn states_do_not_overlap() {
        let model = fsm_model();
        let gdm = fsm_abstraction().derive(&model, "t");
        let states: Vec<&GdmElement> = gdm
            .elements
            .iter()
            .filter(|e| e.metaclass == "State")
            .collect();
        for (i, a) in states.iter().enumerate() {
            for b in states.iter().skip(i + 1) {
                let disjoint = a.bounds.right() <= b.bounds.x
                    || b.bounds.right() <= a.bounds.x
                    || a.bounds.bottom() <= b.bounds.y
                    || b.bounds.bottom() <= a.bounds.y;
                assert!(disjoint, "{} overlaps {}", a.path, b.path);
            }
        }
    }

    #[test]
    fn unmapped_classes_are_skipped_but_children_still_map() {
        // Map only State: machine is skipped, states become roots.
        let mut g = guide();
        g.pair("State", GdmPattern::Circle).unwrap();
        let a = g.finish().unwrap();
        let gdm = a.derive(&fsm_model(), "t");
        assert_eq!(gdm.elements.len(), 3);
        assert!(gdm.elements.iter().all(|e| e.parent.is_none()));
    }

    #[test]
    fn rule_inheritance_applies_to_subclasses() {
        let mut b = MetamodelBuilder::new("m");
        b.class("Base")
            .unwrap()
            .set_abstract(true)
            .attribute("name", DataType::Str, false)
            .unwrap();
        b.class("Derived").unwrap().supertype("Base").unwrap();
        let mm = Arc::new(b.build().unwrap());
        let mut model = Model::new(mm.clone());
        model.create("Derived").unwrap();
        let mut g = AbstractionGuide::new(mm);
        g.pair("Base", GdmPattern::Diamond).unwrap();
        let gdm = g.finish().unwrap().derive(&model, "t");
        assert_eq!(gdm.elements.len(), 1);
        assert_eq!(gdm.elements[0].pattern, GdmPattern::Diamond);
        assert_eq!(gdm.elements[0].metaclass, "Derived");
    }

    #[test]
    fn abstraction_serde_round_trip() {
        let a = fsm_abstraction();
        let json = serde_json::to_string(&a).unwrap();
        let back: Abstraction = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
