//! # gmdf-gdm — the Graphical Debugger Model
//!
//! "The GDM is the core of GMDF" (paper §II). This crate implements:
//!
//! * the GDM meta-model of paper Fig. 3 ([`gdm_metamodel`] /
//!   [`export_gdm`]) — an event-driven machine of graphical elements,
//!   commands and reactions;
//! * the **abstraction** procedure of paper Fig. 4
//!   ([`AbstractionGuide`] → [`Abstraction`]): pair input metaclasses
//!   with [`GdmPattern`]s, add edge rules, press *ABSTRACTION FINISHED*,
//!   and derive a laid-out [`DebuggerModel`] from any conforming model;
//! * the command interface ([`CommandBinding`], [`ModelEvent`]) and the
//!   renderable animation state ([`VisualState`], [`render_gdm`]).
//!
//! ```
//! use gmdf_gdm::{AbstractionGuide, GdmPattern};
//! use gmdf_metamodel::{DataType, MetamodelBuilder, Model, Value};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = MetamodelBuilder::new("fsm");
//! b.class("State")?.attribute("name", DataType::Str, true)?;
//! let mm = Arc::new(b.build()?);
//! let mut model = Model::new(mm.clone());
//! let s = model.create("State")?;
//! model.set_attr(s, "name", Value::from("Idle"))?;
//!
//! let mut guide = AbstractionGuide::new(mm);
//! guide.pair("State", GdmPattern::Circle)?;
//! let gdm = guide.finish()?.derive(&model, "debug model");
//! assert_eq!(gdm.elements[0].label, "Idle");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abstraction;
mod binding;
mod event;
mod metamodel;
mod model;
mod pattern;
mod scene;

pub use abstraction::{Abstraction, AbstractionError, AbstractionGuide, EdgeRule, MappingRule};
pub use binding::{default_bindings, CommandBinding, CommandMatcher, ReactionSpec};
pub use event::{EventKind, EventValue, ModelEvent};
pub use metamodel::{export_gdm, gdm_metamodel, GDM_METAMODEL};
pub use model::{DebuggerModel, GdmEdge, GdmElement};
pub use pattern::GdmPattern;
pub use scene::{
    is_highlightable, render_ascii, render_gdm, render_svg, ElementVisual, VisualState,
};
