//! Model-level runtime events — commands in the GDM's vocabulary.
//!
//! Whatever the transport (active RS-232 frames or passive JTAG watch
//! hits), the debugger sees a stream of [`ModelEvent`]s: "specific
//! commands (events) at particular points of execution" (paper §II),
//! already resolved to model element paths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Category of a model-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// A task activation started.
    TaskStart,
    /// A task activation completed.
    TaskEnd,
    /// A state machine entered a state.
    StateEnter,
    /// A modal block switched modes.
    ModeSwitch,
    /// An output signal was written.
    SignalWrite,
    /// A watched variable changed (passive channel).
    WatchChange,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::TaskStart => "task-start",
            EventKind::TaskEnd => "task-end",
            EventKind::StateEnter => "state-enter",
            EventKind::ModeSwitch => "mode-switch",
            EventKind::SignalWrite => "signal-write",
            EventKind::WatchChange => "watch-change",
        };
        write!(f, "{s}")
    }
}

/// A value carried by an event (the debugger's input-language-independent
/// value domain).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventValue {
    /// Boolean payload.
    Bool(bool),
    /// Integer payload.
    Int(i64),
    /// Floating-point payload.
    Real(f64),
}

impl EventValue {
    /// Numeric view (bools as 0/1).
    pub fn as_f64(self) -> f64 {
        match self {
            EventValue::Bool(b) => b as i64 as f64,
            EventValue::Int(i) => i as f64,
            EventValue::Real(r) => r,
        }
    }
}

impl fmt::Display for EventValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventValue::Bool(b) => write!(f, "{b}"),
            EventValue::Int(i) => write!(f, "{i}"),
            EventValue::Real(r) => write!(f, "{r:.6}"),
        }
    }
}

/// One model-level runtime event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEvent {
    /// Observation instant (ns, target time base).
    pub time_ns: u64,
    /// Event category.
    pub kind: EventKind,
    /// Path of the model element concerned (`Actor/block…`).
    pub path: String,
    /// State/mode left, when known.
    pub from: Option<String>,
    /// State/mode entered (`StateEnter` / `ModeSwitch`).
    pub to: Option<String>,
    /// Carried value (`SignalWrite` / `WatchChange`).
    pub value: Option<EventValue>,
}

impl ModelEvent {
    /// Creates a bare event.
    pub fn new(time_ns: u64, kind: EventKind, path: &str) -> Self {
        ModelEvent {
            time_ns,
            kind,
            path: path.to_owned(),
            from: None,
            to: None,
            value: None,
        }
    }

    /// Builder-style `to` setter.
    pub fn with_to(mut self, to: &str) -> Self {
        self.to = Some(to.to_owned());
        self
    }

    /// Builder-style `from` setter.
    pub fn with_from(mut self, from: &str) -> Self {
        self.from = Some(from.to_owned());
        self
    }

    /// Builder-style value setter.
    pub fn with_value(mut self, v: EventValue) -> Self {
        self.value = Some(v);
        self
    }

    /// The path of the entered child element (`path/to`), when `to` is
    /// known — what highlight reactions target.
    pub fn target_path(&self) -> Option<String> {
        self.to.as_ref().map(|t| format!("{}/{}", self.path, t))
    }
}

impl fmt::Display for ModelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10} ns] {} {}", self.time_ns, self.kind, self.path)?;
        if let (Some(from), Some(to)) = (&self.from, &self.to) {
            write!(f, ": {from} -> {to}")?;
        } else if let Some(to) = &self.to {
            write!(f, " -> {to}")?;
        }
        if let Some(v) = &self.value {
            write!(f, " = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ModelEvent::new(1500, EventKind::StateEnter, "Heater/ctl")
            .with_from("Idle")
            .with_to("Run");
        assert_eq!(
            e.to_string(),
            "[      1500 ns] state-enter Heater/ctl: Idle -> Run"
        );
        let e = ModelEvent::new(2, EventKind::SignalWrite, "Heater/out/u")
            .with_value(EventValue::Real(1.5));
        assert!(e.to_string().contains("= 1.5"));
    }

    #[test]
    fn target_path_joins() {
        let e = ModelEvent::new(0, EventKind::StateEnter, "A/fsm").with_to("Run");
        assert_eq!(e.target_path().unwrap(), "A/fsm/Run");
        let bare = ModelEvent::new(0, EventKind::TaskStart, "A");
        assert_eq!(bare.target_path(), None);
    }

    #[test]
    fn event_value_numeric_view() {
        assert_eq!(EventValue::Bool(true).as_f64(), 1.0);
        assert_eq!(EventValue::Int(-3).as_f64(), -3.0);
        assert_eq!(EventValue::Real(0.5).as_f64(), 0.5);
    }

    #[test]
    fn serde_round_trip() {
        let e = ModelEvent::new(7, EventKind::ModeSwitch, "A/m").with_to("fast");
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<ModelEvent>(&json).unwrap(), e);
    }
}
