//! GDM graphical patterns — the display options of the abstraction guide.
//!
//! "The GDM pattern provides the options of displaying objectives in
//! different forms according to user requirements. For instance, a
//! meta-model element 'state' from input models could be displayed as a
//! line or as a shape" (paper §II); the prototype's dialog offers
//! Rectangle, Triangle, Circle and Arrow (Fig. 4).

use gmdf_render::{Rect, Shape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The graphical form a mapped metamodel element takes in the GDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GdmPattern {
    /// Sharp-cornered rectangle (blocks, actors).
    Rectangle,
    /// Rounded rectangle (composite containers).
    RoundedRectangle,
    /// Circle/ellipse (states).
    Circle,
    /// Upward triangle (ports, sources).
    Triangle,
    /// Diamond (decision-ish elements).
    Diamond,
    /// Plain text label, no outline.
    Label,
}

impl GdmPattern {
    /// The full palette, in the order the abstraction guide lists it.
    pub const ALL: [GdmPattern; 6] = [
        GdmPattern::Rectangle,
        GdmPattern::RoundedRectangle,
        GdmPattern::Circle,
        GdmPattern::Triangle,
        GdmPattern::Diamond,
        GdmPattern::Label,
    ];

    /// Builds the scene shape realizing this pattern inside `bounds`.
    pub fn to_shape(self, bounds: Rect) -> Shape {
        match self {
            GdmPattern::Rectangle => Shape::Rect {
                bounds,
                rounded: 0.0,
            },
            GdmPattern::RoundedRectangle => Shape::Rect {
                bounds,
                rounded: 10.0,
            },
            GdmPattern::Circle => Shape::Ellipse { bounds },
            GdmPattern::Triangle => Shape::Triangle { bounds },
            GdmPattern::Diamond => Shape::Diamond { bounds },
            GdmPattern::Label => Shape::Text {
                at: gmdf_render::Point::new(bounds.x, bounds.bottom()),
                size: 12.0,
            },
        }
    }
}

impl fmt::Display for GdmPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GdmPattern::Rectangle => "Rectangle",
            GdmPattern::RoundedRectangle => "RoundedRectangle",
            GdmPattern::Circle => "Circle",
            GdmPattern::Triangle => "Triangle",
            GdmPattern::Diamond => "Diamond",
            GdmPattern::Label => "Label",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for GdmPattern {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GdmPattern::ALL
            .iter()
            .copied()
            .find(|p| p.to_string().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown pattern `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pattern_produces_a_shape() {
        let b = Rect::new(0.0, 0.0, 50.0, 30.0);
        for p in GdmPattern::ALL {
            let _ = p.to_shape(b); // must not panic
        }
        assert!(matches!(
            GdmPattern::Circle.to_shape(b),
            Shape::Ellipse { .. }
        ));
        assert!(matches!(GdmPattern::Label.to_shape(b), Shape::Text { .. }));
    }

    #[test]
    fn parse_round_trip() {
        for p in GdmPattern::ALL {
            let back: GdmPattern = p.to_string().parse().unwrap();
            assert_eq!(back, p);
        }
        assert!("Hexagon".parse::<GdmPattern>().is_err());
        assert_eq!("circle".parse::<GdmPattern>().unwrap(), GdmPattern::Circle);
    }
}
