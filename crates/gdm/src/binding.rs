//! Command → reaction bindings: the GDM's command interface.
//!
//! "GDM has a command interface … which provides appropriate reactions
//! when receiving commands (events) from the code being executed, i.e.
//! specific actions to be performed on the model in response to events
//! coming from the system under test (e.g. highlighting a GDM element)"
//! (paper §II). GMDF "provides a user interface to setup commands
//! associated with reaction types" (Fig. 6 step 4) — [`CommandBinding`]
//! is that association.

use crate::event::{EventKind, ModelEvent};
use serde::{Deserialize, Serialize};

/// Predicate selecting the events a binding reacts to.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommandMatcher {
    /// Match only this event kind (any if `None`).
    pub kind: Option<EventKind>,
    /// Match only events whose element path starts with this prefix
    /// (any if `None`).
    pub path_prefix: Option<String>,
}

impl CommandMatcher {
    /// Matches every event.
    pub fn any() -> Self {
        Self::default()
    }

    /// Matches one kind, any path.
    pub fn kind(kind: EventKind) -> Self {
        CommandMatcher {
            kind: Some(kind),
            path_prefix: None,
        }
    }

    /// Restricts the matcher to a path prefix.
    pub fn under(mut self, prefix: &str) -> Self {
        self.path_prefix = Some(prefix.to_owned());
        self
    }

    /// `true` if `event` satisfies the predicate.
    pub fn matches(&self, event: &ModelEvent) -> bool {
        if let Some(k) = self.kind {
            if event.kind != k {
                return false;
            }
        }
        if let Some(p) = &self.path_prefix {
            if !(event.path == *p || event.path.starts_with(&format!("{p}/"))) {
                return false;
            }
        }
        true
    }
}

/// The visual action a binding performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReactionSpec {
    /// Highlight the entered child element (`path/to`) and dim its
    /// siblings — the classic active-state animation.
    HighlightTarget,
    /// Highlight the element at the event's own path.
    HighlightSelf,
    /// Update the element's label with the event's value.
    ShowValue,
    /// Briefly emphasize the element (pulse counter increments).
    Pulse,
    /// Record the event in the trace without visual change.
    RecordOnly,
}

/// One configured command→reaction pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandBinding {
    /// Which events trigger the reaction.
    pub matcher: CommandMatcher,
    /// What happens on a match.
    pub reaction: ReactionSpec,
}

impl CommandBinding {
    /// Creates a binding.
    pub fn new(matcher: CommandMatcher, reaction: ReactionSpec) -> Self {
        CommandBinding { matcher, reaction }
    }
}

/// The default binding set the command-settings step pre-populates:
/// state entries and mode switches highlight the entered element, signal
/// writes show the value, watch hits highlight, task boundaries are
/// trace-only.
pub fn default_bindings() -> Vec<CommandBinding> {
    vec![
        CommandBinding::new(
            CommandMatcher::kind(EventKind::StateEnter),
            ReactionSpec::HighlightTarget,
        ),
        CommandBinding::new(
            CommandMatcher::kind(EventKind::ModeSwitch),
            ReactionSpec::HighlightTarget,
        ),
        CommandBinding::new(
            CommandMatcher::kind(EventKind::SignalWrite),
            ReactionSpec::ShowValue,
        ),
        CommandBinding::new(
            CommandMatcher::kind(EventKind::WatchChange),
            ReactionSpec::HighlightTarget,
        ),
        CommandBinding::new(
            CommandMatcher::kind(EventKind::TaskStart),
            ReactionSpec::RecordOnly,
        ),
        CommandBinding::new(
            CommandMatcher::kind(EventKind::TaskEnd),
            ReactionSpec::RecordOnly,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_by_kind() {
        let m = CommandMatcher::kind(EventKind::StateEnter);
        assert!(m.matches(&ModelEvent::new(0, EventKind::StateEnter, "A/fsm")));
        assert!(!m.matches(&ModelEvent::new(0, EventKind::TaskStart, "A")));
    }

    #[test]
    fn matcher_by_prefix_is_segment_aware() {
        let m = CommandMatcher::any().under("A/fsm");
        assert!(m.matches(&ModelEvent::new(0, EventKind::StateEnter, "A/fsm")));
        assert!(m.matches(&ModelEvent::new(0, EventKind::StateEnter, "A/fsm/inner")));
        // "A/fsmX" must NOT match the "A/fsm" prefix.
        assert!(!m.matches(&ModelEvent::new(0, EventKind::StateEnter, "A/fsmX")));
        assert!(!m.matches(&ModelEvent::new(0, EventKind::StateEnter, "B/fsm")));
    }

    #[test]
    fn any_matches_everything() {
        let m = CommandMatcher::any();
        for kind in [
            EventKind::TaskStart,
            EventKind::SignalWrite,
            EventKind::WatchChange,
        ] {
            assert!(m.matches(&ModelEvent::new(0, kind, "whatever")));
        }
    }

    #[test]
    fn default_bindings_cover_all_kinds() {
        let bindings = default_bindings();
        for kind in [
            EventKind::TaskStart,
            EventKind::TaskEnd,
            EventKind::StateEnter,
            EventKind::ModeSwitch,
            EventKind::SignalWrite,
            EventKind::WatchChange,
        ] {
            let e = ModelEvent::new(0, kind, "x");
            assert!(
                bindings.iter().any(|b| b.matcher.matches(&e)),
                "no binding for {kind}"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let b = CommandBinding::new(
            CommandMatcher::kind(EventKind::StateEnter).under("A"),
            ReactionSpec::HighlightTarget,
        );
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<CommandBinding>(&json).unwrap(), b);
    }
}
