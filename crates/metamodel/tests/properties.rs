//! Property tests on the metamodeling substrate: JSON round trips over
//! randomly generated metamodels and models, and containment invariants
//! under random mutation sequences.

use gmdf_metamodel::{
    metamodel_from_json, metamodel_to_json, model_from_json, model_to_json, validate, DataType,
    ElementPath, Metamodel, MetamodelBuilder, Model, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A randomized tree-shaped metamodel: `Node` objects with typed
/// attributes and nested children.
fn tree_metamodel(attr_types: &[DataType]) -> Metamodel {
    let mut b = MetamodelBuilder::new("tree");
    let mut cb = b.class("Node").unwrap();
    cb.attribute("name", DataType::Str, false).unwrap();
    for (i, ty) in attr_types.iter().enumerate() {
        cb.attribute(&format!("a{i}"), ty.clone(), false).unwrap();
    }
    cb.containment_many("kids", "Node").unwrap();
    cb.cross_optional("buddy", "Node").unwrap();
    b.build().unwrap()
}

fn arb_data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::Int),
        Just(DataType::Real),
        Just(DataType::Str),
        Just(DataType::List(Box::new(DataType::Int))),
    ]
}

fn arb_value_for(ty: &DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        DataType::Int => any::<i64>().prop_map(Value::Int).boxed(),
        DataType::Real => {
            // Finite reals only: NaN breaks PartialEq-based comparison.
            (-1e12f64..1e12).prop_map(Value::Real).boxed()
        }
        DataType::Str => "[a-z]{0,12}".prop_map(Value::Str).boxed(),
        DataType::List(_) => proptest::collection::vec(any::<i64>().prop_map(Value::Int), 0..5)
            .prop_map(Value::List)
            .boxed(),
        DataType::Enum(_) => unreachable!("not generated"),
    }
}

#[derive(Debug, Clone)]
struct TreeSpec {
    attr_types: Vec<DataType>,
    /// (parent index or none, attr values, buddy target index)
    nodes: Vec<(Option<usize>, Vec<Value>, Option<usize>)>,
}

fn arb_tree() -> impl Strategy<Value = TreeSpec> {
    proptest::collection::vec(arb_data_type(), 0..4).prop_flat_map(|attr_types: Vec<DataType>| {
        let tys = attr_types.clone();
        let attr_types = std::sync::Arc::new(attr_types);
        proptest::collection::vec(
            (
                any::<proptest::sample::Index>(),
                tys.iter().map(arb_value_for).collect::<Vec<_>>(),
                proptest::option::of(any::<proptest::sample::Index>()),
                any::<bool>(),
            ),
            1..20,
        )
        .prop_map(move |raw| {
            let n = raw.len();
            let nodes = raw
                .into_iter()
                .enumerate()
                .map(|(i, (parent_idx, values, buddy, is_root))| {
                    let parent = if i == 0 || is_root {
                        None
                    } else {
                        Some(parent_idx.index(i)) // earlier node → acyclic
                    };
                    let buddy = buddy.map(|b| b.index(n));
                    (parent, values, buddy)
                })
                .collect();
            TreeSpec {
                attr_types: attr_types.as_ref().clone(),
                nodes,
            }
        })
    })
}

fn build(spec: &TreeSpec) -> (Arc<Metamodel>, Model) {
    let mm = Arc::new(tree_metamodel(&spec.attr_types));
    let mut model = Model::new(mm.clone());
    let mut ids = Vec::new();
    for (i, (parent, values, _)) in spec.nodes.iter().enumerate() {
        let obj = model.create("Node").unwrap();
        model
            .set_attr(obj, "name", Value::Str(format!("n{i}")))
            .unwrap();
        for (k, v) in values.iter().enumerate() {
            model.set_attr(obj, &format!("a{k}"), v.clone()).unwrap();
        }
        if let Some(p) = parent {
            model.add_child(ids[*p], "kids", obj).unwrap();
        }
        ids.push(obj);
    }
    for (i, (_, _, buddy)) in spec.nodes.iter().enumerate() {
        if let Some(b) = buddy {
            model.add_ref(ids[i], "buddy", ids[*b]).unwrap();
        }
    }
    (mm, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Model JSON round trip preserves structure, attributes, links and
    /// conformance.
    #[test]
    fn model_json_round_trip(spec in arb_tree()) {
        let (mm, model) = build(&spec);
        let json = model_to_json(&model).unwrap();
        let back = model_from_json(mm, &json).unwrap();
        prop_assert_eq!(back.len(), model.len());
        prop_assert!(validate(&back).is_conformant());
        // Every object's path resolves identically in both models (paths
        // encode the containment tree + names).
        for (id, _) in model.iter() {
            let p = ElementPath::of(&model, id).unwrap();
            let there = p.resolve(&back);
            prop_assert!(there.is_some(), "path {} lost", p);
            // And the attributes under that path agree.
            let a = model.attr(id, "a0").ok().flatten().cloned();
            let b = back.attr(there.unwrap(), "a0").ok().flatten().cloned();
            prop_assert_eq!(a, b);
        }
    }

    /// Metamodel JSON round trip preserves lookup behaviour.
    #[test]
    fn metamodel_json_round_trip(attr_types in proptest::collection::vec(arb_data_type(), 0..4)) {
        let mm = tree_metamodel(&attr_types);
        let json = metamodel_to_json(&mm).unwrap();
        let back = metamodel_from_json(&json).unwrap();
        prop_assert_eq!(back.name(), mm.name());
        let a = mm.class_by_name("Node").unwrap();
        let b = back.class_by_name("Node").unwrap();
        prop_assert_eq!(
            mm.effective_attributes(a).len(),
            back.effective_attributes(b).len()
        );
    }

    /// Deleting any object keeps the model conformant (cascade removes
    /// the subtree and cleans dangling links) and never panics.
    #[test]
    fn random_deletions_keep_conformance(
        spec in arb_tree(),
        victims in proptest::collection::vec(any::<proptest::sample::Index>(), 1..6),
    ) {
        let (_, mut model) = build(&spec);
        for v in victims {
            let live: Vec<_> = model.iter().map(|(id, _)| id).collect();
            if live.is_empty() {
                break;
            }
            let target = live[v.index(live.len())];
            model.delete(target).unwrap();
            let report = validate(&model);
            // Only warnings (orphan roots) may remain; no errors ever.
            prop_assert!(report.is_conformant(), "{}", report);
        }
    }
}
