//! # gmdf-metamodel — MOF/EMF-style metamodeling substrate
//!
//! This crate is the reproduction of the Eclipse EMF layer the GMDF paper
//! (Zeng, Guo, Angelov — DATE 2010) builds on: GMDF "could accept all types
//! of system model that follow the MOF specification". It provides:
//!
//! * [`Metamodel`] — packages of classes, attributes, references and enums,
//!   built with [`MetamodelBuilder`];
//! * [`Model`] — object graphs conforming to a metamodel, with eager
//!   type/bound/containment checking;
//! * [`validate`](validate()) — whole-model conformance reports;
//! * [`ElementPath`] — stable, serializable element addresses used by the
//!   debugger's commands and bindings;
//! * JSON persistence ([`model_to_json`] / [`model_from_json`], the XMI
//!   analog) and a [`MetamodelRegistry`] for multi-metamodel sessions.
//!
//! ```
//! use gmdf_metamodel::{MetamodelBuilder, Model, DataType, Value, ElementPath};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Define a tiny state-machine metamodel…
//! let mut b = MetamodelBuilder::new("fsm");
//! b.class("Machine")?
//!     .attribute("name", DataType::Str, true)?
//!     .containment_many("states", "State")?;
//! b.class("State")?.attribute("name", DataType::Str, true)?;
//! let mm = Arc::new(b.build()?);
//!
//! // …instantiate it…
//! let mut model = Model::new(mm);
//! let machine = model.create("Machine")?;
//! model.set_attr(machine, "name", Value::from("Blinker"))?;
//! let on = model.create("State")?;
//! model.set_attr(on, "name", Value::from("On"))?;
//! model.add_child(machine, "states", on)?;
//!
//! // …and address elements by path, as the debugger does.
//! let path = ElementPath::of(&model, on).expect("live object");
//! assert_eq!(path.to_string(), "Blinker/On");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
mod meta;
mod model;
mod path;
mod registry;
mod serialize;
mod validate;
mod value;

pub use builder::{ClassBuilder, MetamodelBuilder};
pub use error::{MetaError, ModelError};
pub use meta::{
    is_valid_name, AttrId, Attribute, Class, ClassId, EnumType, Metamodel, RefId, Reference,
};
pub use model::{Model, Object, ObjectId};
pub use path::ElementPath;
pub use registry::MetamodelRegistry;
pub use serialize::{metamodel_from_json, metamodel_to_json, model_from_json, model_to_json};
pub use validate::{validate, Diagnostic, Severity, ValidationReport};
pub use value::{DataType, Value};
