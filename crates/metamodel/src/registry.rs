//! A registry of metamodels keyed by package name.
//!
//! GMDF accepts "multi-type and multi-input models" (paper §II): a debug
//! session may load models conforming to several metamodels at once. The
//! registry is the lookup the framework's input stage uses to resolve a
//! model document's `metamodel` field.

use crate::error::ModelError;
use crate::meta::Metamodel;
use crate::model::Model;
use crate::serialize::model_from_json;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shared, name-keyed collection of metamodels.
#[derive(Debug, Clone, Default)]
pub struct MetamodelRegistry {
    packages: BTreeMap<String, Arc<Metamodel>>,
}

impl MetamodelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a metamodel, returning the shared handle. Re-registering
    /// the same name replaces the previous entry (and returns it).
    pub fn register(&mut self, mm: Metamodel) -> Arc<Metamodel> {
        let arc = Arc::new(mm);
        self.packages.insert(arc.name().to_owned(), arc.clone());
        arc
    }

    /// Looks up a metamodel by package name.
    pub fn get(&self, name: &str) -> Option<Arc<Metamodel>> {
        self.packages.get(name).cloned()
    }

    /// Registered package names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.packages.keys().map(String::as_str).collect()
    }

    /// Number of registered packages.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// `true` if no packages are registered.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// Parses a model document, resolving its metamodel from the registry.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Parse`] when the document is malformed or its
    /// metamodel is not registered, plus any conformance error.
    pub fn load_model(&self, json: &str) -> Result<Model, ModelError> {
        // Peek at the metamodel name without fully parsing objects.
        #[derive(serde::Deserialize)]
        struct Head {
            metamodel: String,
        }
        let head: Head =
            serde_json::from_str(json).map_err(|e| ModelError::Parse(e.to_string()))?;
        let mm = self.get(&head.metamodel).ok_or_else(|| {
            ModelError::Parse(format!("metamodel `{}` is not registered", head.metamodel))
        })?;
        model_from_json(mm, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MetamodelBuilder;
    use crate::serialize::model_to_json;
    use crate::value::DataType;

    fn fsm() -> Metamodel {
        let mut b = MetamodelBuilder::new("fsm");
        b.class("State")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap();
        b.build().unwrap()
    }

    fn dataflow() -> Metamodel {
        let mut b = MetamodelBuilder::new("dataflow");
        b.class("Block").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = MetamodelRegistry::new();
        assert!(reg.is_empty());
        reg.register(fsm());
        reg.register(dataflow());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), ["dataflow", "fsm"]);
        assert!(reg.get("fsm").is_some());
        assert!(reg.get("uml").is_none());
    }

    #[test]
    fn load_model_resolves_metamodel() {
        let mut reg = MetamodelRegistry::new();
        let mm = reg.register(fsm());
        let mut m = Model::new(mm);
        let s = m.create("State").unwrap();
        m.set_attr(s, "name", "Idle".into()).unwrap();
        let json = model_to_json(&m).unwrap();

        let loaded = reg.load_model(&json).unwrap();
        assert_eq!(loaded.len(), 1);
    }

    #[test]
    fn load_model_unknown_metamodel_fails() {
        let reg = MetamodelRegistry::new();
        let err = reg
            .load_model(r#"{ "metamodel": "ghost", "objects": [] }"#)
            .unwrap_err();
        assert!(err.to_string().contains("not registered"));
    }
}
