//! Runtime values and primitive data types shared by metamodels and models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Primitive data types available for attributes (the MOF "data type" layer).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean truth value.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Real,
    /// UTF-8 string.
    Str,
    /// A named enumeration defined in the metamodel package.
    Enum(String),
    /// Homogeneous ordered list of another data type.
    List(Box<DataType>),
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "Bool"),
            DataType::Int => write!(f, "Int"),
            DataType::Real => write!(f, "Real"),
            DataType::Str => write!(f, "Str"),
            DataType::Enum(name) => write!(f, "Enum<{name}>"),
            DataType::List(inner) => write!(f, "List<{inner}>"),
        }
    }
}

/// A runtime value stored in a model object's attribute slot.
///
/// `Value` deliberately mirrors [`DataType`]; [`Value::data_type`] computes
/// the type a value conforms to, and [`Value::conforms_to`] checks
/// compatibility (an empty list conforms to any list type).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Real(f64),
    /// String value.
    Str(String),
    /// Enumeration literal: enum type name plus literal name.
    Enum(String, String),
    /// Ordered list of values.
    List(Vec<Value>),
}

impl Value {
    /// Returns the most specific [`DataType`] this value conforms to.
    ///
    /// For empty lists the element type is unknowable, so `List<Str>` is
    /// returned as a placeholder; use [`Value::conforms_to`] for checks.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Real(_) => DataType::Real,
            Value::Str(_) => DataType::Str,
            Value::Enum(ty, _) => DataType::Enum(ty.clone()),
            Value::List(items) => {
                let inner = items.first().map(Value::data_type).unwrap_or(DataType::Str);
                DataType::List(Box::new(inner))
            }
        }
    }

    /// Returns `true` if this value may be stored in a slot of type `ty`.
    ///
    /// `Int` values conform to `Real` slots (widening); empty lists conform
    /// to every list type; list values conform element-wise.
    pub fn conforms_to(&self, ty: &DataType) -> bool {
        match (self, ty) {
            (Value::Bool(_), DataType::Bool) => true,
            (Value::Int(_), DataType::Int) => true,
            (Value::Int(_), DataType::Real) => true,
            (Value::Real(_), DataType::Real) => true,
            (Value::Str(_), DataType::Str) => true,
            (Value::Enum(vt, _), DataType::Enum(t)) => vt == t,
            (Value::List(items), DataType::List(inner)) => {
                items.iter().all(|v| v.conforms_to(inner))
            }
            _ => false,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the floating-point payload; `Int` values are widened.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `(enum type, literal)`, if this is an `Enum`.
    pub fn as_enum(&self) -> Option<(&str, &str)> {
        match self {
            Value::Enum(t, l) => Some((t, l)),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Enum(t, l) => write!(f, "{t}::{l}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Value::List(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_display() {
        assert_eq!(DataType::Bool.to_string(), "Bool");
        assert_eq!(DataType::Enum("Color".into()).to_string(), "Enum<Color>");
        assert_eq!(
            DataType::List(Box::new(DataType::Int)).to_string(),
            "List<Int>"
        );
    }

    #[test]
    fn value_conformance_basic() {
        assert!(Value::Bool(true).conforms_to(&DataType::Bool));
        assert!(Value::Int(3).conforms_to(&DataType::Int));
        assert!(!Value::Int(3).conforms_to(&DataType::Bool));
        assert!(Value::Str("x".into()).conforms_to(&DataType::Str));
    }

    #[test]
    fn int_widens_to_real() {
        assert!(Value::Int(7).conforms_to(&DataType::Real));
        assert_eq!(Value::Int(7).as_real(), Some(7.0));
        assert!(!Value::Real(7.0).conforms_to(&DataType::Int));
    }

    #[test]
    fn enum_conformance_requires_same_type() {
        let v = Value::Enum("Color".into(), "Red".into());
        assert!(v.conforms_to(&DataType::Enum("Color".into())));
        assert!(!v.conforms_to(&DataType::Enum("Shape".into())));
        assert_eq!(v.as_enum(), Some(("Color", "Red")));
    }

    #[test]
    fn empty_list_conforms_to_any_list() {
        let v = Value::List(vec![]);
        assert!(v.conforms_to(&DataType::List(Box::new(DataType::Int))));
        assert!(v.conforms_to(&DataType::List(Box::new(DataType::Bool))));
        assert!(!v.conforms_to(&DataType::Int));
    }

    #[test]
    fn list_conformance_is_elementwise() {
        let good: Value = [1i64, 2, 3].into_iter().collect();
        assert!(good.conforms_to(&DataType::List(Box::new(DataType::Int))));
        let mixed = Value::List(vec![Value::Int(1), Value::Bool(false)]);
        assert!(!mixed.conforms_to(&DataType::List(Box::new(DataType::Int))));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(4).to_string(), "4");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(
            Value::Enum("Color".into(), "Red".into()).to_string(),
            "Color::Red"
        );
        let l: Value = [1i64, 2].into_iter().collect();
        assert_eq!(l.to_string(), "[1, 2]");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Real(2.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::List(vec![
            Value::Bool(true),
            Value::Enum("M".into(), "A".into()),
            Value::Real(1.5),
        ]);
        let json = serde_json::to_string(&v).expect("serialize");
        let back: Value = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(v, back);
    }
}
