//! Whole-model conformance validation.
//!
//! Mutations on [`Model`](crate::Model) are checked eagerly, but a model can
//! still be *incomplete* (missing required attributes, references below
//! their lower bound). [`validate`] re-checks every constraint and returns
//! all diagnostics rather than failing fast, which is what an editor or an
//! abstraction guide wants to display.

use crate::meta::Metamodel;
use crate::model::{Model, ObjectId};
use crate::path::ElementPath;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Stylistic or suspicious but conforming.
    Warning,
    /// The model does not conform to its metamodel.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One validation finding, tied to a model element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Element the finding refers to.
    pub object: ObjectId,
    /// Element path, when computable (for display).
    pub path: Option<ElementPath>,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(p) => write!(f, "{}: {} ({})", self.severity, self.message, p),
            None => write!(f, "{}: {} ({})", self.severity, self.message, self.object),
        }
    }
}

/// Result of [`validate`]: all diagnostics, in deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All findings, ordered by object id then message.
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// `true` if no error-severity diagnostics are present.
    pub fn is_conformant(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Count of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Iterates error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "model conforms (no diagnostics)");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Validates `model` against its metamodel, returning every finding.
///
/// Checks performed per object:
/// - required attributes carry a value;
/// - stored values conform to declared attribute types (defensive — the
///   mutation API enforces this, but models can be deserialized);
/// - reference target counts are within `[lower, upper]`;
/// - reference targets are live and class-compatible;
/// - warning when an object is an orphan root of a class that is the target
///   of some containment reference (usually a forgotten `add_child`).
pub fn validate(model: &Model) -> ValidationReport {
    let mm: &Metamodel = model.metamodel();
    let mut diagnostics = Vec::new();
    let containment_targets: Vec<_> = mm
        .classes()
        .iter()
        .flat_map(|c| c.own_references.iter())
        .filter(|r| r.containment)
        .map(|r| r.target)
        .collect();

    for (id, obj) in model.iter() {
        let class = obj.class();
        let path = ElementPath::of(model, id);
        let mut push = |severity, message: String| {
            diagnostics.push(Diagnostic {
                severity,
                object: id,
                path: path.clone(),
                message,
            });
        };

        for (aid, attr) in mm.effective_attributes(class) {
            match obj.attr(aid) {
                None if attr.required => push(
                    Severity::Error,
                    format!("missing required attribute `{}`", attr.name),
                ),
                Some(v) if !v.conforms_to(&attr.data_type) => push(
                    Severity::Error,
                    format!(
                        "attribute `{}` holds {} but expects {}",
                        attr.name,
                        v.data_type(),
                        attr.data_type
                    ),
                ),
                Some(crate::Value::Enum(ty, lit)) => {
                    let ok = mm
                        .enum_by_name(ty)
                        .is_some_and(|e| e.literal_index(lit).is_some());
                    if !ok {
                        push(
                            Severity::Error,
                            format!(
                                "attribute `{}` holds unknown literal `{ty}::{lit}`",
                                attr.name
                            ),
                        );
                    }
                }
                _ => {}
            }
        }

        for (rid, reference) in mm.effective_references(class) {
            let targets = obj.targets(rid);
            if (targets.len() as u32) < reference.lower {
                push(
                    Severity::Error,
                    format!(
                        "reference `{}` has {} target(s), lower bound is {}",
                        reference.name,
                        targets.len(),
                        reference.lower
                    ),
                );
            }
            if let Some(u) = reference.upper {
                if targets.len() as u32 > u {
                    push(
                        Severity::Error,
                        format!(
                            "reference `{}` has {} target(s), upper bound is {}",
                            reference.name,
                            targets.len(),
                            u
                        ),
                    );
                }
            }
            for &t in targets {
                match model.object(t) {
                    Err(_) => push(
                        Severity::Error,
                        format!("reference `{}` targets dead object {t}", reference.name),
                    ),
                    Ok(tobj) if !mm.is_subclass_of(tobj.class(), reference.target) => push(
                        Severity::Error,
                        format!(
                            "reference `{}` targets `{}`, expected `{}`",
                            reference.name,
                            mm.class(tobj.class()).name,
                            mm.class(reference.target).name
                        ),
                    ),
                    Ok(_) => {}
                }
            }
        }

        if obj.container().is_none()
            && containment_targets
                .iter()
                .any(|&t| mm.is_subclass_of(class, t))
        {
            push(
                Severity::Warning,
                format!(
                    "`{}` instance is a root but its class is normally contained",
                    mm.class(class).name
                ),
            );
        }
    }

    diagnostics.sort_by(|a, b| {
        a.object
            .cmp(&b.object)
            .then_with(|| a.message.cmp(&b.message))
    });
    ValidationReport { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MetamodelBuilder;
    use crate::value::{DataType, Value};
    use std::sync::Arc;

    fn mm() -> Arc<Metamodel> {
        let mut b = MetamodelBuilder::new("t");
        b.class("Machine")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap()
            .containment_many("states", "State")
            .unwrap();
        b.class("State")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap();
        b.class("Transition")
            .unwrap()
            .cross_required("source", "State")
            .unwrap()
            .cross_required("target", "State")
            .unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn conformant_model_passes() {
        let mut m = Model::new(mm());
        let mach = m.create("Machine").unwrap();
        m.set_attr(mach, "name", "M".into()).unwrap();
        let s = m.create("State").unwrap();
        m.set_attr(s, "name", "S".into()).unwrap();
        m.add_child(mach, "states", s).unwrap();
        let report = validate(&m);
        assert!(report.is_conformant(), "{report}");
    }

    #[test]
    fn missing_required_attribute_is_error() {
        let mut m = Model::new(mm());
        let mach = m.create("Machine").unwrap();
        let _ = mach;
        let report = validate(&m);
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics[0].message.contains("name"));
    }

    #[test]
    fn lower_bound_violation_is_error() {
        let mut m = Model::new(mm());
        let t = m.create("Transition").unwrap();
        let _ = t;
        let report = validate(&m);
        // source and target both missing
        assert_eq!(report.error_count(), 2);
    }

    #[test]
    fn orphan_contained_class_is_warning() {
        let mut m = Model::new(mm());
        let s = m.create("State").unwrap();
        m.set_attr(s, "name", "S".into()).unwrap();
        let report = validate(&m);
        assert!(report.is_conformant());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].severity, Severity::Warning);
    }

    #[test]
    fn bad_enum_literal_detected() {
        let mut b = MetamodelBuilder::new("t");
        b.enumeration("Color", ["Red"]).unwrap();
        b.class("A")
            .unwrap()
            .attribute("c", DataType::Enum("Color".into()), false)
            .unwrap();
        let mm = Arc::new(b.build().unwrap());
        let mut m = Model::new(mm);
        let a = m.create("A").unwrap();
        // Bypassing literal checks is possible because set_attr only checks
        // the enum *type* name; validate() must catch the bad literal.
        m.set_attr(a, "c", Value::Enum("Color".into(), "Chartreuse".into()))
            .unwrap();
        let report = validate(&m);
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics[0].message.contains("Chartreuse"));
    }

    #[test]
    fn report_display() {
        let m = Model::new(mm());
        let report = validate(&m);
        assert_eq!(report.to_string(), "model conforms (no diagnostics)");
    }
}
