//! Fluent construction of [`Metamodel`]s with eager validation.

use crate::error::MetaError;
use crate::meta::{is_valid_name, Attribute, Class, ClassId, EnumType, Metamodel, Reference};
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// Incrementally builds a [`Metamodel`].
///
/// Class declarations may reference classes that are declared later: forward
/// references are recorded by name and resolved in [`build`](Self::build).
///
/// ```
/// use gmdf_metamodel::{MetamodelBuilder, DataType};
///
/// # fn main() -> Result<(), gmdf_metamodel::MetaError> {
/// let mut b = MetamodelBuilder::new("fsm");
/// b.class("Machine")?.containment_many("states", "State")?;
/// b.class("State")?.attribute("name", DataType::Str, true)?;
/// let mm = b.build()?;
/// assert_eq!(mm.classes().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct MetamodelBuilder {
    name: String,
    classes: Vec<ProtoClass>,
    class_names: HashMap<String, usize>,
    enums: Vec<EnumType>,
}

#[derive(Debug)]
struct ProtoClass {
    name: String,
    is_abstract: bool,
    supertypes: Vec<String>,
    attributes: Vec<Attribute>,
    references: Vec<ProtoReference>,
}

#[derive(Debug)]
struct ProtoReference {
    name: String,
    target: String,
    containment: bool,
    lower: u32,
    upper: Option<u32>,
}

impl MetamodelBuilder {
    /// Starts a new package named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid identifier; package names are almost
    /// always literals, so this is a programming error rather than input.
    pub fn new(name: &str) -> Self {
        assert!(is_valid_name(name), "invalid package name `{name}`");
        MetamodelBuilder {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Declares (or re-opens) a class and returns a scoped builder for it.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidName`] for bad identifiers and
    /// [`MetaError::DuplicateClass`] if the class was already declared.
    pub fn class(&mut self, name: &str) -> Result<ClassBuilder<'_>, MetaError> {
        if !is_valid_name(name) {
            return Err(MetaError::InvalidName(name.to_owned()));
        }
        if self.class_names.contains_key(name) {
            return Err(MetaError::DuplicateClass(name.to_owned()));
        }
        let idx = self.classes.len();
        self.class_names.insert(name.to_owned(), idx);
        self.classes.push(ProtoClass {
            name: name.to_owned(),
            is_abstract: false,
            supertypes: Vec::new(),
            attributes: Vec::new(),
            references: Vec::new(),
        });
        Ok(ClassBuilder { owner: self, idx })
    }

    /// Declares an enumeration type with the given literals.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid names, duplicate enum names, duplicate
    /// literals, or an empty literal list.
    pub fn enumeration<I, S>(&mut self, name: &str, literals: I) -> Result<&mut Self, MetaError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if !is_valid_name(name) {
            return Err(MetaError::InvalidName(name.to_owned()));
        }
        if self.enums.iter().any(|e| e.name == name) {
            return Err(MetaError::DuplicateEnum(name.to_owned()));
        }
        let mut lits: Vec<String> = Vec::new();
        for l in literals {
            let l = l.into();
            if !is_valid_name(&l) {
                return Err(MetaError::InvalidName(l));
            }
            if lits.contains(&l) {
                return Err(MetaError::DuplicateLiteral {
                    enumeration: name.to_owned(),
                    literal: l,
                });
            }
            lits.push(l);
        }
        if lits.is_empty() {
            return Err(MetaError::EmptyEnum(name.to_owned()));
        }
        self.enums.push(EnumType {
            name: name.to_owned(),
            literals: lits,
        });
        Ok(self)
    }

    /// Resolves all forward references and produces the immutable metamodel.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::UnknownClass`] for unresolved supertype or
    /// reference targets, [`MetaError::UnknownEnum`] for attributes typed
    /// with undeclared enums, and [`MetaError::InheritanceCycle`] if the
    /// supertype graph is cyclic.
    pub fn build(self) -> Result<Metamodel, MetaError> {
        let resolve = |n: &str| -> Result<ClassId, MetaError> {
            self.class_names
                .get(n)
                .map(|&i| ClassId(i as u32))
                .ok_or_else(|| MetaError::UnknownClass(n.to_owned()))
        };
        let mut classes = Vec::with_capacity(self.classes.len());
        for proto in &self.classes {
            for attr in &proto.attributes {
                check_enum_types(&attr.data_type, &self.enums)?;
            }
            let supertypes = proto
                .supertypes
                .iter()
                .map(|s| resolve(s))
                .collect::<Result<Vec<_>, _>>()?;
            let references = proto
                .references
                .iter()
                .map(|r| {
                    Ok(Reference {
                        name: r.name.clone(),
                        target: resolve(&r.target)?,
                        containment: r.containment,
                        lower: r.lower,
                        upper: r.upper,
                    })
                })
                .collect::<Result<Vec<_>, MetaError>>()?;
            classes.push(Class {
                name: proto.name.clone(),
                is_abstract: proto.is_abstract,
                supertypes,
                own_attributes: proto.attributes.clone(),
                own_references: references,
            });
        }
        detect_cycles(&classes)?;
        Ok(Metamodel::from_parts(self.name, classes, self.enums))
    }
}

fn check_enum_types(ty: &DataType, enums: &[EnumType]) -> Result<(), MetaError> {
    match ty {
        DataType::Enum(name) => {
            if enums.iter().any(|e| &e.name == name) {
                Ok(())
            } else {
                Err(MetaError::UnknownEnum(name.clone()))
            }
        }
        DataType::List(inner) => check_enum_types(inner, enums),
        _ => Ok(()),
    }
}

fn detect_cycles(classes: &[Class]) -> Result<(), MetaError> {
    // Colors: 0 = white, 1 = grey (on stack), 2 = black (done).
    fn visit(classes: &[Class], i: usize, color: &mut [u8]) -> Result<(), MetaError> {
        match color[i] {
            1 => {
                return Err(MetaError::InheritanceCycle {
                    class: classes[i].name.clone(),
                })
            }
            2 => return Ok(()),
            _ => {}
        }
        color[i] = 1;
        for sup in &classes[i].supertypes {
            visit(classes, sup.index(), color)?;
        }
        color[i] = 2;
        Ok(())
    }
    let mut color = vec![0u8; classes.len()];
    for i in 0..classes.len() {
        visit(classes, i, &mut color)?;
    }
    Ok(())
}

/// Scoped builder for a single class; returned by
/// [`MetamodelBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    owner: &'a mut MetamodelBuilder,
    idx: usize,
}

impl ClassBuilder<'_> {
    fn proto(&mut self) -> &mut ProtoClass {
        &mut self.owner.classes[self.idx]
    }

    /// Marks the class abstract (not directly instantiable).
    pub fn set_abstract(&mut self, is_abstract: bool) -> &mut Self {
        self.proto().is_abstract = is_abstract;
        self
    }

    /// Adds a supertype by name (may be declared later).
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidName`] for bad identifiers.
    pub fn supertype(&mut self, name: &str) -> Result<&mut Self, MetaError> {
        if !is_valid_name(name) {
            return Err(MetaError::InvalidName(name.to_owned()));
        }
        let p = self.proto();
        if !p.supertypes.iter().any(|s| s == name) {
            p.supertypes.push(name.to_owned());
        }
        Ok(self)
    }

    fn check_feature_name(&mut self, name: &str) -> Result<(), MetaError> {
        if !is_valid_name(name) {
            return Err(MetaError::InvalidName(name.to_owned()));
        }
        let p = &self.owner.classes[self.idx];
        let dup = p.attributes.iter().any(|a| a.name == name)
            || p.references.iter().any(|r| r.name == name);
        if dup {
            return Err(MetaError::DuplicateFeature {
                class: p.name.clone(),
                feature: name.to_owned(),
            });
        }
        Ok(())
    }

    /// Declares an attribute.
    ///
    /// # Errors
    ///
    /// Returns an error for bad or duplicate feature names.
    pub fn attribute(
        &mut self,
        name: &str,
        data_type: DataType,
        required: bool,
    ) -> Result<&mut Self, MetaError> {
        self.check_feature_name(name)?;
        self.proto().attributes.push(Attribute {
            name: name.to_owned(),
            data_type,
            required,
            default: None,
        });
        Ok(self)
    }

    /// Declares an attribute with a default value (implies not required).
    ///
    /// # Errors
    ///
    /// Returns an error for bad/duplicate names, or if `default` does not
    /// conform to `data_type`.
    pub fn attribute_with_default(
        &mut self,
        name: &str,
        data_type: DataType,
        default: Value,
    ) -> Result<&mut Self, MetaError> {
        self.check_feature_name(name)?;
        if !default.conforms_to(&data_type) {
            return Err(MetaError::InvalidName(format!(
                "default for `{name}` does not conform to {data_type}"
            )));
        }
        self.proto().attributes.push(Attribute {
            name: name.to_owned(),
            data_type,
            required: false,
            default: Some(default),
        });
        Ok(self)
    }

    /// Declares a reference with explicit bounds.
    ///
    /// # Errors
    ///
    /// Returns an error for bad/duplicate names or `lower > upper`.
    pub fn reference(
        &mut self,
        name: &str,
        target: &str,
        containment: bool,
        lower: u32,
        upper: Option<u32>,
    ) -> Result<&mut Self, MetaError> {
        self.check_feature_name(name)?;
        if !is_valid_name(target) {
            return Err(MetaError::InvalidName(target.to_owned()));
        }
        if let Some(u) = upper {
            if lower > u {
                return Err(MetaError::InvalidBounds {
                    reference: name.to_owned(),
                    lower,
                    upper: u,
                });
            }
        }
        self.proto().references.push(ProtoReference {
            name: name.to_owned(),
            target: target.to_owned(),
            containment,
            lower,
            upper,
        });
        Ok(self)
    }

    /// Shorthand: unbounded containment reference (`0..*`, owned children).
    ///
    /// # Errors
    ///
    /// Propagates from [`reference`](Self::reference).
    pub fn containment_many(&mut self, name: &str, target: &str) -> Result<&mut Self, MetaError> {
        self.reference(name, target, true, 0, None)
    }

    /// Shorthand: optional single cross-reference (`0..1`).
    ///
    /// # Errors
    ///
    /// Propagates from [`reference`](Self::reference).
    pub fn cross_optional(&mut self, name: &str, target: &str) -> Result<&mut Self, MetaError> {
        self.reference(name, target, false, 0, Some(1))
    }

    /// Shorthand: required single cross-reference (`1..1`).
    ///
    /// # Errors
    ///
    /// Propagates from [`reference`](Self::reference).
    pub fn cross_required(&mut self, name: &str, target: &str) -> Result<&mut Self, MetaError> {
        self.reference(name, target, false, 1, Some(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = MetamodelBuilder::new("m");
        b.class("A").unwrap().cross_optional("next", "B").unwrap();
        b.class("B").unwrap();
        let mm = b.build().unwrap();
        let a = mm.class_by_name("A").unwrap();
        let (_, r) = mm.reference(a, "next").unwrap();
        assert_eq!(r.target, mm.class_by_name("B").unwrap());
    }

    #[test]
    fn unresolved_target_errors() {
        let mut b = MetamodelBuilder::new("m");
        b.class("A")
            .unwrap()
            .cross_optional("next", "Ghost")
            .unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            MetaError::UnknownClass("Ghost".into())
        );
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut b = MetamodelBuilder::new("m");
        b.class("A").unwrap();
        assert_eq!(
            b.class("A").unwrap_err(),
            MetaError::DuplicateClass("A".into())
        );
    }

    #[test]
    fn duplicate_feature_rejected() {
        let mut b = MetamodelBuilder::new("m");
        let mut c = b.class("A").unwrap();
        c.attribute("x", DataType::Int, false).unwrap();
        let err = c.attribute("x", DataType::Bool, false).unwrap_err();
        assert!(matches!(err, MetaError::DuplicateFeature { .. }));
    }

    #[test]
    fn inheritance_cycle_detected() {
        let mut b = MetamodelBuilder::new("m");
        b.class("A").unwrap().supertype("B").unwrap();
        b.class("B").unwrap().supertype("A").unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            MetaError::InheritanceCycle { .. }
        ));
    }

    #[test]
    fn self_inheritance_cycle_detected() {
        let mut b = MetamodelBuilder::new("m");
        b.class("A").unwrap().supertype("A").unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            MetaError::InheritanceCycle { .. }
        ));
    }

    #[test]
    fn bad_bounds_rejected() {
        let mut b = MetamodelBuilder::new("m");
        let err = b
            .class("A")
            .unwrap()
            .reference("r", "A", false, 5, Some(2))
            .unwrap_err();
        assert!(matches!(err, MetaError::InvalidBounds { .. }));
    }

    #[test]
    fn enum_attribute_requires_declared_enum() {
        let mut b = MetamodelBuilder::new("m");
        b.class("A")
            .unwrap()
            .attribute("c", DataType::Enum("Color".into()), true)
            .unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            MetaError::UnknownEnum("Color".into())
        );

        let mut b = MetamodelBuilder::new("m");
        b.enumeration("Color", ["Red"]).unwrap();
        b.class("A")
            .unwrap()
            .attribute("c", DataType::Enum("Color".into()), true)
            .unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn list_of_enum_checked() {
        let mut b = MetamodelBuilder::new("m");
        b.class("A")
            .unwrap()
            .attribute(
                "cs",
                DataType::List(Box::new(DataType::Enum("Color".into()))),
                false,
            )
            .unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn default_must_conform() {
        let mut b = MetamodelBuilder::new("m");
        let err = b
            .class("A")
            .unwrap()
            .attribute_with_default("x", DataType::Int, Value::Bool(true))
            .unwrap_err();
        assert!(matches!(err, MetaError::InvalidName(_)));
    }

    #[test]
    fn empty_enum_rejected() {
        let mut b = MetamodelBuilder::new("m");
        let err = b.enumeration("E", Vec::<String>::new()).unwrap_err();
        assert_eq!(err, MetaError::EmptyEnum("E".into()));
    }
}
