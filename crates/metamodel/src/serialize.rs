//! JSON persistence for metamodels and models — the XMI analog.
//!
//! The on-disk model format keeps objects in a flat array addressed by
//! their ids, with attributes and references stored by *name* so documents
//! stay diffable and robust against feature reordering:
//!
//! ```json
//! {
//!   "metamodel": "fsm",
//!   "objects": [
//!     { "id": 0, "class": "Machine", "attrs": { "name": "M" },
//!       "refs": { "states": [1] } }
//!   ]
//! }
//! ```

use crate::error::ModelError;
use crate::meta::Metamodel;
use crate::model::{Model, ObjectId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Serialized form of one object.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObjectDoc {
    id: u32,
    class: String,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    attrs: BTreeMap<String, Value>,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    refs: BTreeMap<String, Vec<u32>>,
}

/// Serialized form of a whole model.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ModelDoc {
    metamodel: String,
    objects: Vec<ObjectDoc>,
}

/// Serializes `model` to a pretty-printed JSON document.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] if JSON encoding fails (practically
/// impossible for well-formed values).
pub fn model_to_json(model: &Model) -> Result<String, ModelError> {
    let mm = model.metamodel();
    let mut objects = Vec::new();
    for (id, obj) in model.iter() {
        let mut attrs = BTreeMap::new();
        for (aid, decl) in mm.effective_attributes(obj.class()) {
            if let Some(v) = obj.attr(aid) {
                attrs.insert(decl.name.clone(), v.clone());
            }
        }
        let mut refs = BTreeMap::new();
        for (rid, decl) in mm.effective_references(obj.class()) {
            let targets = obj.targets(rid);
            if !targets.is_empty() {
                refs.insert(
                    decl.name.clone(),
                    targets.iter().map(|t| t.index() as u32).collect(),
                );
            }
        }
        objects.push(ObjectDoc {
            id: id.index() as u32,
            class: mm.class(obj.class()).name.clone(),
            attrs,
            refs,
        });
    }
    let doc = ModelDoc {
        metamodel: mm.name().to_owned(),
        objects,
    };
    serde_json::to_string_pretty(&doc).map_err(|e| ModelError::Parse(e.to_string()))
}

/// Parses a model document against `metamodel`.
///
/// Object ids are remapped to fresh ids; attribute and reference names are
/// resolved against the metamodel, and every stored value re-checked.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] for malformed JSON or a metamodel name
/// mismatch, and the usual mutation errors for non-conforming content.
pub fn model_from_json(metamodel: Arc<Metamodel>, json: &str) -> Result<Model, ModelError> {
    let doc: ModelDoc = serde_json::from_str(json).map_err(|e| ModelError::Parse(e.to_string()))?;
    if doc.metamodel != metamodel.name() {
        return Err(ModelError::Parse(format!(
            "document targets metamodel `{}`, expected `{}`",
            doc.metamodel,
            metamodel.name()
        )));
    }
    let mut model = Model::new(metamodel);
    // Pass 1: create all objects, recording id remapping.
    let mut remap: BTreeMap<u32, ObjectId> = BTreeMap::new();
    for od in &doc.objects {
        if remap.contains_key(&od.id) {
            return Err(ModelError::Parse(format!("duplicate object id {}", od.id)));
        }
        let id = model.create(&od.class)?;
        remap.insert(od.id, id);
    }
    // Pass 2: attributes and references.
    for od in &doc.objects {
        let id = remap[&od.id];
        for (name, value) in &od.attrs {
            model.set_attr(id, name, value.clone())?;
        }
    }
    for od in &doc.objects {
        let id = remap[&od.id];
        for (name, targets) in &od.refs {
            for raw in targets {
                let target = *remap
                    .get(raw)
                    .ok_or_else(|| ModelError::Parse(format!("dangling object id {raw}")))?;
                model.add_ref(id, name, target)?;
            }
        }
    }
    Ok(model)
}

/// Serializes a metamodel to pretty-printed JSON.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] if encoding fails.
pub fn metamodel_to_json(mm: &Metamodel) -> Result<String, ModelError> {
    serde_json::to_string_pretty(mm).map_err(|e| ModelError::Parse(e.to_string()))
}

/// Parses a metamodel from JSON produced by [`metamodel_to_json`].
///
/// # Errors
///
/// Returns [`ModelError::Parse`] for malformed documents.
pub fn metamodel_from_json(json: &str) -> Result<Metamodel, ModelError> {
    let mut mm: Metamodel =
        serde_json::from_str(json).map_err(|e| ModelError::Parse(e.to_string()))?;
    mm.rebuild_indexes();
    Ok(mm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MetamodelBuilder;
    use crate::value::DataType;

    fn mm() -> Arc<Metamodel> {
        let mut b = MetamodelBuilder::new("fsm");
        b.enumeration("Kind", ["Soft", "Hard"]).unwrap();
        b.class("Machine")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap()
            .attribute("kind", DataType::Enum("Kind".into()), false)
            .unwrap()
            .containment_many("states", "State")
            .unwrap()
            .containment_many("transitions", "Transition")
            .unwrap();
        b.class("State")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap()
            .attribute_with_default("initial", DataType::Bool, Value::Bool(false))
            .unwrap();
        b.class("Transition")
            .unwrap()
            .cross_required("source", "State")
            .unwrap()
            .cross_required("target", "State")
            .unwrap();
        Arc::new(b.build().unwrap())
    }

    fn sample_model() -> Model {
        let mut m = Model::new(mm());
        let mach = m.create("Machine").unwrap();
        m.set_attr(mach, "name", "Gate".into()).unwrap();
        m.set_attr(mach, "kind", Value::Enum("Kind".into(), "Hard".into()))
            .unwrap();
        let open = m.create("State").unwrap();
        m.set_attr(open, "name", "Open".into()).unwrap();
        m.set_attr(open, "initial", true.into()).unwrap();
        let closed = m.create("State").unwrap();
        m.set_attr(closed, "name", "Closed".into()).unwrap();
        m.add_child(mach, "states", open).unwrap();
        m.add_child(mach, "states", closed).unwrap();
        let t = m.create("Transition").unwrap();
        m.add_child(mach, "transitions", t).unwrap();
        m.add_ref(t, "source", open).unwrap();
        m.add_ref(t, "target", closed).unwrap();
        m
    }

    #[test]
    fn model_round_trip_preserves_structure() {
        let m = sample_model();
        let json = model_to_json(&m).unwrap();
        let back = model_from_json(m.metamodel().clone(), &json).unwrap();
        assert_eq!(back.len(), m.len());
        let mach = back.objects_of_class("Machine")[0];
        assert_eq!(back.name_of(mach), Some("Gate"));
        let states = back.refs(mach, "states").unwrap();
        assert_eq!(states.len(), 2);
        assert_eq!(back.name_of(states[0]), Some("Open"));
        assert_eq!(
            back.attr(states[0], "initial").unwrap(),
            Some(&Value::Bool(true))
        );
        let t = back.objects_of_class("Transition")[0];
        assert_eq!(back.ref_one(t, "source").unwrap(), Some(states[0]));
        // containment restored
        assert_eq!(back.roots(), vec![mach]);
    }

    #[test]
    fn metamodel_name_mismatch_rejected() {
        let m = sample_model();
        let json = model_to_json(&m).unwrap();
        let mut b = MetamodelBuilder::new("other");
        b.class("Machine").unwrap();
        let other = Arc::new(b.build().unwrap());
        let err = model_from_json(other, &json).unwrap_err();
        assert!(matches!(err, ModelError::Parse(_)));
    }

    #[test]
    fn malformed_json_rejected() {
        let err = model_from_json(mm(), "{ not json").unwrap_err();
        assert!(matches!(err, ModelError::Parse(_)));
    }

    #[test]
    fn dangling_reference_rejected() {
        let json = r#"{
            "metamodel": "fsm",
            "objects": [
                { "id": 0, "class": "Machine",
                  "attrs": { "name": { "Str": "M" } },
                  "refs": { "states": [99] } }
            ]
        }"#;
        let err = model_from_json(mm(), json).unwrap_err();
        assert!(matches!(err, ModelError::Parse(_)));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let json = r#"{
            "metamodel": "fsm",
            "objects": [
                { "id": 0, "class": "State", "attrs": { "name": { "Str": "A" } } },
                { "id": 0, "class": "State", "attrs": { "name": { "Str": "B" } } }
            ]
        }"#;
        let err = model_from_json(mm(), json).unwrap_err();
        assert!(matches!(err, ModelError::Parse(_)));
    }

    #[test]
    fn metamodel_round_trip() {
        let original = mm();
        let json = metamodel_to_json(&original).unwrap();
        let back = metamodel_from_json(&json).unwrap();
        assert_eq!(back.name(), "fsm");
        assert_eq!(back.classes().len(), 3);
        // Indexes rebuilt: lookups must work.
        let machine = back.class_by_name("Machine").unwrap();
        assert_eq!(back.class(machine).name, "Machine");
        assert!(back.enum_by_name("Kind").is_some());
        // A model built on the round-tripped metamodel behaves identically.
        let mut m = Model::new(Arc::new(back));
        let s = m.create("State").unwrap();
        assert_eq!(m.attr(s, "initial").unwrap(), Some(&Value::Bool(false)));
    }
}
