//! The metamodel layer: packages of classes, attributes, references and
//! enumerations — a pragmatic subset of MOF / Ecore.
//!
//! A [`Metamodel`] is immutable once built (use
//! [`MetamodelBuilder`](crate::builder::MetamodelBuilder)); models hold
//! compact ids ([`ClassId`], [`AttrId`], [`RefId`]) into it.

use crate::error::MetaError;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a class within its [`Metamodel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassId(pub(crate) u32);

/// Index of an attribute within its owning class (effective feature list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub(crate) u32);

/// Index of a reference within its owning class (effective feature list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RefId(pub(crate) u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

impl fmt::Display for RefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ref#{}", self.0)
    }
}

impl ClassId {
    /// Raw index, useful for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// Raw index into the owning class's attribute list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RefId {
    /// Raw index into the owning class's reference list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An attribute declaration: a named, typed, possibly-defaulted value slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Feature name, unique within the owning class hierarchy.
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
    /// `true` if every conforming object must carry a value.
    pub required: bool,
    /// Value used when an object is instantiated without an explicit one.
    pub default: Option<Value>,
}

/// A reference declaration: a named, typed link slot to other objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reference {
    /// Feature name, unique within the owning class hierarchy.
    pub name: String,
    /// Class (or superclass) that link targets must conform to.
    pub target: ClassId,
    /// `true` if targets are owned by the source (containment tree edge).
    pub containment: bool,
    /// Minimum number of targets for a valid model.
    pub lower: u32,
    /// Maximum number of targets, or `None` for unbounded (`*`).
    pub upper: Option<u32>,
}

impl Reference {
    /// `true` if more than one target is permitted.
    pub fn is_many(&self) -> bool {
        self.upper.is_none_or(|u| u > 1)
    }
}

/// A class (metaclass) declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Class {
    /// Class name, unique within the package.
    pub name: String,
    /// `true` if the class cannot be instantiated directly.
    pub is_abstract: bool,
    /// Direct supertypes (multiple inheritance is allowed, cycles are not).
    pub supertypes: Vec<ClassId>,
    /// Attributes declared *directly* on this class.
    pub own_attributes: Vec<Attribute>,
    /// References declared *directly* on this class.
    pub own_references: Vec<Reference>,
}

/// An enumeration type: a closed set of named literals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnumType {
    /// Enum name, unique within the package.
    pub name: String,
    /// Ordered literal names.
    pub literals: Vec<String>,
}

impl EnumType {
    /// Index of `literal`, if it belongs to this enum.
    pub fn literal_index(&self, literal: &str) -> Option<usize> {
        self.literals.iter().position(|l| l == literal)
    }
}

/// Returns `true` if `name` is a legal identifier for metamodel elements:
/// nonempty ASCII `[A-Za-z0-9_.-]`, not starting with a digit.
pub fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        None => return false,
        Some(c) if c.is_ascii_digit() => return false,
        Some(c) if !(c.is_ascii_alphanumeric() || c == '_') => return false,
        _ => {}
    }
    name.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
}

/// An immutable package of classes and enum types — the MOF/Ecore analog.
///
/// Build one with [`MetamodelBuilder`](crate::builder::MetamodelBuilder):
///
/// ```
/// use gmdf_metamodel::{MetamodelBuilder, DataType};
///
/// # fn main() -> Result<(), gmdf_metamodel::MetaError> {
/// let mut b = MetamodelBuilder::new("fsm");
/// b.class("State")?.attribute("name", DataType::Str, true)?;
/// let mm = b.build()?;
/// assert!(mm.class_by_name("State").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metamodel {
    name: String,
    classes: Vec<Class>,
    enums: Vec<EnumType>,
    #[serde(skip)]
    class_index: HashMap<String, ClassId>,
    #[serde(skip)]
    enum_index: HashMap<String, usize>,
}

impl Metamodel {
    pub(crate) fn from_parts(name: String, classes: Vec<Class>, enums: Vec<EnumType>) -> Self {
        let mut mm = Metamodel {
            name,
            classes,
            enums,
            class_index: HashMap::new(),
            enum_index: HashMap::new(),
        };
        mm.rebuild_indexes();
        mm
    }

    /// Recomputes the name→id lookup tables (needed after deserialization).
    pub(crate) fn rebuild_indexes(&mut self) {
        self.class_index = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), ClassId(i as u32)))
            .collect();
        self.enum_index = self
            .enums
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.clone(), i))
            .collect();
    }

    /// Package name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All classes, in declaration order.
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// All enum types, in declaration order.
    pub fn enums(&self) -> &[EnumType] {
        &self.enums
    }

    /// Looks up a class id by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_index.get(name).copied()
    }

    /// Returns the class for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not originate from this metamodel.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks up an enum type by name.
    pub fn enum_by_name(&self, name: &str) -> Option<&EnumType> {
        self.enum_index.get(name).map(|&i| &self.enums[i])
    }

    /// Returns `true` if `sub` equals `sup` or transitively inherits from it.
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        self.class(sub)
            .supertypes
            .iter()
            .any(|&s| self.is_subclass_of(s, sup))
    }

    /// All concrete classes conforming to `sup` (including itself if concrete).
    pub fn concrete_subclasses(&self, sup: ClassId) -> Vec<ClassId> {
        (0..self.classes.len() as u32)
            .map(ClassId)
            .filter(|&c| !self.class(c).is_abstract && self.is_subclass_of(c, sup))
            .collect()
    }

    /// Effective attributes of `id`: inherited (depth-first over supertypes,
    /// in declaration order) followed by own attributes.
    pub fn effective_attributes(&self, id: ClassId) -> Vec<(AttrId, &Attribute)> {
        let mut out = Vec::new();
        self.collect_attrs(id, &mut out);
        out.into_iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u32), a))
            .collect()
    }

    fn collect_attrs<'a>(&'a self, id: ClassId, out: &mut Vec<&'a Attribute>) {
        for &sup in &self.class(id).supertypes {
            self.collect_attrs(sup, out);
        }
        for a in &self.class(id).own_attributes {
            if !out.iter().any(|e| e.name == a.name) {
                out.push(a);
            }
        }
    }

    /// Effective references of `id`, ordered like
    /// [`effective_attributes`](Self::effective_attributes).
    pub fn effective_references(&self, id: ClassId) -> Vec<(RefId, &Reference)> {
        let mut out = Vec::new();
        self.collect_refs(id, &mut out);
        out.into_iter()
            .enumerate()
            .map(|(i, r)| (RefId(i as u32), r))
            .collect()
    }

    fn collect_refs<'a>(&'a self, id: ClassId, out: &mut Vec<&'a Reference>) {
        for &sup in &self.class(id).supertypes {
            self.collect_refs(sup, out);
        }
        for r in &self.class(id).own_references {
            if !out.iter().any(|e| e.name == r.name) {
                out.push(r);
            }
        }
    }

    /// Finds an effective attribute of `class` by name.
    pub fn attribute(&self, class: ClassId, name: &str) -> Option<(AttrId, Attribute)> {
        self.effective_attributes(class)
            .into_iter()
            .find(|(_, a)| a.name == name)
            .map(|(id, a)| (id, a.clone()))
    }

    /// Finds an effective reference of `class` by name.
    pub fn reference(&self, class: ClassId, name: &str) -> Option<(RefId, Reference)> {
        self.effective_references(class)
            .into_iter()
            .find(|(_, r)| r.name == name)
            .map(|(id, r)| (id, r.clone()))
    }

    /// Validates a value against an enum declared in this package.
    pub fn check_enum_literal(&self, enum_name: &str, literal: &str) -> Result<(), MetaError> {
        let e = self
            .enum_by_name(enum_name)
            .ok_or_else(|| MetaError::UnknownEnum(enum_name.to_owned()))?;
        if e.literal_index(literal).is_some() {
            Ok(())
        } else {
            Err(MetaError::DuplicateLiteral {
                enumeration: enum_name.to_owned(),
                literal: literal.to_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MetamodelBuilder;

    fn sample() -> Metamodel {
        let mut b = MetamodelBuilder::new("sample");
        b.enumeration("Color", ["Red", "Green", "Blue"]).unwrap();
        b.class("Named")
            .unwrap()
            .set_abstract(true)
            .attribute("name", DataType::Str, true)
            .unwrap();
        b.class("State")
            .unwrap()
            .supertype("Named")
            .unwrap()
            .attribute("initial", DataType::Bool, false)
            .unwrap();
        b.class("Machine")
            .unwrap()
            .supertype("Named")
            .unwrap()
            .containment_many("states", "State")
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_name("State"));
        assert!(is_valid_name("a_b-c.d"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("1abc"));
        assert!(!is_valid_name("-abc"));
        assert!(!is_valid_name("a b"));
    }

    #[test]
    fn class_lookup_and_inheritance() {
        let mm = sample();
        let named = mm.class_by_name("Named").unwrap();
        let state = mm.class_by_name("State").unwrap();
        let machine = mm.class_by_name("Machine").unwrap();
        assert!(mm.is_subclass_of(state, named));
        assert!(mm.is_subclass_of(machine, named));
        assert!(!mm.is_subclass_of(named, state));
        assert!(mm.is_subclass_of(state, state));
    }

    #[test]
    fn effective_attributes_include_inherited_first() {
        let mm = sample();
        let state = mm.class_by_name("State").unwrap();
        let attrs = mm.effective_attributes(state);
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].1.name, "name"); // inherited from Named
        assert_eq!(attrs[1].1.name, "initial");
        assert_eq!(attrs[0].0, AttrId(0));
    }

    #[test]
    fn concrete_subclasses_skip_abstract() {
        let mm = sample();
        let named = mm.class_by_name("Named").unwrap();
        let subs = mm.concrete_subclasses(named);
        let names: Vec<_> = subs.iter().map(|&c| mm.class(c).name.as_str()).collect();
        assert_eq!(names, ["State", "Machine"]);
    }

    #[test]
    fn reference_lookup() {
        let mm = sample();
        let machine = mm.class_by_name("Machine").unwrap();
        let (rid, r) = mm.reference(machine, "states").unwrap();
        assert_eq!(rid, RefId(0));
        assert!(r.containment);
        assert!(r.is_many());
        assert_eq!(r.target, mm.class_by_name("State").unwrap());
    }

    #[test]
    fn enum_literal_lookup() {
        let mm = sample();
        let color = mm.enum_by_name("Color").unwrap();
        assert_eq!(color.literal_index("Green"), Some(1));
        assert_eq!(color.literal_index("Magenta"), None);
        assert!(mm.check_enum_literal("Color", "Red").is_ok());
        assert!(mm.check_enum_literal("Hue", "Red").is_err());
    }
}
