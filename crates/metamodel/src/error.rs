//! Error types for metamodel and model operations.

use std::fmt;

/// Error raised while constructing or mutating a metamodel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// A package, class, attribute, reference or enum name is not a valid
    /// identifier (empty, or contains characters outside `[A-Za-z0-9_.-]`).
    InvalidName(String),
    /// A class with this name already exists in the package.
    DuplicateClass(String),
    /// An attribute or reference with this name already exists on the class
    /// (including inherited features).
    DuplicateFeature {
        /// Owning class name.
        class: String,
        /// Offending feature name.
        feature: String,
    },
    /// An enum type with this name already exists.
    DuplicateEnum(String),
    /// An enum literal is repeated within one enum type.
    DuplicateLiteral {
        /// Owning enum name.
        enumeration: String,
        /// Offending literal.
        literal: String,
    },
    /// A named class was not found in the package.
    UnknownClass(String),
    /// A named enum type was not found in the package.
    UnknownEnum(String),
    /// Adding this supertype edge would create an inheritance cycle.
    InheritanceCycle {
        /// A class on the cycle.
        class: String,
    },
    /// A reference's lower bound exceeds its upper bound.
    InvalidBounds {
        /// Offending reference name.
        reference: String,
        /// Declared lower bound.
        lower: u32,
        /// Declared upper bound.
        upper: u32,
    },
    /// An enum type has no literals.
    EmptyEnum(String),
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::InvalidName(n) => write!(f, "invalid identifier `{n}`"),
            MetaError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            MetaError::DuplicateFeature { class, feature } => {
                write!(f, "duplicate feature `{feature}` on class `{class}`")
            }
            MetaError::DuplicateEnum(n) => write!(f, "duplicate enum type `{n}`"),
            MetaError::DuplicateLiteral {
                enumeration,
                literal,
            } => {
                write!(f, "duplicate literal `{literal}` in enum `{enumeration}`")
            }
            MetaError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            MetaError::UnknownEnum(n) => write!(f, "unknown enum type `{n}`"),
            MetaError::InheritanceCycle { class } => {
                write!(f, "inheritance cycle through class `{class}`")
            }
            MetaError::InvalidBounds {
                reference,
                lower,
                upper,
            } => {
                write!(
                    f,
                    "reference `{reference}` has lower bound {lower} > upper bound {upper}"
                )
            }
            MetaError::EmptyEnum(n) => write!(f, "enum type `{n}` has no literals"),
        }
    }
}

impl std::error::Error for MetaError {}

/// Error raised while constructing, mutating or validating a model instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The referenced object id does not exist (or has been deleted).
    UnknownObject(u32),
    /// The named class does not exist in the model's metamodel.
    UnknownClass(String),
    /// The class is abstract and cannot be instantiated.
    AbstractClass(String),
    /// The named attribute does not exist on the object's class.
    UnknownAttribute {
        /// Object's class name.
        class: String,
        /// Requested attribute name.
        attribute: String,
    },
    /// The named reference does not exist on the object's class.
    UnknownReference {
        /// Object's class name.
        class: String,
        /// Requested reference name.
        reference: String,
    },
    /// A value's data type does not match the attribute's declared type.
    TypeMismatch {
        /// Attribute name.
        attribute: String,
        /// Declared type.
        expected: String,
        /// Supplied value's type.
        found: String,
    },
    /// The target object's class is not compatible with the reference's
    /// declared target class.
    TargetClassMismatch {
        /// Reference name.
        reference: String,
        /// Declared target class.
        expected: String,
        /// Supplied target's class.
        found: String,
    },
    /// Adding the link would exceed the reference's upper bound.
    UpperBoundExceeded {
        /// Reference name.
        reference: String,
        /// Declared upper bound.
        upper: u32,
    },
    /// An object would be contained by two different parents.
    AlreadyContained {
        /// Offending object id.
        object: u32,
    },
    /// A containment link would create a cycle.
    ContainmentCycle {
        /// Offending object id.
        object: u32,
    },
    /// Deserialization failed.
    Parse(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownObject(id) => write!(f, "unknown object #{id}"),
            ModelError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            ModelError::AbstractClass(n) => write!(f, "class `{n}` is abstract"),
            ModelError::UnknownAttribute { class, attribute } => {
                write!(f, "class `{class}` has no attribute `{attribute}`")
            }
            ModelError::UnknownReference { class, reference } => {
                write!(f, "class `{class}` has no reference `{reference}`")
            }
            ModelError::TypeMismatch {
                attribute,
                expected,
                found,
            } => {
                write!(
                    f,
                    "attribute `{attribute}` expects {expected}, found {found}"
                )
            }
            ModelError::TargetClassMismatch {
                reference,
                expected,
                found,
            } => {
                write!(
                    f,
                    "reference `{reference}` expects target class `{expected}`, found `{found}`"
                )
            }
            ModelError::UpperBoundExceeded { reference, upper } => {
                write!(f, "reference `{reference}` upper bound {upper} exceeded")
            }
            ModelError::AlreadyContained { object } => {
                write!(f, "object #{object} is already contained by another parent")
            }
            ModelError::ContainmentCycle { object } => {
                write!(f, "containment cycle through object #{object}")
            }
            ModelError::Parse(msg) => write!(f, "model parse error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_error_display_is_lowercase_and_concise() {
        let e = MetaError::DuplicateClass("State".into());
        assert_eq!(e.to_string(), "duplicate class `State`");
        let e = MetaError::InvalidBounds {
            reference: "r".into(),
            lower: 3,
            upper: 1,
        };
        assert!(e.to_string().contains("lower bound 3"));
    }

    #[test]
    fn model_error_display() {
        let e = ModelError::TypeMismatch {
            attribute: "speed".into(),
            expected: "Real".into(),
            found: "Bool".into(),
        };
        assert_eq!(e.to_string(), "attribute `speed` expects Real, found Bool");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetaError>();
        assert_send_sync::<ModelError>();
    }
}
