//! The model instance layer: objects conforming to a [`Metamodel`].
//!
//! A [`Model`] is a slot-map of [`Object`]s plus the containment forest the
//! metamodel's containment references induce. Mutations are checked eagerly
//! (types, bounds, containment uniqueness and acyclicity); whole-model
//! conformance is re-checked by [`crate::validate`].

use crate::error::ModelError;
use crate::meta::{AttrId, ClassId, Metamodel, RefId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Stable handle to an object within one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub(crate) u32);

impl ObjectId {
    /// Raw index (also the serialized form).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from its raw index; only meaningful for ids that came
    /// from the same model.
    pub fn from_index(i: usize) -> Self {
        ObjectId(i as u32)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// One model object: a class instance with attribute and reference slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    class: ClassId,
    attrs: Vec<Option<Value>>,
    refs: Vec<Vec<ObjectId>>,
    container: Option<(ObjectId, RefId)>,
}

impl Object {
    /// The object's metaclass.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The containing parent and the containment reference holding this
    /// object, if any.
    pub fn container(&self) -> Option<(ObjectId, RefId)> {
        self.container
    }

    /// Raw attribute slot (by effective attribute id).
    pub fn attr(&self, id: AttrId) -> Option<&Value> {
        self.attrs.get(id.index()).and_then(Option::as_ref)
    }

    /// Raw reference slot (by effective reference id).
    pub fn targets(&self, id: RefId) -> &[ObjectId] {
        self.refs.get(id.index()).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A model: a set of objects conforming to a shared [`Metamodel`].
///
/// ```
/// use gmdf_metamodel::{MetamodelBuilder, DataType, Model, Value};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = MetamodelBuilder::new("fsm");
/// b.class("Machine")?.containment_many("states", "State")?;
/// b.class("State")?.attribute("name", DataType::Str, true)?;
/// let mm = Arc::new(b.build()?);
///
/// let mut model = Model::new(mm.clone());
/// let machine = model.create("Machine")?;
/// let idle = model.create("State")?;
/// model.set_attr(idle, "name", Value::from("Idle"))?;
/// model.add_child(machine, "states", idle)?;
/// assert_eq!(model.children(machine).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    metamodel: Arc<Metamodel>,
    objects: Vec<Option<Object>>,
}

impl Model {
    /// Creates an empty model over `metamodel`.
    pub fn new(metamodel: Arc<Metamodel>) -> Self {
        Model {
            metamodel,
            objects: Vec::new(),
        }
    }

    /// The metamodel this model conforms to.
    pub fn metamodel(&self) -> &Arc<Metamodel> {
        &self.metamodel
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.iter().filter(|o| o.is_some()).count()
    }

    /// `true` if the model holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Instantiates a concrete class by name, filling attribute defaults.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownClass`] or [`ModelError::AbstractClass`].
    pub fn create(&mut self, class_name: &str) -> Result<ObjectId, ModelError> {
        let class = self
            .metamodel
            .class_by_name(class_name)
            .ok_or_else(|| ModelError::UnknownClass(class_name.to_owned()))?;
        self.create_by_id(class)
    }

    /// Instantiates a concrete class by id, filling attribute defaults.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::AbstractClass`] for abstract classes.
    pub fn create_by_id(&mut self, class: ClassId) -> Result<ObjectId, ModelError> {
        let c = self.metamodel.class(class);
        if c.is_abstract {
            return Err(ModelError::AbstractClass(c.name.clone()));
        }
        let attrs = self
            .metamodel
            .effective_attributes(class)
            .into_iter()
            .map(|(_, a)| a.default.clone())
            .collect();
        let refs = vec![Vec::new(); self.metamodel.effective_references(class).len()];
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(Some(Object {
            class,
            attrs,
            refs,
            container: None,
        }));
        Ok(id)
    }

    /// Looks up a live object.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownObject`] for deleted or foreign ids.
    pub fn object(&self, id: ObjectId) -> Result<&Object, ModelError> {
        self.objects
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(ModelError::UnknownObject(id.0))
    }

    fn object_mut(&mut self, id: ObjectId) -> Result<&mut Object, ModelError> {
        self.objects
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(ModelError::UnknownObject(id.0))
    }

    /// `true` if `id` names a live object.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.get(id.index()).is_some_and(Option::is_some)
    }

    /// Iterates over `(id, object)` for all live objects, in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Object)> {
        self.objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|o| (ObjectId(i as u32), o)))
    }

    /// All live objects whose class conforms to `class_name`.
    pub fn objects_of_class(&self, class_name: &str) -> Vec<ObjectId> {
        match self.metamodel.class_by_name(class_name) {
            Some(sup) => self
                .iter()
                .filter(|(_, o)| self.metamodel.is_subclass_of(o.class(), sup))
                .map(|(id, _)| id)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Objects with no container — the containment forest's roots.
    pub fn roots(&self) -> Vec<ObjectId> {
        self.iter()
            .filter(|(_, o)| o.container().is_none())
            .map(|(id, _)| id)
            .collect()
    }

    /// Sets an attribute by name, checking the declared type.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownAttribute`] or
    /// [`ModelError::TypeMismatch`].
    pub fn set_attr(&mut self, id: ObjectId, attr: &str, value: Value) -> Result<(), ModelError> {
        let class = self.object(id)?.class();
        let class_name = self.metamodel.class(class).name.clone();
        let (aid, decl) =
            self.metamodel
                .attribute(class, attr)
                .ok_or_else(|| ModelError::UnknownAttribute {
                    class: class_name.clone(),
                    attribute: attr.to_owned(),
                })?;
        if !value.conforms_to(&decl.data_type) {
            return Err(ModelError::TypeMismatch {
                attribute: attr.to_owned(),
                expected: decl.data_type.to_string(),
                found: value.data_type().to_string(),
            });
        }
        self.object_mut(id)?.attrs[aid.index()] = Some(value);
        Ok(())
    }

    /// Reads an attribute by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownAttribute`] for undeclared names; an
    /// unset optional attribute reads as `Ok(None)`.
    pub fn attr(&self, id: ObjectId, attr: &str) -> Result<Option<&Value>, ModelError> {
        let obj = self.object(id)?;
        let class_name = self.metamodel.class(obj.class()).name.clone();
        let (aid, _) =
            self.metamodel
                .attribute(obj.class(), attr)
                .ok_or(ModelError::UnknownAttribute {
                    class: class_name,
                    attribute: attr.to_owned(),
                })?;
        Ok(obj.attr(aid))
    }

    /// Convenience: reads a required string attribute named `name`.
    pub fn name_of(&self, id: ObjectId) -> Option<&str> {
        self.attr(id, "name").ok().flatten().and_then(Value::as_str)
    }

    /// Class name of a live object, or `"?"` for deleted ids.
    pub fn class_name_of(&self, id: ObjectId) -> &str {
        match self.object(id) {
            Ok(o) => &self.metamodel.class(o.class()).name,
            Err(_) => "?",
        }
    }

    fn resolve_ref(
        &self,
        id: ObjectId,
        reference: &str,
    ) -> Result<(RefId, crate::meta::Reference), ModelError> {
        let class = self.object(id)?.class();
        let class_name = self.metamodel.class(class).name.clone();
        self.metamodel
            .reference(class, reference)
            .ok_or(ModelError::UnknownReference {
                class: class_name,
                reference: reference.to_owned(),
            })
    }

    fn check_target(
        &self,
        decl: &crate::meta::Reference,
        target: ObjectId,
    ) -> Result<(), ModelError> {
        let t = self.object(target)?;
        if !self.metamodel.is_subclass_of(t.class(), decl.target) {
            return Err(ModelError::TargetClassMismatch {
                reference: decl.name.clone(),
                expected: self.metamodel.class(decl.target).name.clone(),
                found: self.metamodel.class(t.class()).name.clone(),
            });
        }
        Ok(())
    }

    /// Appends `target` to a cross (non-containment) reference.
    ///
    /// # Errors
    ///
    /// Checks name, target class, and upper bound. Containment references
    /// must use [`add_child`](Self::add_child).
    pub fn add_ref(
        &mut self,
        id: ObjectId,
        reference: &str,
        target: ObjectId,
    ) -> Result<(), ModelError> {
        let (rid, decl) = self.resolve_ref(id, reference)?;
        if decl.containment {
            return self.add_child(id, reference, target);
        }
        self.check_target(&decl, target)?;
        let slot = &mut self.object_mut(id)?.refs[rid.index()];
        if let Some(u) = decl.upper {
            if slot.len() as u32 >= u {
                return Err(ModelError::UpperBoundExceeded {
                    reference: reference.to_owned(),
                    upper: u,
                });
            }
        }
        slot.push(target);
        Ok(())
    }

    /// Sets a single-valued reference, replacing any existing target.
    ///
    /// # Errors
    ///
    /// Same checks as [`add_ref`](Self::add_ref).
    pub fn set_ref(
        &mut self,
        id: ObjectId,
        reference: &str,
        target: ObjectId,
    ) -> Result<(), ModelError> {
        let (rid, decl) = self.resolve_ref(id, reference)?;
        if decl.containment {
            // Detach previous children, then attach the new one.
            let old: Vec<ObjectId> = self.object(id)?.targets(rid).to_vec();
            for o in old {
                self.detach(o)?;
            }
            return self.add_child(id, reference, target);
        }
        self.check_target(&decl, target)?;
        let slot = &mut self.object_mut(id)?.refs[rid.index()];
        slot.clear();
        slot.push(target);
        Ok(())
    }

    /// Adds `child` under `parent` via a containment reference.
    ///
    /// # Errors
    ///
    /// In addition to [`add_ref`](Self::add_ref) checks, fails if `child`
    /// already has a container ([`ModelError::AlreadyContained`]) or if the
    /// edge would close a containment cycle
    /// ([`ModelError::ContainmentCycle`]).
    pub fn add_child(
        &mut self,
        parent: ObjectId,
        reference: &str,
        child: ObjectId,
    ) -> Result<(), ModelError> {
        let (rid, decl) = self.resolve_ref(parent, reference)?;
        self.check_target(&decl, child)?;
        if self.object(child)?.container().is_some() {
            return Err(ModelError::AlreadyContained { object: child.0 });
        }
        // Walk up from parent; hitting child means a cycle.
        let mut cur = Some(parent);
        while let Some(c) = cur {
            if c == child {
                return Err(ModelError::ContainmentCycle { object: child.0 });
            }
            cur = self.object(c)?.container().map(|(p, _)| p);
        }
        if let Some(u) = decl.upper {
            if self.object(parent)?.targets(rid).len() as u32 >= u {
                return Err(ModelError::UpperBoundExceeded {
                    reference: reference.to_owned(),
                    upper: u,
                });
            }
        }
        self.object_mut(parent)?.refs[rid.index()].push(child);
        self.object_mut(child)?.container = Some((parent, rid));
        Ok(())
    }

    /// Removes `child` from its container (it becomes a root).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownObject`] for dead ids; detaching a root
    /// is a no-op.
    pub fn detach(&mut self, child: ObjectId) -> Result<(), ModelError> {
        let Some((parent, rid)) = self.object(child)?.container() else {
            return Ok(());
        };
        self.object_mut(parent)?.refs[rid.index()].retain(|&c| c != child);
        self.object_mut(child)?.container = None;
        Ok(())
    }

    /// Reads the targets of a reference by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownReference`] for undeclared names.
    pub fn refs(&self, id: ObjectId, reference: &str) -> Result<Vec<ObjectId>, ModelError> {
        let (rid, _) = self.resolve_ref(id, reference)?;
        Ok(self.object(id)?.targets(rid).to_vec())
    }

    /// Single target of a reference, if present.
    pub fn ref_one(&self, id: ObjectId, reference: &str) -> Result<Option<ObjectId>, ModelError> {
        Ok(self.refs(id, reference)?.first().copied())
    }

    /// Iterates the direct containment children of `id`, across all
    /// containment references, in slot order.
    pub fn children(&self, id: ObjectId) -> impl Iterator<Item = ObjectId> + '_ {
        let obj = self.object(id).ok();
        let refs = obj
            .map(|o| {
                self.metamodel
                    .effective_references(o.class())
                    .into_iter()
                    .filter(|(_, r)| r.containment)
                    .flat_map(|(rid, _)| o.targets(rid).to_vec())
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        refs.into_iter()
    }

    /// Depth-first pre-order traversal of `id`'s containment subtree
    /// (including `id` itself).
    pub fn descendants(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if !self.contains(cur) {
                continue;
            }
            out.push(cur);
            let kids: Vec<_> = self.children(cur).collect();
            for k in kids.into_iter().rev() {
                stack.push(k);
            }
        }
        out
    }

    /// Deletes `id` and its entire containment subtree; all cross-links to
    /// deleted objects are removed from survivors.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownObject`] if `id` is already dead.
    pub fn delete(&mut self, id: ObjectId) -> Result<(), ModelError> {
        self.detach(id)?;
        let doomed = self.descendants(id);
        for &d in &doomed {
            self.objects[d.index()] = None;
        }
        for slot in self.objects.iter_mut().flatten() {
            for targets in &mut slot.refs {
                targets.retain(|t| !doomed.contains(t));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MetamodelBuilder;
    use crate::value::DataType;

    fn fsm_metamodel() -> Arc<Metamodel> {
        let mut b = MetamodelBuilder::new("fsm");
        b.class("Machine")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap()
            .containment_many("states", "State")
            .unwrap()
            .containment_many("transitions", "Transition")
            .unwrap();
        b.class("State")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap()
            .attribute_with_default("initial", DataType::Bool, Value::Bool(false))
            .unwrap();
        b.class("Transition")
            .unwrap()
            .cross_required("source", "State")
            .unwrap()
            .cross_required("target", "State")
            .unwrap();
        Arc::new(b.build().unwrap())
    }

    fn small_machine() -> (Model, ObjectId, ObjectId, ObjectId) {
        let mut m = Model::new(fsm_metamodel());
        let mach = m.create("Machine").unwrap();
        m.set_attr(mach, "name", "M".into()).unwrap();
        let s0 = m.create("State").unwrap();
        m.set_attr(s0, "name", "Idle".into()).unwrap();
        m.set_attr(s0, "initial", true.into()).unwrap();
        let s1 = m.create("State").unwrap();
        m.set_attr(s1, "name", "Run".into()).unwrap();
        m.add_child(mach, "states", s0).unwrap();
        m.add_child(mach, "states", s1).unwrap();
        (m, mach, s0, s1)
    }

    #[test]
    fn create_sets_defaults() {
        let mut m = Model::new(fsm_metamodel());
        let s = m.create("State").unwrap();
        assert_eq!(m.attr(s, "initial").unwrap(), Some(&Value::Bool(false)));
        assert_eq!(m.attr(s, "name").unwrap(), None);
    }

    #[test]
    fn attr_type_checked() {
        let mut m = Model::new(fsm_metamodel());
        let s = m.create("State").unwrap();
        let err = m.set_attr(s, "name", Value::Int(3)).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
        let err = m.set_attr(s, "ghost", Value::Int(3)).unwrap_err();
        assert!(matches!(err, ModelError::UnknownAttribute { .. }));
    }

    #[test]
    fn containment_tracks_parent() {
        let (m, mach, s0, _) = small_machine();
        assert_eq!(
            m.object(s0).unwrap().container().map(|(p, _)| p),
            Some(mach)
        );
        assert_eq!(m.roots(), vec![mach]);
        let kids: Vec<_> = m.children(mach).collect();
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn double_containment_rejected() {
        let (mut m, mach, s0, _) = small_machine();
        let err = m.add_child(mach, "states", s0).unwrap_err();
        assert!(matches!(err, ModelError::AlreadyContained { .. }));
    }

    #[test]
    fn containment_cycle_rejected() {
        let mut b = MetamodelBuilder::new("t");
        b.class("Node")
            .unwrap()
            .containment_many("kids", "Node")
            .unwrap();
        let mm = Arc::new(b.build().unwrap());
        let mut m = Model::new(mm);
        let a = m.create("Node").unwrap();
        let c = m.create("Node").unwrap();
        m.add_child(a, "kids", c).unwrap();
        let err = m.add_child(c, "kids", a).unwrap_err();
        assert!(matches!(err, ModelError::ContainmentCycle { .. }));
        let err = m.add_child(a, "kids", a).unwrap_err();
        assert!(matches!(err, ModelError::ContainmentCycle { .. }));
    }

    #[test]
    fn cross_reference_bounds() {
        let (mut m, mach, s0, s1) = small_machine();
        let t = m.create("Transition").unwrap();
        m.add_child(mach, "transitions", t).unwrap();
        m.add_ref(t, "source", s0).unwrap();
        let err = m.add_ref(t, "source", s1).unwrap_err();
        assert!(matches!(err, ModelError::UpperBoundExceeded { .. }));
        m.set_ref(t, "source", s1).unwrap(); // replace is fine
        assert_eq!(m.ref_one(t, "source").unwrap(), Some(s1));
    }

    #[test]
    fn target_class_checked() {
        let (mut m, mach, s0, _) = small_machine();
        let t = m.create("Transition").unwrap();
        let err = m.add_ref(t, "source", mach).unwrap_err();
        assert!(matches!(err, ModelError::TargetClassMismatch { .. }));
        m.add_ref(t, "source", s0).unwrap();
    }

    #[test]
    fn delete_cascades_and_cleans_links() {
        let (mut m, mach, s0, s1) = small_machine();
        let t = m.create("Transition").unwrap();
        m.add_child(mach, "transitions", t).unwrap();
        m.add_ref(t, "source", s0).unwrap();
        m.add_ref(t, "target", s1).unwrap();
        assert_eq!(m.len(), 4);
        m.delete(mach).unwrap();
        assert_eq!(m.len(), 0);
        assert!(!m.contains(s0));
        assert!(m.object(t).is_err());
    }

    #[test]
    fn delete_subtree_only() {
        let (mut m, mach, s0, s1) = small_machine();
        let t = m.create("Transition").unwrap();
        m.add_child(mach, "transitions", t).unwrap();
        m.add_ref(t, "source", s0).unwrap();
        m.add_ref(t, "target", s1).unwrap();
        m.delete(s0).unwrap();
        assert!(m.contains(mach));
        assert!(m.contains(s1));
        // dangling link to s0 removed from t
        assert_eq!(m.refs(t, "source").unwrap(), vec![]);
        assert_eq!(m.refs(t, "target").unwrap(), vec![s1]);
        assert_eq!(m.children(mach).count(), 2); // s1 + t
    }

    #[test]
    fn abstract_class_not_instantiable() {
        let mut b = MetamodelBuilder::new("t");
        b.class("A").unwrap().set_abstract(true);
        let mm = Arc::new(b.build().unwrap());
        let mut m = Model::new(mm);
        assert!(matches!(
            m.create("A").unwrap_err(),
            ModelError::AbstractClass(_)
        ));
        assert!(matches!(
            m.create("Nope").unwrap_err(),
            ModelError::UnknownClass(_)
        ));
    }

    #[test]
    fn objects_of_class_respects_inheritance() {
        let mut b = MetamodelBuilder::new("t");
        b.class("Base").unwrap();
        b.class("Derived").unwrap().supertype("Base").unwrap();
        let mm = Arc::new(b.build().unwrap());
        let mut m = Model::new(mm);
        let d = m.create("Derived").unwrap();
        let b_ = m.create("Base").unwrap();
        assert_eq!(m.objects_of_class("Base"), vec![d, b_]);
        assert_eq!(m.objects_of_class("Derived"), vec![d]);
        assert!(m.objects_of_class("Ghost").is_empty());
    }

    #[test]
    fn descendants_preorder() {
        let (m, mach, s0, s1) = small_machine();
        assert_eq!(m.descendants(mach), vec![mach, s0, s1]);
    }

    #[test]
    fn name_helpers() {
        let (m, mach, s0, _) = small_machine();
        assert_eq!(m.name_of(mach), Some("M"));
        assert_eq!(m.name_of(s0), Some("Idle"));
        assert_eq!(m.class_name_of(s0), "State");
    }
}
