//! Stable, human-readable paths addressing model elements.
//!
//! The debugger refers to model elements (states, blocks, actors) across
//! process boundaries — in command frames, GDM bindings and traces — so it
//! needs an id that survives serialization. An [`ElementPath`] is the chain
//! of element names from a containment root, e.g. `"Heater/fsm/Standby"`.
//! Unnamed objects fall back to `Class@id` segments.

use crate::model::{Model, ObjectId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Path of an element in a model's containment forest.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElementPath(Vec<String>);

impl ElementPath {
    /// Builds a path from raw segments.
    pub fn from_segments<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ElementPath(segments.into_iter().map(Into::into).collect())
    }

    /// Computes the path of `id` by walking up its containment chain.
    ///
    /// Returns `None` for dead objects.
    pub fn of(model: &Model, id: ObjectId) -> Option<Self> {
        if !model.contains(id) {
            return None;
        }
        let mut segments = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            segments.push(segment_of(model, c));
            cur = model.object(c).ok()?.container().map(|(p, _)| p);
        }
        segments.reverse();
        Some(ElementPath(segments))
    }

    /// Resolves the path in `model`, returning the element it names.
    pub fn resolve(&self, model: &Model) -> Option<ObjectId> {
        let mut candidates: Vec<ObjectId> = model.roots();
        let mut resolved: Option<ObjectId> = None;
        for seg in &self.0 {
            let found = candidates
                .iter()
                .copied()
                .find(|&c| segment_of(model, c) == *seg)?;
            resolved = Some(found);
            candidates = model.children(found).collect();
        }
        resolved
    }

    /// Path segments, outermost first.
    pub fn segments(&self) -> &[String] {
        &self.0
    }

    /// Final segment (the element's own name), if the path is nonempty.
    pub fn leaf(&self) -> Option<&str> {
        self.0.last().map(String::as_str)
    }

    /// `true` if `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &ElementPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Returns a new path with `segment` appended.
    pub fn child(&self, segment: &str) -> ElementPath {
        let mut v = self.0.clone();
        v.push(segment.to_owned());
        ElementPath(v)
    }
}

fn segment_of(model: &Model, id: ObjectId) -> String {
    match model.name_of(id) {
        Some(n) => n.to_owned(),
        None => format!("{}@{}", model.class_name_of(id), id.index()),
    }
}

impl fmt::Display for ElementPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("/"))
    }
}

impl std::str::FromStr for ElementPath {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(ElementPath(
            s.split('/')
                .filter(|p| !p.is_empty())
                .map(str::to_owned)
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MetamodelBuilder;
    use crate::value::DataType;
    use std::sync::Arc;

    fn model() -> (Model, ObjectId, ObjectId, ObjectId) {
        let mut b = MetamodelBuilder::new("t");
        b.class("Actor")
            .unwrap()
            .attribute("name", DataType::Str, true)
            .unwrap()
            .containment_many("blocks", "Block")
            .unwrap();
        b.class("Block")
            .unwrap()
            .attribute("name", DataType::Str, false)
            .unwrap()
            .containment_many("blocks", "Block")
            .unwrap();
        let mm = Arc::new(b.build().unwrap());
        let mut m = Model::new(mm);
        let actor = m.create("Actor").unwrap();
        m.set_attr(actor, "name", "Heater".into()).unwrap();
        let fsm = m.create("Block").unwrap();
        m.set_attr(fsm, "name", "fsm".into()).unwrap();
        let state = m.create("Block").unwrap();
        m.set_attr(state, "name", "Standby".into()).unwrap();
        m.add_child(actor, "blocks", fsm).unwrap();
        m.add_child(fsm, "blocks", state).unwrap();
        (m, actor, fsm, state)
    }

    #[test]
    fn path_round_trip() {
        let (m, _, _, state) = model();
        let p = ElementPath::of(&m, state).unwrap();
        assert_eq!(p.to_string(), "Heater/fsm/Standby");
        assert_eq!(p.resolve(&m), Some(state));
    }

    #[test]
    fn parse_and_display() {
        let p: ElementPath = "a/b/c".parse().unwrap();
        assert_eq!(p.segments(), ["a", "b", "c"]);
        assert_eq!(p.leaf(), Some("c"));
        assert_eq!(p.to_string(), "a/b/c");
        let empty: ElementPath = "".parse().unwrap();
        assert_eq!(empty.segments().len(), 0);
    }

    #[test]
    fn unnamed_objects_get_fallback_segments() {
        let (mut m, actor, _, _) = model();
        let anon = m.create("Block").unwrap();
        m.add_child(actor, "blocks", anon).unwrap();
        let p = ElementPath::of(&m, anon).unwrap();
        assert!(p.to_string().starts_with("Heater/Block@"));
        assert_eq!(p.resolve(&m), Some(anon));
    }

    #[test]
    fn prefix_and_child() {
        let a: ElementPath = "x/y".parse().unwrap();
        let b = a.child("z");
        assert_eq!(b.to_string(), "x/y/z");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
    }

    #[test]
    fn resolve_missing_returns_none() {
        let (m, ..) = model();
        let p: ElementPath = "Heater/ghost".parse().unwrap();
        assert_eq!(p.resolve(&m), None);
    }

    #[test]
    fn path_of_dead_object_is_none() {
        let (mut m, _, _, state) = model();
        m.delete(state).unwrap();
        assert_eq!(ElementPath::of(&m, state), None);
    }
}
