//! Property tests on the command-interface wire format: the decoder must
//! recover every frame from arbitrary chunking and arbitrary inter-frame
//! garbage, and never panic on any byte stream.

use gmdf_codegen::{Frame, FrameDecoder, MAX_ARGS, SOF};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        any::<u16>(),
        proptest::collection::vec(any::<u64>(), 0..=MAX_ARGS),
    )
        .prop_map(|(event, args)| Frame::new(event, args))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any sequence of frames, split at arbitrary byte boundaries,
    /// decodes losslessly and in order.
    #[test]
    fn frames_survive_arbitrary_chunking(
        frames in proptest::collection::vec(arb_frame(), 0..12),
        chunk_sizes in proptest::collection::vec(1usize..17, 1..64),
    ) {
        let mut wire: Vec<u8> = Vec::new();
        for f in &frames {
            wire.extend(f.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut k = 0;
        while pos < wire.len() {
            let n = chunk_sizes[k % chunk_sizes.len()].min(wire.len() - pos);
            got.extend(dec.feed(&wire[pos..pos + n]));
            pos += n;
            k += 1;
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(dec.crc_errors, 0);
    }

    /// Garbage before, between and after frames is skipped; every real
    /// frame still comes out. (Garbage bytes may never contain SOF to
    /// keep the oracle simple — resynchronization with embedded fake SOFs
    /// is covered separately.)
    #[test]
    fn garbage_between_frames_is_skipped(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        garbage in proptest::collection::vec(any::<u8>().prop_filter("not sof", |b| *b != SOF), 0..32),
    ) {
        let mut wire: Vec<u8> = Vec::new();
        wire.extend(&garbage);
        for f in &frames {
            wire.extend(f.encode());
            wire.extend(&garbage);
        }
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&wire);
        prop_assert_eq!(got, frames);
    }

    /// The decoder never panics and never fabricates frames from pure
    /// noise that fails CRC (a fabricated frame would need a valid CRC,
    /// which the 16-bit check makes vanishingly unlikely for short noise;
    /// we only assert no panic and bounded output here).
    #[test]
    fn decoder_is_total_on_random_bytes(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&noise);
        // Each decoded frame consumed at least 7 bytes of input.
        prop_assert!(got.len() <= noise.len() / 7 + 1);
    }

    /// A single corrupted byte in a frame kills (at most) that frame;
    /// neighbors decode intact.
    #[test]
    fn corruption_is_contained(
        a in arb_frame(),
        victim in arb_frame(),
        b in arb_frame(),
        flip in any::<(proptest::sample::Index, u8)>(),
    ) {
        let mut wire = a.encode();
        let mut v = victim.encode();
        let (idx, mask) = flip;
        prop_assume!(mask != 0);
        let i = idx.index(v.len());
        v[i] ^= mask;
        wire.extend(v);
        wire.extend(b.encode());
        let mut dec = FrameDecoder::new();
        let mut got = dec.feed(&wire);
        // A flipped byte can fabricate a SOF whose plausible length field
        // leaves the decoder waiting for a frame tail that spans past the
        // end of this burst; on a live line more traffic flushes it. Feed
        // non-SOF padding to emulate the flowing link.
        got.extend(dec.feed(&[0u8; 256]));
        // `a` and `b` must both be present, in order, possibly with the
        // victim surviving if the flip hit a don't-care byte (it can't:
        // every byte is covered by CRC or is the SOF/len, but a flipped
        // SOF can resync mid-frame and strand `victim` bytes — so we only
        // require a and b).
        prop_assert!(got.contains(&a));
        prop_assert!(got.contains(&b));
        let pa = got.iter().position(|f| *f == a).unwrap();
        let pb = got.iter().rposition(|f| *f == b).unwrap();
        prop_assert!(pa <= pb);
    }
}
