//! Codegen-equivalence suite: compiled bytecode must reproduce the
//! reference interpreter **bit for bit**.
//!
//! This is the property that makes the debugger's implementation-error
//! detection meaningful: with no injected faults, generated code and model
//! semantics coincide exactly, so any observed divergence on a real run is
//! a genuine transformation bug.

use gmdf_codegen::{compile_system, vm, CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    run_network, ActorBuilder, BasicOp, Expr, FsmBuilder, ModalBlock, Mode, Network,
    NetworkBuilder, NodeSpec, Port, SignalValue, System, Timing, VAR_TIME_IN_STATE,
};
use proptest::prelude::*;

const PERIOD_NS: u64 = 10_000_000; // dt = 0.01 s

/// Wraps a network in a single-actor system, compiles it, and executes the
/// task code step by step, writing inputs straight into the input latches.
fn run_compiled(net: &Network, steps: &[Vec<SignalValue>]) -> Vec<Vec<SignalValue>> {
    let mut builder = ActorBuilder::new("A", net.clone());
    for p in &net.inputs {
        builder = builder.input(&p.name, &format!("sig_{}", p.name));
    }
    for p in &net.outputs {
        builder = builder.output(&p.name, &format!("sig_{}", p.name));
    }
    let actor = builder
        .timing(Timing::periodic(PERIOD_NS, 0))
        .build()
        .expect("actor builds");
    let mut node = NodeSpec::new("n0", 48_000_000);
    node.actors.push(actor);
    let system = System::new("equiv").with_node(node);
    let image = compile_system(
        &system,
        &CompileOptions {
            instrument: InstrumentOptions::none(),
            faults: vec![],
        },
    )
    .expect("compiles");

    let nimg = &image.nodes[0];
    let task = &nimg.tasks[0];
    let mut data = vec![0u64; nimg.data_cells as usize];
    for &(addr, raw) in &nimg.data_init {
        data[addr as usize] = raw;
    }
    steps
        .iter()
        .map(|ins| {
            for (latch, v) in task.input_latches.iter().zip(ins.iter()) {
                data[latch.to as usize] = v.to_raw();
            }
            vm::run(&task.code, &mut data, vm::DEFAULT_STEP_BUDGET).expect("vm runs");
            task.publications
                .iter()
                .map(|p| SignalValue::from_raw(p.ty, data[p.latch as usize]))
                .collect()
        })
        .collect()
}

/// Asserts bit-identical outputs between interpreter and compiled code.
fn assert_equivalent(net: &Network, steps: &[Vec<SignalValue>]) {
    let interp = run_network(net, steps, PERIOD_NS as f64 / 1e9).expect("interpreter runs");
    let compiled = run_compiled(net, steps);
    assert_eq!(interp.len(), compiled.len());
    for (k, (a, b)) in interp.iter().zip(compiled.iter()).enumerate() {
        assert_eq!(a.len(), b.len(), "step {k}");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_raw(),
                y.to_raw(),
                "step {k} output {i}: interpreter {x} vs compiled {y}"
            );
        }
    }
}

fn real_steps(values: &[f64]) -> Vec<Vec<SignalValue>> {
    values.iter().map(|&v| vec![SignalValue::Real(v)]).collect()
}

#[test]
fn every_stateless_real_op_is_equivalent() {
    let unary_ops = [
        BasicOp::Gain { k: -2.5 },
        BasicOp::Offset { c: 3.25 },
        BasicOp::Abs,
        BasicOp::Neg,
        BasicOp::Limit { lo: -1.0, hi: 1.0 },
        BasicOp::Deadband { width: 0.5 },
    ];
    let inputs = real_steps(&[0.0, 1.5, -0.25, 1e9, -1e-9, f64::MAX]);
    for op in unary_ops {
        let net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("b", op.clone())
            .connect("x", "b.x")
            .unwrap()
            .connect("b.y", "y")
            .unwrap()
            .build()
            .unwrap();
        assert_equivalent(&net, &inputs);
    }
}

#[test]
fn every_binary_real_op_is_equivalent() {
    let ops = [
        BasicOp::Sum,
        BasicOp::Sub,
        BasicOp::Mul,
        BasicOp::Div,
        BasicOp::Min,
        BasicOp::Max,
    ];
    let steps: Vec<Vec<SignalValue>> = [(1.5, 2.0), (0.0, 0.0), (-3.0, 7.0), (1.0, 0.0)]
        .iter()
        .map(|&(a, b)| vec![SignalValue::Real(a), SignalValue::Real(b)])
        .collect();
    for op in ops {
        let net = NetworkBuilder::new()
            .input(Port::real("p"))
            .input(Port::real("q"))
            .output(Port::real("y"))
            .block("b", op.clone())
            .connect("p", "b.a")
            .unwrap()
            .connect("q", "b.b")
            .unwrap()
            .connect("b.y", "y")
            .unwrap()
            .build()
            .unwrap();
        assert_equivalent(&net, &steps);
    }
}

#[test]
fn every_stateful_op_is_equivalent_over_time() {
    let cases: Vec<(BasicOp, &str, &str)> = vec![
        (
            BasicOp::Hysteresis {
                low: -0.5,
                high: 0.5,
            },
            "x",
            "q",
        ),
        (
            BasicOp::Integrator {
                gain: 2.0,
                initial: 0.5,
                lo: -3.0,
                hi: 3.0,
            },
            "x",
            "y",
        ),
        (BasicOp::Derivative, "x", "y"),
        (BasicOp::LowPass { alpha: 0.3 }, "x", "y"),
        (BasicOp::MovingAverage { window: 4 }, "x", "y"),
        (
            BasicOp::RateLimiter {
                max_rise: 10.0,
                max_fall: 5.0,
            },
            "x",
            "y",
        ),
    ];
    let inputs = real_steps(&[0.0, 1.0, -1.0, 0.75, 0.75, -2.0, 3.0, 0.1, 0.0, 5.0]);
    for (op, in_port, out_port) in cases {
        let net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::new(out_port, op.outputs()[0].ty))
            .block("b", op.clone())
            .connect("x", &format!("b.{in_port}"))
            .unwrap()
            .connect(&format!("b.{}", op.outputs()[0].name), out_port)
            .unwrap()
            .build()
            .unwrap();
        assert_equivalent(&net, &inputs);
    }
}

#[test]
fn pid_is_equivalent() {
    let net = NetworkBuilder::new()
        .input(Port::real("sp"))
        .input(Port::real("pv"))
        .output(Port::real("u"))
        .block(
            "pid",
            BasicOp::Pid {
                kp: 1.2,
                ki: 0.4,
                kd: 0.05,
                lo: -10.0,
                hi: 10.0,
            },
        )
        .connect("sp", "pid.sp")
        .unwrap()
        .connect("pv", "pid.pv")
        .unwrap()
        .connect("pid.u", "u")
        .unwrap()
        .build()
        .unwrap();
    let steps: Vec<Vec<SignalValue>> = (0..20)
        .map(|k| {
            vec![
                SignalValue::Real(5.0),
                SignalValue::Real(5.0 * (1.0 - (-(k as f64) * 0.1).exp())),
            ]
        })
        .collect();
    assert_equivalent(&net, &steps);
}

#[test]
fn boolean_blocks_are_equivalent() {
    let net = NetworkBuilder::new()
        .input(Port::boolean("a"))
        .input(Port::boolean("b"))
        .output(Port::boolean("q"))
        .block("and", BasicOp::And)
        .block("edge", BasicOp::RisingEdge)
        .block("latch", BasicOp::SrLatch)
        .connect("a", "and.a")
        .unwrap()
        .connect("b", "and.b")
        .unwrap()
        .connect("and.q", "edge.x")
        .unwrap()
        .connect("edge.q", "latch.s")
        .unwrap()
        .connect("b", "latch.r")
        .unwrap()
        .connect("latch.q", "q")
        .unwrap()
        .build()
        .unwrap();
    let steps: Vec<Vec<SignalValue>> = [
        (false, false),
        (true, true),
        (true, false),
        (false, false),
        (true, true),
        (true, true),
    ]
    .iter()
    .map(|&(a, b)| vec![SignalValue::Bool(a), SignalValue::Bool(b)])
    .collect();
    assert_equivalent(&net, &steps);
}

#[test]
fn counter_timer_pulse_are_equivalent() {
    let net = NetworkBuilder::new()
        .input(Port::boolean("inc"))
        .input(Port::boolean("rst"))
        .output(Port::int("n"))
        .output(Port::boolean("t"))
        .output(Port::boolean("p"))
        .block(
            "cnt",
            BasicOp::Counter {
                min: 0,
                max: 3,
                wrap: true,
            },
        )
        .block("tmr", BasicOp::TimerOn { delay: 0.025 })
        .block(
            "pls",
            BasicOp::PulseGen {
                period: 0.04,
                duty: 0.5,
            },
        )
        .connect("inc", "cnt.inc")
        .unwrap()
        .connect("rst", "cnt.reset")
        .unwrap()
        .connect("inc", "tmr.x")
        .unwrap()
        .connect("cnt.n", "n")
        .unwrap()
        .connect("tmr.q", "t")
        .unwrap()
        .connect("pls.q", "p")
        .unwrap()
        .build()
        .unwrap();
    let steps: Vec<Vec<SignalValue>> = (0..12)
        .map(|k| vec![SignalValue::Bool(k % 3 != 0), SignalValue::Bool(k == 7)])
        .collect();
    assert_equivalent(&net, &steps);
}

#[test]
fn unit_delay_feedback_is_equivalent() {
    // Accumulator: y = z(y) + x.
    let net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block("add", BasicOp::Sum)
        .block(
            "z",
            BasicOp::UnitDelay {
                initial: SignalValue::Real(1.0),
            },
        )
        .connect("x", "add.a")
        .unwrap()
        .connect("z.y", "add.b")
        .unwrap()
        .connect("add.y", "z.x")
        .unwrap()
        .connect("add.y", "y")
        .unwrap()
        .build()
        .unwrap();
    assert_equivalent(&net, &real_steps(&[1.0, 2.0, 3.0, -1.0, 0.5]));
}

#[test]
fn sample_hold_and_select_are_equivalent() {
    let net = NetworkBuilder::new()
        .input(Port::real("x"))
        .input(Port::boolean("h"))
        .output(Port::real("y"))
        .block("sh", BasicOp::SampleHold)
        .block("sel", BasicOp::Select)
        .block("neg", BasicOp::Neg)
        .connect("x", "sh.x")
        .unwrap()
        .connect("h", "sh.hold")
        .unwrap()
        .connect("x", "neg.x")
        .unwrap()
        .connect("h", "sel.sel")
        .unwrap()
        .connect("sh.y", "sel.a")
        .unwrap()
        .connect("neg.y", "sel.b")
        .unwrap()
        .connect("sel.y", "y")
        .unwrap()
        .build()
        .unwrap();
    let steps: Vec<Vec<SignalValue>> = [(1.0, false), (2.0, true), (3.0, false), (4.0, true)]
        .iter()
        .map(|&(x, h)| vec![SignalValue::Real(x), SignalValue::Bool(h)])
        .collect();
    assert_equivalent(&net, &steps);
}

#[test]
fn func_block_expressions_are_equivalent() {
    let net = NetworkBuilder::new()
        .input(Port::real("t"))
        .input(Port::int("n"))
        .output(Port::real("y"))
        .output(Port::boolean("q"))
        .block(
            "f",
            BasicOp::Func {
                inputs: vec![Port::real("t"), Port::int("n")],
                outputs: vec![
                    (
                        Port::real("y"),
                        Expr::var("t").mul(Expr::var("n")).add(Expr::Real(0.5)),
                    ),
                    (
                        Port::boolean("q"),
                        Expr::var("n")
                            .ge(Expr::Int(2))
                            .and(Expr::var("t").lt(Expr::Real(10.0))),
                    ),
                ],
            },
        )
        .connect("t", "f.t")
        .unwrap()
        .connect("n", "f.n")
        .unwrap()
        .connect("f.y", "y")
        .unwrap()
        .connect("f.q", "q")
        .unwrap()
        .build()
        .unwrap();
    let steps: Vec<Vec<SignalValue>> = (0..6)
        .map(|k| vec![SignalValue::Real(k as f64 * 2.5), SignalValue::Int(k - 2)])
        .collect();
    assert_equivalent(&net, &steps);
}

fn traffic_fsm() -> gmdf_comdes::StateMachineBlock {
    FsmBuilder::new()
        .input(Port::boolean("pedestrian"))
        .output(Port::int("lamp"))
        .state("Green", |s| {
            s.entry("lamp", Expr::Int(0)).during("lamp", Expr::Int(0))
        })
        .state("Yellow", |s| s.entry("lamp", Expr::Int(1)))
        .state("Red", |s| s.entry("lamp", Expr::Int(2)))
        .transition(
            "Green",
            "Yellow",
            Expr::var("pedestrian").and(Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.02))),
        )
        .transition(
            "Yellow",
            "Red",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.01)),
        )
        .transition(
            "Red",
            "Green",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.03)),
        )
        .initial("Green")
        .build()
        .unwrap()
}

#[test]
fn state_machine_is_equivalent() {
    let net = NetworkBuilder::new()
        .input(Port::boolean("pedestrian"))
        .output(Port::int("lamp"))
        .state_machine("fsm", traffic_fsm())
        .connect("pedestrian", "fsm.pedestrian")
        .unwrap()
        .connect("fsm.lamp", "lamp")
        .unwrap()
        .build()
        .unwrap();
    let steps: Vec<Vec<SignalValue>> = (0..40)
        .map(|k| vec![SignalValue::Bool(k % 5 == 2)])
        .collect();
    assert_equivalent(&net, &steps);
}

#[test]
fn modal_block_is_equivalent() {
    let mode_net = |k: f64| {
        NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block(
                "i",
                BasicOp::Integrator {
                    gain: k,
                    initial: 0.0,
                    lo: -100.0,
                    hi: 100.0,
                },
            )
            .connect("x", "i.x")
            .unwrap()
            .connect("i.y", "y")
            .unwrap()
            .build()
            .unwrap()
    };
    let modal = ModalBlock {
        data_inputs: vec![Port::real("x")],
        outputs: vec![Port::real("y")],
        modes: vec![
            Mode {
                name: "slow".into(),
                network: mode_net(1.0),
            },
            Mode {
                name: "fast".into(),
                network: mode_net(10.0),
            },
        ],
    };
    let net = NetworkBuilder::new()
        .input(Port::int("m"))
        .input(Port::real("x"))
        .output(Port::real("y"))
        .modal("modal", modal)
        .connect("m", "modal.mode")
        .unwrap()
        .connect("x", "modal.x")
        .unwrap()
        .connect("modal.y", "y")
        .unwrap()
        .build()
        .unwrap();
    // Includes out-of-range selectors that must clamp identically.
    let steps: Vec<Vec<SignalValue>> =
        [(0, 1.0), (0, 1.0), (1, 1.0), (7, 1.0), (-2, 1.0), (1, -0.5)]
            .iter()
            .map(|&(m, x)| vec![SignalValue::Int(m), SignalValue::Real(x)])
            .collect();
    assert_equivalent(&net, &steps);
}

#[test]
fn heterogeneous_fsm_feeding_modal_is_equivalent() {
    // The paper's flagship heterogeneity: a state machine selecting the
    // mode of a dataflow block.
    let fsm = FsmBuilder::new()
        .input(Port::real("err"))
        .output(Port::int("mode"))
        .state("Coarse", |s| s.during("mode", Expr::Int(0)))
        .state("Fine", |s| s.during("mode", Expr::Int(1)))
        .transition(
            "Coarse",
            "Fine",
            Expr::Unary(gmdf_comdes::UnOp::Abs, Box::new(Expr::var("err"))).lt(Expr::Real(1.0)),
        )
        .transition(
            "Fine",
            "Coarse",
            Expr::Unary(gmdf_comdes::UnOp::Abs, Box::new(Expr::var("err"))).ge(Expr::Real(2.0)),
        )
        .build()
        .unwrap();
    let gain_mode = |k: f64| {
        NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k })
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap()
    };
    let modal = ModalBlock {
        data_inputs: vec![Port::real("x")],
        outputs: vec![Port::real("y")],
        modes: vec![
            Mode {
                name: "coarse".into(),
                network: gain_mode(4.0),
            },
            Mode {
                name: "fine".into(),
                network: gain_mode(0.5),
            },
        ],
    };
    let net = NetworkBuilder::new()
        .input(Port::real("err"))
        .output(Port::real("u"))
        .state_machine("sup", fsm)
        .modal("ctl", modal)
        .connect("err", "sup.err")
        .unwrap()
        .connect("sup.mode", "ctl.mode")
        .unwrap()
        .connect("err", "ctl.x")
        .unwrap()
        .connect("ctl.y", "u")
        .unwrap()
        .build()
        .unwrap();
    let steps = real_steps(&[5.0, 3.0, 0.5, 0.2, 2.5, 0.1, 0.9, 4.0]);
    assert_equivalent(&net, &steps);
}

#[test]
fn composite_nesting_is_equivalent() {
    let inner = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block("lp", BasicOp::LowPass { alpha: 0.5 })
        .block("g", BasicOp::Gain { k: 3.0 })
        .connect("x", "lp.x")
        .unwrap()
        .connect("lp.y", "g.x")
        .unwrap()
        .connect("g.y", "y")
        .unwrap()
        .build()
        .unwrap();
    let net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .composite("filter", inner)
        .connect("x", "filter.x")
        .unwrap()
        .connect("filter.y", "y")
        .unwrap()
        .build()
        .unwrap();
    assert_equivalent(&net, &real_steps(&[1.0, 0.0, -2.0, 4.0]));
}

#[test]
fn instrumented_code_same_values_as_clean_code() {
    // Instrumentation must be behaviour-neutral: emits cost cycles but
    // cannot change any computed value.
    let net = NetworkBuilder::new()
        .input(Port::boolean("pedestrian"))
        .output(Port::int("lamp"))
        .state_machine("fsm", traffic_fsm())
        .connect("pedestrian", "fsm.pedestrian")
        .unwrap()
        .connect("fsm.lamp", "lamp")
        .unwrap()
        .build()
        .unwrap();
    let steps: Vec<Vec<SignalValue>> = (0..30)
        .map(|k| vec![SignalValue::Bool(k % 4 == 1)])
        .collect();

    // Clean run (helper uses InstrumentOptions::none()).
    let clean = run_compiled(&net, &steps);

    // Fully instrumented run.
    let mut builder = ActorBuilder::new("A", net.clone());
    builder = builder.input("pedestrian", "sig_p").output("lamp", "sig_l");
    let actor = builder
        .timing(Timing::periodic(PERIOD_NS, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("n0", 48_000_000);
    node.actors.push(actor);
    let system = System::new("inst").with_node(node);
    let image = compile_system(
        &system,
        &CompileOptions {
            instrument: InstrumentOptions::full(),
            faults: vec![],
        },
    )
    .unwrap();
    let nimg = &image.nodes[0];
    let task = &nimg.tasks[0];
    let mut data = vec![0u64; nimg.data_cells as usize];
    for &(a, r) in &nimg.data_init {
        data[a as usize] = r;
    }
    let mut emitted = 0usize;
    let instrumented: Vec<Vec<SignalValue>> = steps
        .iter()
        .map(|ins| {
            for (latch, v) in task.input_latches.iter().zip(ins.iter()) {
                data[latch.to as usize] = v.to_raw();
            }
            let r = vm::run(&task.code, &mut data, vm::DEFAULT_STEP_BUDGET).unwrap();
            emitted += r.emits.len();
            task.publications
                .iter()
                .map(|p| SignalValue::from_raw(p.ty, data[p.latch as usize]))
                .collect()
        })
        .collect();
    assert_eq!(clean, instrumented);
    assert!(emitted > 0, "instrumented run must emit commands");
}

// ---------------------------------------------------------------------------
// Property tests: random dataflow chains and state machines.
// ---------------------------------------------------------------------------

fn arb_real_unary() -> impl Strategy<Value = BasicOp> {
    prop_oneof![
        (-4.0f64..4.0).prop_map(|k| BasicOp::Gain { k }),
        (-4.0f64..4.0).prop_map(|c| BasicOp::Offset { c }),
        Just(BasicOp::Abs),
        Just(BasicOp::Neg),
        (0.1f64..2.0).prop_map(|w| BasicOp::Deadband { width: w }),
        (0.01f64..1.0).prop_map(|alpha| BasicOp::LowPass { alpha }),
        (1u8..6).prop_map(|w| BasicOp::MovingAverage { window: w }),
        ((-4.0f64..0.0), (0.0f64..4.0)).prop_map(|(lo, hi)| BasicOp::Limit { lo, hi }),
        ((-2.0f64..2.0), (-4.0f64..0.0), (0.0f64..4.0)).prop_map(|(g, lo, hi)| {
            BasicOp::Integrator {
                gain: g,
                initial: 0.0,
                lo,
                hi,
            }
        }),
        Just(BasicOp::Derivative),
        ((0.5f64..20.0), (0.5f64..20.0)).prop_map(|(r, f)| BasicOp::RateLimiter {
            max_rise: r,
            max_fall: f
        }),
    ]
}

fn arb_real_binary() -> impl Strategy<Value = BasicOp> {
    prop_oneof![
        Just(BasicOp::Sum),
        Just(BasicOp::Sub),
        Just(BasicOp::Mul),
        Just(BasicOp::Min),
        Just(BasicOp::Max),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random chains of unary/binary real blocks: compiled == interpreted.
    #[test]
    fn random_dataflow_chain_equivalent(
        unaries in proptest::collection::vec(arb_real_unary(), 1..6),
        binaries in proptest::collection::vec(arb_real_binary(), 0..3),
        inputs in proptest::collection::vec(-100.0f64..100.0, 1..12),
    ) {
        let mut b = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"));
        let mut prev = "x".to_owned();
        for (i, op) in unaries.iter().enumerate() {
            let name = format!("u{i}");
            let in_port = op.inputs()[0].name.clone();
            b = b.block(&name, op.clone());
            b = b.connect(&prev, &format!("{name}.{in_port}")).unwrap();
            prev = format!("{name}.y");
        }
        for (i, op) in binaries.iter().enumerate() {
            let name = format!("b{i}");
            b = b.block(&name, op.clone());
            b = b.connect(&prev, &format!("{name}.a")).unwrap();
            b = b.connect("x", &format!("{name}.b")).unwrap();
            prev = format!("{name}.y");
        }
        b = b.connect(&prev, "y").unwrap();
        let net = b.build().unwrap();
        let steps = real_steps(&inputs);
        assert_equivalent(&net, &steps);
    }

    /// Random 2–4 state machines with threshold/time guards.
    #[test]
    fn random_state_machine_equivalent(
        nstates in 2usize..5,
        thresholds in proptest::collection::vec(-5.0f64..5.0, 8),
        dwell in proptest::collection::vec(0.0f64..0.05, 8),
        inputs in proptest::collection::vec(-10.0f64..10.0, 4..24),
    ) {
        let mut fb = FsmBuilder::new()
            .input(Port::real("x"))
            .output(Port::int("s"))
            .output(Port::real("v"));
        for i in 0..nstates {
            fb = fb.state(&format!("S{i}"), |s| {
                s.entry("s", Expr::Int(i as i64))
                 .during("v", Expr::var("x").mul(Expr::Real(i as f64 + 0.5)))
            });
        }
        // Ring transitions with mixed guards + one cross transition.
        for i in 0..nstates {
            let j = (i + 1) % nstates;
            let g = Expr::var("x")
                .gt(Expr::Real(thresholds[i % thresholds.len()]))
                .or(Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell[i % dwell.len()] + 0.005)));
            fb = fb.transition(&format!("S{i}"), &format!("S{j}"), g);
        }
        fb = fb.transition(
            "S0",
            &format!("S{}", nstates - 1),
            Expr::var("x").lt(Expr::Real(thresholds[7])),
        );
        let fsm = fb.build().unwrap();
        let net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::int("s"))
            .output(Port::real("v"))
            .state_machine("m", fsm)
            .connect("x", "m.x").unwrap()
            .connect("m.s", "s").unwrap()
            .connect("m.v", "v").unwrap()
            .build()
            .unwrap();
        let steps = real_steps(&inputs);
        assert_equivalent(&net, &steps);
    }

    /// Random Func expressions over one real and one int input.
    #[test]
    fn random_func_exprs_equivalent(
        a in -10.0f64..10.0,
        b in -20i64..20,
        c in -5.0f64..5.0,
        inputs in proptest::collection::vec((-50.0f64..50.0, -100i64..100), 1..10),
    ) {
        let expr_y = Expr::var("t")
            .mul(Expr::Real(a))
            .add(Expr::ToReal(Box::new(Expr::var("n").mul(Expr::Int(b)))))
            .sub(Expr::Real(c));
        let expr_q = Expr::If(
            Box::new(Expr::var("t").gt(Expr::Real(a))),
            Box::new(Expr::var("n").le(Expr::Int(b))),
            Box::new(Expr::var("t").ne_(Expr::Real(c))),
        );
        let net = NetworkBuilder::new()
            .input(Port::real("t"))
            .input(Port::int("n"))
            .output(Port::real("y"))
            .output(Port::boolean("q"))
            .block("f", BasicOp::Func {
                inputs: vec![Port::real("t"), Port::int("n")],
                outputs: vec![(Port::real("y"), expr_y), (Port::boolean("q"), expr_q)],
            })
            .connect("t", "f.t").unwrap()
            .connect("n", "f.n").unwrap()
            .connect("f.y", "y").unwrap()
            .connect("f.q", "q").unwrap()
            .build()
            .unwrap();
        let steps: Vec<Vec<SignalValue>> = inputs
            .iter()
            .map(|&(t, n)| vec![SignalValue::Real(t), SignalValue::Int(n)])
            .collect();
        assert_equivalent(&net, &steps);
    }
}

#[test]
fn injected_faults_change_behavior() {
    use gmdf_codegen::Fault;
    let net = NetworkBuilder::new()
        .input(Port::boolean("pedestrian"))
        .output(Port::int("lamp"))
        .state_machine("fsm", traffic_fsm())
        .connect("pedestrian", "fsm.pedestrian")
        .unwrap()
        .connect("fsm.lamp", "lamp")
        .unwrap()
        .build()
        .unwrap();
    let steps: Vec<Vec<SignalValue>> = (0..30)
        .map(|k| vec![SignalValue::Bool(k % 4 == 1)])
        .collect();
    let good = run_network(&net, &steps, PERIOD_NS as f64 / 1e9).unwrap();

    let mut builder = ActorBuilder::new("A", net.clone());
    builder = builder.input("pedestrian", "p").output("lamp", "l");
    let actor = builder
        .timing(Timing::periodic(PERIOD_NS, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("n0", 48_000_000);
    node.actors.push(actor);
    let system = System::new("faulty").with_node(node);
    let image = compile_system(
        &system,
        &CompileOptions {
            instrument: InstrumentOptions::none(),
            faults: vec![Fault::SwapTransitionTargets {
                block_path: "A/fsm".into(),
            }],
        },
    )
    .unwrap();
    let nimg = &image.nodes[0];
    let task = &nimg.tasks[0];
    let mut data = vec![0u64; nimg.data_cells as usize];
    for &(a, r) in &nimg.data_init {
        data[a as usize] = r;
    }
    let bad: Vec<Vec<SignalValue>> = steps
        .iter()
        .map(|ins| {
            for (latch, v) in task.input_latches.iter().zip(ins.iter()) {
                data[latch.to as usize] = v.to_raw();
            }
            vm::run(&task.code, &mut data, vm::DEFAULT_STEP_BUDGET).unwrap();
            task.publications
                .iter()
                .map(|p| SignalValue::from_raw(p.ty, data[p.latch as usize]))
                .collect()
        })
        .collect();
    assert_ne!(good, bad, "the swap fault must change observable behavior");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random heterogeneous compositions — an FSM-driven modal block whose
    /// modes hold random stateful dataflow, wrapped in a composite —
    /// compile to bit-identical behaviour.
    #[test]
    fn random_heterogeneous_nesting_equivalent(
        thresholds in proptest::collection::vec(-5.0f64..5.0, 2),
        mode_gains in proptest::collection::vec(-3.0f64..3.0, 2..5),
        alphas in proptest::collection::vec(0.05f64..1.0, 2..5),
        inputs in proptest::collection::vec(-10.0f64..10.0, 4..20),
    ) {
        let n_modes = mode_gains.len().min(alphas.len());
        // Supervisor FSM: toggles between mode indices on thresholds.
        let mut fb = FsmBuilder::new()
            .input(Port::real("x"))
            .output(Port::int("mode"));
        for m in 0..n_modes {
            fb = fb.state(&format!("M{m}"), |s| s.during("mode", Expr::Int(m as i64)));
        }
        for m in 0..n_modes {
            let th = thresholds[m % thresholds.len()];
            fb = fb.transition(
                &format!("M{m}"),
                &format!("M{}", (m + 1) % n_modes),
                Expr::var("x").gt(Expr::Real(th)),
            );
        }
        let fsm = fb.build().unwrap();

        // Modes: gain + low-pass (stateful, so freezing matters).
        let modes: Vec<Mode> = (0..n_modes)
            .map(|m| {
                let net = NetworkBuilder::new()
                    .input(Port::real("x"))
                    .output(Port::real("y"))
                    .block("g", BasicOp::Gain { k: mode_gains[m] })
                    .block("lp", BasicOp::LowPass { alpha: alphas[m] })
                    .connect("x", "g.x").unwrap()
                    .connect("g.y", "lp.x").unwrap()
                    .connect("lp.y", "y").unwrap()
                    .build().unwrap();
                Mode { name: format!("mode{m}"), network: net }
            })
            .collect();
        let modal = ModalBlock {
            data_inputs: vec![Port::real("x")],
            outputs: vec![Port::real("y")],
            modes,
        };

        // Composite wrapping the FSM + modal pair.
        let inner = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .state_machine("sup", fsm)
            .modal("ctl", modal)
            .connect("x", "sup.x").unwrap()
            .connect("sup.mode", "ctl.mode").unwrap()
            .connect("x", "ctl.x").unwrap()
            .connect("ctl.y", "y").unwrap()
            .build().unwrap();
        let net = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .composite("wrap", inner)
            .connect("x", "wrap.x").unwrap()
            .connect("wrap.y", "y").unwrap()
            .build().unwrap();

        let steps = real_steps(&inputs);
        assert_equivalent(&net, &steps);
    }
}
