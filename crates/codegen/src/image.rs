//! Program images: the "executable code" user input of GMDF.
//!
//! A [`ProgramImage`] is what the model transformation produces — per-node
//! task code, data-segment layout, the symbol table JTAG watching needs,
//! and the [`DebugInfo`] event table that lets the debugger map command
//! frames back to model elements.

use crate::frame::CommandKind;
use crate::isa::Instr;
use gmdf_comdes::SignalType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named data cell: address and type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbol {
    /// Data-segment cell index.
    pub addr: u32,
    /// Value interpretation.
    pub ty: SignalType,
}

/// Name → cell mapping for one node.
///
/// Naming scheme (aligned with interpreter event paths):
/// * `board/<label>` — the node's copy of a signal;
/// * `<actor>/in/<port>` / `<actor>/out/<port>` — task I/O latches;
/// * `<actor>/<block…>.<port>` — a block output cell;
/// * `<actor>/<block…>#<cell>` — a block state cell (e.g. `#state`,
///   `#ticks` for state machines — the "critical variables" a JTAG user
///   selects, paper §II).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    map: BTreeMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a symbol.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names — the compiler generates unique names.
    pub fn insert(&mut self, name: String, addr: u32, ty: SignalType) {
        let prev = self.map.insert(name.clone(), Symbol { addr, ty });
        assert!(prev.is_none(), "duplicate symbol `{name}`");
    }

    /// Looks up a symbol by name.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Iterates `(name, symbol)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Symbol)> {
        self.map.iter().map(|(n, s)| (n.as_str(), *s))
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no symbols are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All symbols whose name ends with `suffix` (e.g. `#state`).
    pub fn with_suffix<'a>(&'a self, suffix: &'a str) -> impl Iterator<Item = (&'a str, Symbol)> {
        self.iter().filter(move |(n, _)| n.ends_with(suffix))
    }
}

/// Static description of one emit event id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSpec {
    /// Command category.
    pub kind: CommandKind,
    /// Model element path the event concerns (interpreter-aligned,
    /// e.g. `Heater/ctl` for a state machine).
    pub path: String,
    /// For `StateEnter`: state left; for `ModeSwitch`: mode left (if
    /// statically known).
    pub from: Option<String>,
    /// For `StateEnter` / `ModeSwitch`: state or mode entered.
    pub to: Option<String>,
    /// For `SignalWrite`: the signal label.
    pub label: Option<String>,
    /// Type of the frame's value argument, if it carries one.
    pub value_type: Option<SignalType>,
}

impl EventSpec {
    /// A bare event with just a kind and path.
    pub fn new(kind: CommandKind, path: &str) -> Self {
        EventSpec {
            kind,
            path: path.to_owned(),
            from: None,
            to: None,
            label: None,
            value_type: None,
        }
    }
}

/// The event table plus watch suggestions — everything the debugger needs
/// to interpret runtime commands.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DebugInfo {
    /// Event specs indexed by emit event id.
    pub events: Vec<EventSpec>,
    /// `(node, symbol)` pairs worth watching over JTAG (state cells,
    /// mode cells, output latches).
    pub watch_suggestions: Vec<(String, String)>,
}

impl DebugInfo {
    /// Registers an event, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` events are registered.
    pub fn register(&mut self, spec: EventSpec) -> u16 {
        let id = u16::try_from(self.events.len()).expect("event table overflow");
        self.events.push(spec);
        id
    }

    /// Looks up an event spec.
    pub fn event(&self, id: u16) -> Option<&EventSpec> {
        self.events.get(id as usize)
    }
}

/// Kernel latch descriptor: copy `from` cell into `to` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Latch {
    /// Source cell.
    pub from: u32,
    /// Destination cell.
    pub to: u32,
}

/// One output publication performed by the kernel at the deadline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Publication {
    /// Output latch cell written by the task code.
    pub latch: u32,
    /// The node's board cell for the label.
    pub board: u32,
    /// Signal label (broadcast to other nodes).
    pub label: String,
    /// Value type.
    pub ty: SignalType,
}

/// Compiled code and timing for one actor task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskImage {
    /// Actor name.
    pub actor: String,
    /// Step code (runs once per activation, ends with `Halt`).
    pub code: Vec<Instr>,
    /// Release period (ns).
    pub period_ns: u64,
    /// First-release offset (ns).
    pub offset_ns: u64,
    /// Relative deadline (ns).
    pub deadline_ns: u64,
    /// Fixed priority (lower = higher).
    pub priority: u8,
    /// Input latches the kernel performs at release (board → latch cell).
    pub input_latches: Vec<Latch>,
    /// Output publications the kernel performs at the deadline.
    pub publications: Vec<Publication>,
    /// Event id emitted at task start (active instrumentation), if any.
    pub start_event: Option<u16>,
    /// Event id emitted at task end, if any.
    pub end_event: Option<u16>,
    /// Longest-path activation cost in cycles, priced once by the
    /// compiler so analysis never re-walks the instruction stream.
    /// `0` means unpriced (hand-built or pre-pricing images);
    /// [`TaskImage::wcet_cycles`] then computes it on demand.
    #[serde(default)]
    pub wcet: u64,
}

impl TaskImage {
    /// Worst-case straight-line cycle bound: sum of all instruction costs.
    /// A loose WCET (branches make real paths shorter).
    pub fn cycle_bound(&self) -> u64 {
        self.code.iter().map(Instr::cycles).sum()
    }

    /// Worst-case cycles of a single activation: the longest-path cost
    /// through the step's control flow.
    ///
    /// The code generator emits branch-forward code only (state dispatch
    /// and transition guards jump strictly ahead; iteration lives in the
    /// periodic activation model, not in the step body), so the longest
    /// path is a single right-to-left dynamic-programming sweep. Should
    /// an image ever contain a backward jump, the sweep is abandoned and
    /// the straight-line [`TaskImage::cycle_bound`] is returned instead —
    /// looser, but still an upper bound. The result is clamped to ≥ 1
    /// cycle, matching the kernel's minimum charge per activation.
    ///
    /// Compiled images carry the result in [`TaskImage::wcet`], so this
    /// is a field read on the hot (session-registration) path; the sweep
    /// below only runs for unpriced images.
    pub fn wcet_cycles(&self) -> u64 {
        if self.wcet != 0 {
            return self.wcet;
        }
        let n = self.code.len();
        let mut has_jump = false;
        // Straight-line cost (the prefix up to the first Halt), fused
        // into the jump prescan so the common pure-dataflow task is
        // priced in exactly one pass with no scratch table.
        let mut straight: u64 = 0;
        let mut live = true;
        for (i, instr) in self.code.iter().enumerate() {
            if live {
                straight = straight.saturating_add(instr.cycles());
                if matches!(instr, Instr::Halt) {
                    live = false;
                }
            }
            let target = match instr {
                Instr::Jmp(t) | Instr::JmpIfZero(t) | Instr::JmpIfNot(t) => *t as usize,
                _ => continue,
            };
            if target <= i {
                return self.cycle_bound().max(1);
            }
            has_jump = true;
        }
        if !has_jump {
            return straight.max(1);
        }
        // best[i] = worst-case cycles from pc = i to Halt / end of code.
        let mut best = vec![0u64; n + 1];
        for i in (0..n).rev() {
            let c = self.code[i].cycles();
            best[i] = c.saturating_add(match self.code[i] {
                Instr::Halt => 0,
                Instr::Jmp(t) => best[(t as usize).min(n)],
                Instr::JmpIfZero(t) | Instr::JmpIfNot(t) => {
                    best[i + 1].max(best[(t as usize).min(n)])
                }
                _ => best[i + 1],
            });
        }
        best.first().copied().unwrap_or(0).max(1)
    }
}

/// Everything deployed to one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeImage {
    /// Node name.
    pub node: String,
    /// CPU clock (Hz).
    pub cpu_hz: u64,
    /// Data segment size in cells.
    pub data_cells: u32,
    /// Nonzero initial cell values (`(addr, raw)`).
    pub data_init: Vec<(u32, u64)>,
    /// Tasks, in actor declaration order.
    pub tasks: Vec<TaskImage>,
    /// The node's copy of each signal label: label → board cell.
    pub board: BTreeMap<String, Symbol>,
    /// Labels this node's tasks consume from remote producers.
    pub subscriptions: Vec<String>,
    /// Symbol table (JTAG watch addresses).
    pub symbols: SymbolTable,
}

/// The full model-transformation output for a system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramImage {
    /// System name.
    pub system: String,
    /// Per-node images.
    pub nodes: Vec<NodeImage>,
    /// Event table shared by all nodes (event ids are globally unique).
    pub debug: DebugInfo,
}

impl ProgramImage {
    /// Finds a node image by name.
    pub fn node(&self, name: &str) -> Option<&NodeImage> {
        self.nodes.iter().find(|n| n.node == name)
    }

    /// Total instruction count across all tasks (code-size metric).
    pub fn total_instructions(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.tasks.iter())
            .map(|t| t.code.len())
            .sum()
    }

    /// Count of `Emit` instructions (instrumentation footprint).
    pub fn emit_count(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.tasks.iter())
            .flat_map(|t| t.code.iter())
            .filter(|i| matches!(i, Instr::Emit { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_table_insert_and_query() {
        let mut t = SymbolTable::new();
        t.insert("Heater/ctl#state".into(), 4, SignalType::Int);
        t.insert("board/temp".into(), 0, SignalType::Real);
        assert_eq!(t.get("board/temp").unwrap().addr, 0);
        assert!(t.get("ghost").is_none());
        assert_eq!(t.len(), 2);
        let states: Vec<_> = t.with_suffix("#state").collect();
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].0, "Heater/ctl#state");
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_symbol_panics() {
        let mut t = SymbolTable::new();
        t.insert("x".into(), 0, SignalType::Int);
        t.insert("x".into(), 1, SignalType::Int);
    }

    #[test]
    fn debug_info_registration() {
        let mut d = DebugInfo::default();
        let id0 = d.register(EventSpec::new(CommandKind::TaskStart, "A"));
        let id1 = d.register(EventSpec::new(CommandKind::StateEnter, "A/fsm"));
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(d.event(1).unwrap().kind, CommandKind::StateEnter);
        assert!(d.event(9).is_none());
    }

    #[test]
    fn cycle_bound_sums_costs() {
        let t = TaskImage {
            actor: "A".into(),
            code: vec![
                Instr::PushF(1.0),
                Instr::PushF(2.0),
                Instr::AddF,
                Instr::Halt,
            ],
            period_ns: 1,
            offset_ns: 0,
            deadline_ns: 1,
            priority: 0,
            input_latches: vec![],
            publications: vec![],
            start_event: None,
            end_event: None,
            wcet: 0,
        };
        assert_eq!(t.cycle_bound(), 1 + 1 + 4 + 1);
    }

    fn task_with(code: Vec<Instr>) -> TaskImage {
        TaskImage {
            actor: "A".into(),
            code,
            period_ns: 1_000_000,
            offset_ns: 0,
            deadline_ns: 1_000_000,
            priority: 0,
            input_latches: vec![],
            publications: vec![],
            start_event: None,
            end_event: None,
            wcet: 0,
        }
    }

    #[test]
    fn wcet_takes_longest_branch() {
        // 0: PushF       (1)
        // 1: JmpIfZero 4 (2) ── taken: 4,5 costs 1+1; fallthrough: 2,3 costs 16+1
        // 2: DivF        (16)
        // 3: Halt        (1)
        // 4: PushF       (1)
        // 5: Halt        (1)
        let t = task_with(vec![
            Instr::PushF(0.0),
            Instr::JmpIfZero(4),
            Instr::DivF,
            Instr::Halt,
            Instr::PushF(1.0),
            Instr::Halt,
        ]);
        assert_eq!(t.wcet_cycles(), 1 + 2 + 16 + 1);
        // Tighter than the straight-line bound, never below either path.
        assert!(t.wcet_cycles() < t.cycle_bound());
        let short_path = 1 + 2 + 1 + 1;
        assert!(t.wcet_cycles() >= short_path);
    }

    #[test]
    fn wcet_falls_back_on_backward_jumps() {
        let t = task_with(vec![Instr::PushF(0.0), Instr::Jmp(0)]);
        assert_eq!(t.wcet_cycles(), t.cycle_bound());
        // Empty code still charges the kernel's 1-cycle minimum.
        assert_eq!(task_with(vec![]).wcet_cycles(), 1);
    }
}
