//! The target instruction set: a 64-bit stack machine.
//!
//! Generated code runs on the embedded node simulator's CPU
//! ([`gmdf-target`]). Values are raw 64-bit cells (`u64`); floating ops
//! interpret bits as IEEE-754 `f64`, integer ops as two's-complement
//! `i64`, booleans as `0`/`1`. Each instruction carries a fixed cycle
//! cost ([`Instr::cycles`]) so execution consumes simulated CPU time —
//! this is what makes the active command interface's `EMIT` overhead
//! measurable, the quantity JTAG "eliminates" (paper §II).
//!
//! [`gmdf-target`]: ../../gmdf_target/index.html

use serde::{Deserialize, Serialize};

/// Comparison selector for [`Instr::CmpF`] / [`Instr::CmpI`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpKind {
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
}

impl CmpKind {
    /// Applies the comparison to two ordered operands.
    pub fn apply<T: PartialOrd + PartialEq>(self, a: T, b: T) -> bool {
        match self {
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
        }
    }
}

/// One instruction of the target ISA.
///
/// Jump targets are absolute indices into the owning task's code vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Push an `f64` literal (as raw bits).
    PushF(f64),
    /// Push an `i64` literal.
    PushI(i64),
    /// Push the raw content of data cell `addr`.
    Load(u32),
    /// Pop into data cell `addr`.
    Store(u32),
    /// Float add.
    AddF,
    /// Float subtract.
    SubF,
    /// Float multiply.
    MulF,
    /// Float divide (IEEE semantics).
    DivF,
    /// Float minimum (`f64::min`).
    MinF,
    /// Float maximum (`f64::max`).
    MaxF,
    /// Float negate.
    NegF,
    /// Float absolute value.
    AbsF,
    /// Integer add (wrapping).
    AddI,
    /// Integer subtract (wrapping).
    SubI,
    /// Integer multiply (wrapping).
    MulI,
    /// Integer divide (wrapping; 0 on division by zero).
    DivI,
    /// Integer remainder (wrapping; 0 on division by zero).
    RemI,
    /// Integer minimum.
    MinI,
    /// Integer maximum.
    MaxI,
    /// Integer negate (wrapping).
    NegI,
    /// Integer absolute value (wrapping).
    AbsI,
    /// Float comparison; pushes bool.
    CmpF(CmpKind),
    /// Integer comparison; pushes bool.
    CmpI(CmpKind),
    /// Boolean and (operands must be 0/1).
    And,
    /// Boolean or.
    Or,
    /// Boolean exclusive-or.
    Xor,
    /// Boolean negation.
    Not,
    /// Convert `i64` → `f64`.
    I2F,
    /// Convert `f64` → `i64` (truncate toward zero, saturating, NaN → 0).
    F2I,
    /// Unconditional jump.
    Jmp(u32),
    /// Pop; jump if zero.
    JmpIfZero(u32),
    /// Pop; jump if nonzero.
    JmpIfNot(u32),
    /// Emit a debug command frame: pops `argc` raw values (first-pushed
    /// first in the frame) and hands `(event, args)` to the emit sink —
    /// the *active command interface* (paper §II). This is the
    /// instrumentation overhead instruction.
    Emit {
        /// Event id resolved through [`DebugInfo`](crate::DebugInfo).
        event: u16,
        /// Number of argument values popped.
        argc: u8,
    },
    /// End of task step.
    Halt,
}

impl Instr {
    /// Fixed execution cost in CPU cycles.
    ///
    /// The model is deliberately simple (no pipeline effects): costs are
    /// chosen to resemble a small ARM7-class MCU with software floating
    /// point, the AT91SAM7 family the paper's toolchain notes target.
    pub fn cycles(&self) -> u64 {
        match self {
            Instr::PushF(_) | Instr::PushI(_) => 1,
            Instr::Load(_) | Instr::Store(_) => 2,
            Instr::AddF | Instr::SubF | Instr::MinF | Instr::MaxF => 4,
            Instr::MulF => 8,
            Instr::DivF => 16,
            Instr::NegF | Instr::AbsF => 2,
            Instr::AddI | Instr::SubI | Instr::NegI | Instr::AbsI => 1,
            Instr::MulI => 4,
            Instr::DivI | Instr::RemI => 8,
            Instr::MinI | Instr::MaxI => 2,
            Instr::CmpF(_) => 4,
            Instr::CmpI(_) => 2,
            Instr::And | Instr::Or | Instr::Xor | Instr::Not => 1,
            Instr::I2F | Instr::F2I => 4,
            Instr::Jmp(_) | Instr::JmpIfZero(_) | Instr::JmpIfNot(_) => 2,
            Instr::Emit { argc, .. } => 24 + 8 * *argc as u64,
            Instr::Halt => 1,
        }
    }
}

/// Raw-cell helpers shared by the compiler and the VM.
pub mod raw {
    /// Encodes an `f64` into a raw cell.
    pub fn from_f(v: f64) -> u64 {
        v.to_bits()
    }

    /// Decodes a raw cell as `f64`.
    pub fn to_f(raw: u64) -> f64 {
        f64::from_bits(raw)
    }

    /// Encodes an `i64` into a raw cell.
    pub fn from_i(v: i64) -> u64 {
        v as u64
    }

    /// Decodes a raw cell as `i64`.
    pub fn to_i(raw: u64) -> i64 {
        raw as i64
    }

    /// Encodes a bool into a raw cell.
    pub fn from_b(v: bool) -> u64 {
        v as u64
    }

    /// Decodes a raw cell as bool (nonzero = true).
    pub fn to_b(raw: u64) -> bool {
        raw != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_costs_ordered_sensibly() {
        assert!(Instr::DivF.cycles() > Instr::MulF.cycles());
        assert!(Instr::MulF.cycles() > Instr::AddF.cycles());
        assert!(Instr::AddI.cycles() <= Instr::AddF.cycles());
        // Emit is the expensive instrumentation op.
        assert!(Instr::Emit { event: 0, argc: 0 }.cycles() > Instr::DivF.cycles());
        assert_eq!(Instr::Emit { event: 0, argc: 2 }.cycles(), 24 + 16);
    }

    #[test]
    fn cmp_kind_apply() {
        assert!(CmpKind::Lt.apply(1, 2));
        assert!(!CmpKind::Lt.apply(2, 2));
        assert!(CmpKind::Le.apply(2, 2));
        assert!(CmpKind::Ne.apply(1.0, 2.0));
        assert!(CmpKind::Eq.apply(2.0, 2.0));
        assert!(CmpKind::Ge.apply(3, 2));
    }

    #[test]
    fn raw_round_trips() {
        assert_eq!(raw::to_f(raw::from_f(-1.5)), -1.5);
        assert_eq!(raw::to_i(raw::from_i(i64::MIN)), i64::MIN);
        assert!(raw::to_b(raw::from_b(true)));
        assert!(!raw::to_b(raw::from_b(false)));
    }

    #[test]
    fn instr_serde_round_trip() {
        let prog = vec![
            Instr::PushF(1.5),
            Instr::CmpF(CmpKind::Ge),
            Instr::Emit { event: 7, argc: 1 },
            Instr::Jmp(3),
        ];
        let json = serde_json::to_string(&prog).unwrap();
        let back: Vec<Instr> = serde_json::from_str(&json).unwrap();
        assert_eq!(prog, back);
    }
}
