//! Fault injection: deliberately miscompiling correct models.
//!
//! The paper distinguishes *design errors* (wrong model) from
//! *implementation errors* ("errors that happen during model
//! transformation", §II) and argues a model debugger can expose both.
//! Reproducing the second class requires a code generator that can be
//! *made* to produce wrong code from a right model — that is what these
//! faults do. Each fault leaves the input model untouched and corrupts
//! only the generated image, so the reference interpreter still defines
//! the expected behaviour and the debugger's expectation monitors can
//! catch the divergence.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An injected model-transformation bug.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Swap the targets of the first two transitions of the state machine
    /// at `block_path` (e.g. `"Heater/ctl"`) — the classic
    /// copy-paste/indexing slip in a generator's transition table.
    SwapTransitionTargets {
        /// Path of the state-machine block (`actor/…/block`).
        block_path: String,
    },
    /// Negate the guard of transition `transition` (declaration index) of
    /// the machine at `block_path` — an inverted branch condition.
    NegateGuard {
        /// Path of the state-machine block.
        block_path: String,
        /// Declaration index of the transition within the machine.
        transition: usize,
    },
    /// Omit all entry actions — outputs keep stale values after
    /// transitions.
    SkipEntryActions {
        /// Path of the state-machine block.
        block_path: String,
    },
    /// Scale the constant of the `Gain` block at `block_path` by `factor`
    /// — a mistranslated parameter.
    GainError {
        /// Path of the gain block.
        block_path: String,
        /// Multiplier applied to the generated constant.
        factor: f64,
    },
    /// Strip every `Emit` — a generator that silently forgot the command
    /// interface; the debugger stops receiving commands at all.
    DropEmits,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::SwapTransitionTargets { block_path } => {
                write!(f, "swap transition targets in `{block_path}`")
            }
            Fault::NegateGuard {
                block_path,
                transition,
            } => {
                write!(
                    f,
                    "negate guard of transition {transition} in `{block_path}`"
                )
            }
            Fault::SkipEntryActions { block_path } => {
                write!(f, "skip entry actions in `{block_path}`")
            }
            Fault::GainError { block_path, factor } => {
                write!(f, "scale gain `{block_path}` by {factor}")
            }
            Fault::DropEmits => write!(f, "drop all emit instructions"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_fault() {
        assert_eq!(
            Fault::SwapTransitionTargets {
                block_path: "A/fsm".into()
            }
            .to_string(),
            "swap transition targets in `A/fsm`"
        );
        assert_eq!(Fault::DropEmits.to_string(), "drop all emit instructions");
    }

    #[test]
    fn serde_round_trip() {
        let f = Fault::GainError {
            block_path: "A/g".into(),
            factor: 2.0,
        };
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<Fault>(&json).unwrap(), f);
    }
}
