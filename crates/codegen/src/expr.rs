//! Compilation of COMDES expressions to stack code.
//!
//! The generated instruction sequences mirror
//! [`Expr::eval`](gmdf_comdes::Expr::eval) operation-for-operation
//! (operand order, widening points, truncation semantics), so compiled
//! results are bit-identical to interpreted ones — the codegen-equivalence
//! property the test suite enforces.

use crate::isa::{CmpKind, Instr};
use gmdf_comdes::{BinOp, ComdesError, Expr, SignalType, UnOp};
use std::collections::BTreeMap;

/// Where a variable's value comes from at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarSource {
    /// A data cell of the given type.
    Cell(u32, SignalType),
    /// A compile-time float constant.
    ConstF(f64),
    /// A compile-time integer constant.
    ConstI(i64),
    /// A compile-time boolean constant.
    ConstB(bool),
}

impl VarSource {
    /// The type a read of this source produces.
    pub fn signal_type(self) -> SignalType {
        match self {
            VarSource::Cell(_, ty) => ty,
            VarSource::ConstF(_) => SignalType::Real,
            VarSource::ConstI(_) => SignalType::Int,
            VarSource::ConstB(_) => SignalType::Bool,
        }
    }

    /// Emits code pushing the source's value.
    pub fn push(self, code: &mut Vec<Instr>) {
        match self {
            VarSource::Cell(addr, _) => code.push(Instr::Load(addr)),
            VarSource::ConstF(v) => code.push(Instr::PushF(v)),
            VarSource::ConstI(v) => code.push(Instr::PushI(v)),
            VarSource::ConstB(v) => code.push(Instr::PushI(v as i64)),
        }
    }
}

fn cmp_kind(op: BinOp) -> CmpKind {
    match op {
        BinOp::Lt => CmpKind::Lt,
        BinOp::Le => CmpKind::Le,
        BinOp::Gt => CmpKind::Gt,
        BinOp::Ge => CmpKind::Ge,
        BinOp::Eq => CmpKind::Eq,
        BinOp::Ne => CmpKind::Ne,
        _ => unreachable!("not a comparison"),
    }
}

/// Compiles `expr` into `code`, leaving the value on the stack; returns
/// the value's type.
///
/// `env` maps variable names to their runtime sources.
///
/// # Errors
///
/// Returns [`ComdesError::TypeError`] for unbound variables or operator
/// misuse — the same conditions [`Expr::infer_type`](Expr::infer_type)
/// rejects.
pub fn compile_expr(
    expr: &Expr,
    env: &BTreeMap<String, VarSource>,
    code: &mut Vec<Instr>,
) -> Result<SignalType, ComdesError> {
    use SignalType::*;
    match expr {
        Expr::Bool(b) => {
            code.push(Instr::PushI(*b as i64));
            Ok(Bool)
        }
        Expr::Int(i) => {
            code.push(Instr::PushI(*i));
            Ok(Int)
        }
        Expr::Real(r) => {
            code.push(Instr::PushF(*r));
            Ok(Real)
        }
        Expr::Var(n) => {
            let src = env
                .get(n)
                .copied()
                .ok_or_else(|| ComdesError::TypeError(format!("unbound variable `{n}`")))?;
            src.push(code);
            Ok(src.signal_type())
        }
        Expr::Unary(op, e) => {
            let t = compile_expr(e, env, code)?;
            match (op, t) {
                (UnOp::Neg, Int) => code.push(Instr::NegI),
                (UnOp::Neg, Real) => code.push(Instr::NegF),
                (UnOp::Abs, Int) => code.push(Instr::AbsI),
                (UnOp::Abs, Real) => code.push(Instr::AbsF),
                (UnOp::Not, Bool) => code.push(Instr::Not),
                _ => {
                    return Err(ComdesError::TypeError(format!(
                        "{op:?} cannot apply to {t}"
                    )))
                }
            }
            Ok(if matches!(op, UnOp::Not) { Bool } else { t })
        }
        Expr::Binary(op, a, b) => {
            if op.is_logical() {
                let ta = compile_expr(a, env, code)?;
                let tb = compile_expr(b, env, code)?;
                if ta != Bool || tb != Bool {
                    return Err(ComdesError::TypeError(format!(
                        "{op:?} needs bool operands"
                    )));
                }
                code.push(match op {
                    BinOp::And => Instr::And,
                    BinOp::Or => Instr::Or,
                    BinOp::Xor => Instr::Xor,
                    _ => unreachable!(),
                });
                return Ok(Bool);
            }
            if op.is_comparison() {
                // Compile left; we may need to widen it *before* the right
                // operand lands on the stack.
                let mut probe = Vec::new();
                let ta = compile_expr(a, env, &mut probe)?;
                let tb_peek = peek_type(b, env)?;
                code.extend(probe);
                match (ta, tb_peek) {
                    (Bool, Bool) => {
                        if !matches!(op, BinOp::Eq | BinOp::Ne) {
                            return Err(ComdesError::TypeError("cannot order bools".into()));
                        }
                        compile_expr(b, env, code)?;
                        code.push(Instr::CmpI(cmp_kind(*op)));
                    }
                    (Int, Int) => {
                        compile_expr(b, env, code)?;
                        code.push(Instr::CmpI(cmp_kind(*op)));
                    }
                    (Int, Real) | (Real, Int) | (Real, Real) => {
                        if ta == Int {
                            code.push(Instr::I2F);
                        }
                        let tb = compile_expr(b, env, code)?;
                        if tb == Int {
                            code.push(Instr::I2F);
                        }
                        code.push(Instr::CmpF(cmp_kind(*op)));
                    }
                    _ => {
                        return Err(ComdesError::TypeError(format!(
                            "{op:?} cannot compare {ta} with {tb_peek}"
                        )))
                    }
                }
                return Ok(Bool);
            }
            // Arithmetic.
            let mut probe = Vec::new();
            let ta = compile_expr(a, env, &mut probe)?;
            let tb_peek = peek_type(b, env)?;
            code.extend(probe);
            match (ta, tb_peek) {
                (Int, Int) => {
                    compile_expr(b, env, code)?;
                    code.push(match op {
                        BinOp::Add => Instr::AddI,
                        BinOp::Sub => Instr::SubI,
                        BinOp::Mul => Instr::MulI,
                        BinOp::Div => Instr::DivI,
                        BinOp::Rem => Instr::RemI,
                        BinOp::Min => Instr::MinI,
                        BinOp::Max => Instr::MaxI,
                        _ => unreachable!(),
                    });
                    Ok(Int)
                }
                (Int, Real) | (Real, Int) | (Real, Real) => {
                    if matches!(op, BinOp::Rem) {
                        return Err(ComdesError::TypeError("% needs int operands".into()));
                    }
                    if ta == Int {
                        code.push(Instr::I2F);
                    }
                    let tb = compile_expr(b, env, code)?;
                    if tb == Int {
                        code.push(Instr::I2F);
                    }
                    code.push(match op {
                        BinOp::Add => Instr::AddF,
                        BinOp::Sub => Instr::SubF,
                        BinOp::Mul => Instr::MulF,
                        BinOp::Div => Instr::DivF,
                        BinOp::Min => Instr::MinF,
                        BinOp::Max => Instr::MaxF,
                        _ => unreachable!(),
                    });
                    Ok(Real)
                }
                _ => Err(ComdesError::TypeError(format!(
                    "{op:?} cannot apply to {ta} and {tb_peek}"
                ))),
            }
        }
        Expr::If(c, t, e) => {
            let tc = compile_expr(c, env, code)?;
            if tc != Bool {
                return Err(ComdesError::TypeError("if condition must be bool".into()));
            }
            let tt_peek = peek_type(t, env)?;
            let te_peek = peek_type(e, env)?;
            let unified = match (tt_peek, te_peek) {
                _ if tt_peek == te_peek => tt_peek,
                (Int, Real) | (Real, Int) => Real,
                _ => {
                    return Err(ComdesError::TypeError(format!(
                        "if arms have incompatible types {tt_peek} and {te_peek}"
                    )))
                }
            };
            let jz_at = code.len();
            code.push(Instr::JmpIfZero(0)); // patched below
            let tt = compile_expr(t, env, code)?;
            if tt == Int && unified == Real {
                code.push(Instr::I2F);
            }
            let jend_at = code.len();
            code.push(Instr::Jmp(0)); // patched below
            let else_target = code.len() as u32;
            let te = compile_expr(e, env, code)?;
            if te == Int && unified == Real {
                code.push(Instr::I2F);
            }
            let end_target = code.len() as u32;
            code[jz_at] = Instr::JmpIfZero(else_target);
            code[jend_at] = Instr::Jmp(end_target);
            Ok(unified)
        }
        Expr::ToReal(e) => {
            let t = compile_expr(e, env, code)?;
            match t {
                Bool | Int => code.push(Instr::I2F),
                Real => {}
            }
            Ok(Real)
        }
        Expr::ToInt(e) => {
            let t = compile_expr(e, env, code)?;
            match t {
                Real => code.push(Instr::F2I),
                Bool | Int => {}
            }
            Ok(Int)
        }
    }
}

/// Type of `expr` under `env` without emitting code.
fn peek_type(expr: &Expr, env: &BTreeMap<String, VarSource>) -> Result<SignalType, ComdesError> {
    let tenv: BTreeMap<String, SignalType> = env
        .iter()
        .map(|(n, s)| (n.clone(), s.signal_type()))
        .collect();
    expr.infer_type(&tenv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::raw;
    use crate::vm::{run, DEFAULT_STEP_BUDGET};
    use gmdf_comdes::SignalValue;

    /// Compiles `expr` with vars in cells, runs the VM, returns the value
    /// typed as the compiler inferred it.
    fn exec(expr: &Expr, vars: &[(&str, SignalValue)]) -> SignalValue {
        let mut env = BTreeMap::new();
        let mut data = Vec::new();
        for (i, (name, v)) in vars.iter().enumerate() {
            env.insert(name.to_string(), VarSource::Cell(i as u32, v.signal_type()));
            data.push(v.to_raw());
        }
        let out_addr = data.len() as u32;
        data.push(0);
        let mut code = Vec::new();
        let ty = compile_expr(expr, &env, &mut code).expect("compiles");
        code.push(Instr::Store(out_addr));
        code.push(Instr::Halt);
        run(&code, &mut data, DEFAULT_STEP_BUDGET).expect("runs");
        SignalValue::from_raw(ty, data[out_addr as usize])
    }

    /// Interpreter result for the same expression and bindings.
    fn interp(expr: &Expr, vars: &[(&str, SignalValue)]) -> SignalValue {
        let env: BTreeMap<String, SignalValue> =
            vars.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        expr.eval(&env).expect("evaluates")
    }

    fn assert_same(expr: &Expr, vars: &[(&str, SignalValue)]) {
        let a = exec(expr, vars);
        let b = interp(expr, vars);
        // Bit-exact comparison (NaN-safe).
        assert_eq!(
            a.to_raw(),
            b.to_raw(),
            "expr {expr} gave VM {a} vs interp {b}"
        );
        assert_eq!(a.signal_type(), b.signal_type());
    }

    #[test]
    fn literals_and_vars() {
        assert_same(&Expr::Int(42), &[]);
        assert_same(&Expr::Real(-1.5), &[]);
        assert_same(&Expr::Bool(true), &[]);
        assert_same(&Expr::var("x"), &[("x", SignalValue::Real(2.5))]);
    }

    #[test]
    fn arithmetic_matches_interpreter() {
        let x = ("x", SignalValue::Real(3.5));
        let n = ("n", SignalValue::Int(7));
        assert_same(&Expr::var("x").add(Expr::var("n")), &[x, n]);
        assert_same(&Expr::var("n").mul(Expr::var("n")), &[n]);
        assert_same(&Expr::var("n").div(Expr::Int(0)), &[n]);
        assert_same(
            &Expr::Binary(BinOp::Rem, Box::new(Expr::var("n")), Box::new(Expr::Int(3))),
            &[n],
        );
        assert_same(&Expr::var("x").sub(Expr::Real(10.0)).neg(), &[x]);
    }

    #[test]
    fn widening_insertion_points() {
        // int + real and real + int must both widen correctly.
        let vars = [("i", SignalValue::Int(2)), ("r", SignalValue::Real(0.5))];
        assert_same(&Expr::var("i").add(Expr::var("r")), &vars);
        assert_same(&Expr::var("r").add(Expr::var("i")), &vars);
        assert_same(&Expr::var("i").lt(Expr::var("r")), &vars);
        assert_same(&Expr::var("r").ge(Expr::var("i")), &vars);
    }

    #[test]
    fn comparisons_and_logic() {
        let vars = [
            ("a", SignalValue::Bool(true)),
            ("b", SignalValue::Bool(false)),
        ];
        assert_same(&Expr::var("a").and(Expr::var("b")), &vars);
        assert_same(&Expr::var("a").or(Expr::var("b")), &vars);
        assert_same(&Expr::var("a").eq_(Expr::var("b")), &vars);
        assert_same(&Expr::var("a").ne_(Expr::var("b")), &vars);
        assert_same(&Expr::var("a").not(), &vars);
        assert_same(
            &Expr::Int(3)
                .le(Expr::Int(3))
                .and(Expr::Real(1.0).gt(Expr::Real(0.5))),
            &[],
        );
    }

    #[test]
    fn if_expression_and_unification() {
        let vars = [("c", SignalValue::Bool(true))];
        let e = Expr::If(
            Box::new(Expr::var("c")),
            Box::new(Expr::Int(1)),
            Box::new(Expr::Real(2.5)),
        );
        assert_same(&e, &vars);
        let vars = [("c", SignalValue::Bool(false))];
        assert_same(&e, &vars);
    }

    #[test]
    fn conversions_match() {
        assert_same(&Expr::ToReal(Box::new(Expr::Bool(true))), &[]);
        assert_same(&Expr::ToReal(Box::new(Expr::Int(-3))), &[]);
        assert_same(&Expr::ToInt(Box::new(Expr::Real(-2.7))), &[]);
        assert_same(&Expr::ToInt(Box::new(Expr::Real(f64::NAN))), &[]);
        assert_same(&Expr::ToInt(Box::new(Expr::Real(1e300))), &[]);
        assert_same(&Expr::ToInt(Box::new(Expr::Bool(true))), &[]);
    }

    #[test]
    fn int_overflow_wraps_like_interpreter() {
        assert_same(&Expr::Int(i64::MAX).add(Expr::Int(1)), &[]);
        assert_same(&Expr::Int(i64::MIN).neg(), &[]);
        assert_same(&Expr::Unary(UnOp::Abs, Box::new(Expr::Int(i64::MIN))), &[]);
    }

    #[test]
    fn min_max_compile() {
        assert_same(
            &Expr::Binary(
                BinOp::Min,
                Box::new(Expr::Real(1.0)),
                Box::new(Expr::Real(2.0)),
            ),
            &[],
        );
        assert_same(
            &Expr::Binary(BinOp::Max, Box::new(Expr::Int(5)), Box::new(Expr::Int(3))),
            &[],
        );
    }

    #[test]
    fn unbound_variable_rejected() {
        let mut code = Vec::new();
        let err = compile_expr(&Expr::var("ghost"), &BTreeMap::new(), &mut code);
        assert!(err.is_err());
    }

    #[test]
    fn constant_sources_push_directly() {
        let mut env = BTreeMap::new();
        env.insert("dt".to_owned(), VarSource::ConstF(0.25));
        let mut code = Vec::new();
        compile_expr(&Expr::var("dt"), &env, &mut code).unwrap();
        assert_eq!(code, vec![Instr::PushF(0.25)]);
        let mut data = vec![0u64];
        code.push(Instr::Store(0));
        code.push(Instr::Halt);
        run(&code, &mut data, DEFAULT_STEP_BUDGET).unwrap();
        assert_eq!(raw::to_f(data[0]), 0.25);
    }
}
