//! The model transformation: COMDES systems → program images.
//!
//! This is the "code generator" of the GMDF workflow: it turns validated
//! design models into executable code carrying the command interface
//! ("the executable code with a command interface could be implemented
//! automatically by a code generator based on input models", paper §II).
//!
//! The compiler mirrors the reference interpreter's semantics exactly —
//! same topological order, same operation order inside every block — so
//! compiled runs are bit-identical to interpreted ones. Instrumentation
//! ([`InstrumentOptions`]) decides which `Emit` instructions are woven in;
//! fault injection ([`Fault`](crate::Fault)) deliberately miscompiles
//! models to create the *implementation errors* the debugger must catch.

use crate::expr::{compile_expr, VarSource};
use crate::fault::Fault;
use crate::frame::CommandKind;
use crate::image::{
    DebugInfo, EventSpec, Latch, NodeImage, ProgramImage, Publication, SymbolTable, TaskImage,
};
use crate::isa::{CmpKind, Instr};
use gmdf_comdes::{
    Actor, BasicOp, Block, ComdesError, Network, SignalType, SignalValue, Sink, Source,
    StateMachineBlock, System,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which command-interface events the generated code emits (active mode).
///
/// Every enabled category adds `Emit` instructions — target-side cycles.
/// [`InstrumentOptions::none`] generates clean code for the passive JTAG
/// channel ("a command interface … without any code modifications",
/// paper §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentOptions {
    /// Emit `TaskStart` / `TaskEnd` at activation boundaries.
    pub task_boundaries: bool,
    /// Emit `StateEnter` on every fired state-machine transition.
    pub state_transitions: bool,
    /// Emit `ModeSwitch` on every modal-block mode change.
    pub mode_switches: bool,
    /// Emit `SignalWrite` (with the value) for every actor output.
    pub signal_writes: bool,
}

impl InstrumentOptions {
    /// No instrumentation (passive/JTAG configuration).
    pub fn none() -> Self {
        InstrumentOptions {
            task_boundaries: false,
            state_transitions: false,
            mode_switches: false,
            signal_writes: false,
        }
    }

    /// Everything on (maximal active instrumentation).
    pub fn full() -> Self {
        InstrumentOptions {
            task_boundaries: true,
            state_transitions: true,
            mode_switches: true,
            signal_writes: true,
        }
    }

    /// Only behavioural events (transitions and mode switches) — the
    /// prototype's default.
    pub fn behavior() -> Self {
        InstrumentOptions {
            task_boundaries: false,
            state_transitions: true,
            mode_switches: true,
            signal_writes: false,
        }
    }
}

impl Default for InstrumentOptions {
    fn default() -> Self {
        Self::behavior()
    }
}

/// Compilation options.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Active-channel instrumentation configuration.
    pub instrument: InstrumentOptions,
    /// Injected implementation errors (empty for a correct build).
    pub faults: Vec<Fault>,
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The input model is invalid.
    Model(ComdesError),
    /// Internal invariant violated (a compiler bug).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Model(e) => write!(f, "invalid model: {e}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ComdesError> for CompileError {
    fn from(e: ComdesError) -> Self {
        CompileError::Model(e)
    }
}

/// Compiles a validated system into a deployable [`ProgramImage`].
///
/// # Errors
///
/// Returns [`CompileError::Model`] for invalid systems and
/// [`CompileError::Internal`] if an internal invariant breaks.
pub fn compile_system(
    system: &System,
    opts: &CompileOptions,
) -> Result<ProgramImage, CompileError> {
    system.check()?;
    let signal_map = system.signal_map()?;
    let mut debug = DebugInfo::default();
    let mut nodes = Vec::with_capacity(system.nodes.len());
    for node in &system.nodes {
        let mut nc = NodeCompiler::new(opts, &mut debug);
        // Board cells for every label in the system (each node keeps its
        // own copy; the network layer refreshes remote ones).
        for (label, (ty, _)) in &signal_map {
            let addr = nc.cell(format!("board/{label}"), *ty, ty.zero());
            nc.board
                .insert(label.clone(), crate::image::Symbol { addr, ty: *ty });
        }
        let mut tasks = Vec::with_capacity(node.actors.len());
        for actor in &node.actors {
            tasks.push(nc.compile_actor(actor)?);
        }
        let subscriptions: Vec<String> = node
            .actors
            .iter()
            .flat_map(|a| a.inputs.iter().map(|i| i.label.clone()))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        nodes.push(NodeImage {
            node: node.name.clone(),
            cpu_hz: node.cpu_hz,
            data_cells: nc.next_cell,
            data_init: nc.data_init,
            tasks,
            board: nc.board,
            subscriptions,
            symbols: nc.symbols,
        });
    }
    // Watch suggestions: state/mode cells plus output latches.
    let mut suggestions = Vec::new();
    for n in &nodes {
        for (name, _) in n.symbols.iter() {
            if name.ends_with("#state") || name.ends_with("#last") || name.contains("/out/") {
                suggestions.push((n.node.clone(), name.to_owned()));
            }
        }
    }
    debug.watch_suggestions = suggestions;
    Ok(ProgramImage {
        system: system.name.clone(),
        nodes,
        debug,
    })
}

/// A block-input value source in generated code.
#[derive(Debug, Clone, Copy, PartialEq)]
enum InSrc {
    Cell(u32, SignalType),
    Zero(SignalType),
}

impl InSrc {
    fn push(self, code: &mut Vec<Instr>) {
        match self {
            InSrc::Cell(addr, _) => code.push(Instr::Load(addr)),
            InSrc::Zero(SignalType::Real) => code.push(Instr::PushF(0.0)),
            InSrc::Zero(_) => code.push(Instr::PushI(0)),
        }
    }

    fn var_source(self) -> VarSource {
        match self {
            InSrc::Cell(addr, ty) => VarSource::Cell(addr, ty),
            InSrc::Zero(SignalType::Real) => VarSource::ConstF(0.0),
            InSrc::Zero(SignalType::Int) => VarSource::ConstI(0),
            InSrc::Zero(SignalType::Bool) => VarSource::ConstB(false),
        }
    }
}

/// Per-network cell layout.
#[derive(Debug)]
struct NetLayout {
    /// `block_out[block][port]` — output cells.
    block_out: Vec<Vec<u32>>,
    /// `state[block]` — basic-block state cells.
    state: Vec<Vec<u32>>,
    nested: Vec<Nested>,
}

#[derive(Debug)]
enum Nested {
    None,
    Fsm {
        state: u32,
        ticks: u32,
        tis: u32,
    },
    Modal {
        last: u32,
        active: u32,
        modes: Vec<(Vec<u32>, NetLayout)>,
    },
    Composite {
        ins: Vec<u32>,
        inner: NetLayout,
    },
}

struct NodeCompiler<'a> {
    next_cell: u32,
    data_init: Vec<(u32, u64)>,
    symbols: SymbolTable,
    board: BTreeMap<String, crate::image::Symbol>,
    debug: &'a mut DebugInfo,
    opts: &'a CompileOptions,
    scratch: u32,
}

impl<'a> NodeCompiler<'a> {
    fn new(opts: &'a CompileOptions, debug: &'a mut DebugInfo) -> Self {
        NodeCompiler {
            next_cell: 0,
            data_init: Vec::new(),
            symbols: SymbolTable::new(),
            board: BTreeMap::new(),
            debug,
            opts,
            scratch: 0,
        }
    }

    fn cell(&mut self, name: String, ty: SignalType, init: SignalValue) -> u32 {
        let addr = self.next_cell;
        self.next_cell += 1;
        let raw = init.to_raw();
        if raw != 0 {
            self.data_init.push((addr, raw));
        }
        self.symbols.insert(name, addr, ty);
        addr
    }

    fn scratch_cell(&mut self, prefix: &str, ty: SignalType) -> u32 {
        let n = self.scratch;
        self.scratch += 1;
        self.cell(format!("{prefix}#tmp{n}"), ty, ty.zero())
    }

    fn allocate_network(&mut self, prefix: &str, net: &Network) -> NetLayout {
        let mut block_out = Vec::new();
        let mut state = Vec::new();
        let mut nested = Vec::new();
        for inst in &net.blocks {
            let bp = format!("{prefix}/{}", inst.name);
            block_out.push(
                inst.block
                    .outputs()
                    .iter()
                    .map(|p| self.cell(format!("{bp}.{}", p.name), p.ty, p.ty.zero()))
                    .collect(),
            );
            match &inst.block {
                Block::Basic(op) => {
                    state.push(
                        op.state_layout()
                            .into_iter()
                            .map(|(n, v)| self.cell(format!("{bp}#{n}"), v.signal_type(), v))
                            .collect(),
                    );
                    nested.push(Nested::None);
                }
                Block::StateMachine(fsm) => {
                    state.push(Vec::new());
                    let state_cell = self.cell(
                        format!("{bp}#state"),
                        SignalType::Int,
                        SignalValue::Int(fsm.initial as i64),
                    );
                    let ticks =
                        self.cell(format!("{bp}#ticks"), SignalType::Int, SignalValue::Int(0));
                    let tis = self.cell(
                        format!("{bp}#tis"),
                        SignalType::Real,
                        SignalValue::Real(0.0),
                    );
                    nested.push(Nested::Fsm {
                        state: state_cell,
                        ticks,
                        tis,
                    });
                }
                Block::Modal(m) => {
                    state.push(Vec::new());
                    let last =
                        self.cell(format!("{bp}#last"), SignalType::Int, SignalValue::Int(-1));
                    let active =
                        self.cell(format!("{bp}#active"), SignalType::Int, SignalValue::Int(0));
                    let modes = m
                        .modes
                        .iter()
                        .map(|mode| {
                            let mp = format!("{bp}/{}", mode.name);
                            let ins = mode
                                .network
                                .inputs
                                .iter()
                                .map(|p| {
                                    self.cell(format!("{mp}/in/{}", p.name), p.ty, p.ty.zero())
                                })
                                .collect();
                            let inner = self.allocate_network(&mp, &mode.network);
                            (ins, inner)
                        })
                        .collect();
                    nested.push(Nested::Modal {
                        last,
                        active,
                        modes,
                    });
                }
                Block::Composite(c) => {
                    state.push(Vec::new());
                    let ins = c
                        .network
                        .inputs
                        .iter()
                        .map(|p| self.cell(format!("{bp}/in/{}", p.name), p.ty, p.ty.zero()))
                        .collect();
                    let inner = self.allocate_network(&bp, &c.network);
                    nested.push(Nested::Composite { ins, inner });
                }
            }
        }
        NetLayout {
            block_out,
            state,
            nested,
        }
    }

    /// Value source of a connection `Source` inside this network.
    fn resolve(
        net: &Network,
        layout: &NetLayout,
        input_cells: &[u32],
        src: &Source,
    ) -> Result<InSrc, CompileError> {
        match src {
            Source::Input(p) => {
                let idx = net
                    .inputs
                    .iter()
                    .position(|q| q.name == *p)
                    .ok_or_else(|| CompileError::Internal(format!("no input `{p}`")))?;
                Ok(InSrc::Cell(input_cells[idx], net.inputs[idx].ty))
            }
            Source::Block { block, port } => {
                let bi = net
                    .block_index(block)
                    .ok_or_else(|| CompileError::Internal(format!("no block `{block}`")))?;
                let outs = net.blocks[bi].block.outputs();
                let oi = outs
                    .iter()
                    .position(|q| q.name == *port)
                    .ok_or_else(|| CompileError::Internal(format!("no port `{block}.{port}`")))?;
                Ok(InSrc::Cell(layout.block_out[bi][oi], outs[oi].ty))
            }
        }
    }

    /// Input sources of a block (declaration order), zero for undriven.
    fn block_inputs(
        net: &Network,
        layout: &NetLayout,
        input_cells: &[u32],
        bi: usize,
    ) -> Result<Vec<InSrc>, CompileError> {
        let inst = &net.blocks[bi];
        inst.block
            .inputs()
            .iter()
            .map(|p| {
                let driver = net.connections.iter().find(|c| {
                    matches!(&c.to, Sink::Block { block, port }
                        if *block == inst.name && *port == p.name)
                });
                match driver {
                    Some(c) => Self::resolve(net, layout, input_cells, &c.from),
                    None => Ok(InSrc::Zero(p.ty)),
                }
            })
            .collect()
    }

    /// Sources feeding the network's exported outputs.
    fn output_sources(
        net: &Network,
        layout: &NetLayout,
        input_cells: &[u32],
    ) -> Result<Vec<InSrc>, CompileError> {
        net.outputs
            .iter()
            .map(|p| {
                let c = net
                    .connections
                    .iter()
                    .find(|c| matches!(&c.to, Sink::Output(q) if *q == p.name))
                    .ok_or_else(|| {
                        CompileError::Internal(format!("output `{}` not driven", p.name))
                    })?;
                Self::resolve(net, layout, input_cells, &c.from)
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_network(
        &mut self,
        prefix: &str,
        net: &Network,
        layout: &NetLayout,
        input_cells: &[u32],
        dt: f64,
        code: &mut Vec<Instr>,
    ) -> Result<(), CompileError> {
        // Phase 1: loop-breaking blocks emit state as output.
        for (bi, inst) in net.blocks.iter().enumerate() {
            if !inst.block.has_direct_feedthrough() {
                code.push(Instr::Load(layout.state[bi][0]));
                code.push(Instr::Store(layout.block_out[bi][0]));
            }
        }
        // Phase 2: feedthrough blocks in topological order.
        for bi in net.topo_order().map_err(CompileError::Model)? {
            let inst = &net.blocks[bi];
            if !inst.block.has_direct_feedthrough() {
                continue;
            }
            let ins = Self::block_inputs(net, layout, input_cells, bi)?;
            let bp = format!("{prefix}/{}", inst.name);
            match &inst.block {
                Block::Basic(op) => {
                    self.gen_basic(
                        &bp,
                        op,
                        &ins,
                        &layout.block_out[bi],
                        &layout.state[bi],
                        dt,
                        code,
                    )?;
                }
                Block::StateMachine(fsm) => {
                    let Nested::Fsm { state, ticks, tis } = &layout.nested[bi] else {
                        return Err(CompileError::Internal("fsm layout mismatch".into()));
                    };
                    self.gen_fsm(
                        &bp,
                        fsm,
                        &ins,
                        &layout.block_out[bi],
                        *state,
                        *ticks,
                        *tis,
                        dt,
                        code,
                    )?;
                }
                Block::Modal(m) => {
                    let Nested::Modal {
                        last,
                        active,
                        modes,
                    } = &layout.nested[bi]
                    else {
                        return Err(CompileError::Internal("modal layout mismatch".into()));
                    };
                    let (last, active) = (*last, *active);
                    // active = clamp(selector, 0, n-1)
                    ins[0].push(code);
                    code.push(Instr::PushI(0));
                    code.push(Instr::MaxI);
                    code.push(Instr::PushI(m.modes.len() as i64 - 1));
                    code.push(Instr::MinI);
                    code.push(Instr::Store(active));
                    let mut end_jumps = Vec::new();
                    for (mi, mode) in m.modes.iter().enumerate() {
                        // if active == mi { … } else fall to next check
                        code.push(Instr::Load(active));
                        code.push(Instr::PushI(mi as i64));
                        code.push(Instr::CmpI(CmpKind::Eq));
                        let skip_at = code.len();
                        code.push(Instr::JmpIfZero(0)); // patched
                                                        // mode-switch detection: last != mi → emit
                        if self.opts.instrument.mode_switches {
                            code.push(Instr::Load(last));
                            code.push(Instr::PushI(mi as i64));
                            code.push(Instr::CmpI(CmpKind::Eq));
                            let noswitch_at = code.len();
                            code.push(Instr::JmpIfNot(0)); // patched
                            let ev = self.debug.register(EventSpec {
                                kind: CommandKind::ModeSwitch,
                                path: bp.clone(),
                                from: None,
                                to: Some(mode.name.clone()),
                                label: None,
                                value_type: None,
                            });
                            code.push(Instr::Emit { event: ev, argc: 0 });
                            let here = code.len() as u32;
                            code[noswitch_at] = Instr::JmpIfNot(here);
                        }
                        code.push(Instr::PushI(mi as i64));
                        code.push(Instr::Store(last));
                        let (mode_ins, mode_layout) = &modes[mi];
                        for (src, cell) in ins[1..].iter().zip(mode_ins.iter()) {
                            src.push(code);
                            code.push(Instr::Store(*cell));
                        }
                        let mp = format!("{bp}/{}", mode.name);
                        let mode_in_cells = mode_ins.clone();
                        self.gen_network(
                            &mp,
                            &mode.network,
                            mode_layout,
                            &mode_in_cells,
                            dt,
                            code,
                        )?;
                        let mode_outs =
                            Self::output_sources(&mode.network, mode_layout, &mode_in_cells)?;
                        for (src, out) in mode_outs.iter().zip(layout.block_out[bi].iter()) {
                            src.push(code);
                            code.push(Instr::Store(*out));
                        }
                        end_jumps.push(code.len());
                        code.push(Instr::Jmp(0)); // patched
                        let here = code.len() as u32;
                        code[skip_at] = Instr::JmpIfZero(here);
                    }
                    let end = code.len() as u32;
                    for j in end_jumps {
                        code[j] = Instr::Jmp(end);
                    }
                }
                Block::Composite(c) => {
                    let Nested::Composite {
                        ins: in_cells,
                        inner,
                    } = &layout.nested[bi]
                    else {
                        return Err(CompileError::Internal("composite layout mismatch".into()));
                    };
                    let in_cells = in_cells.clone();
                    for (src, cell) in ins.iter().zip(in_cells.iter()) {
                        src.push(code);
                        code.push(Instr::Store(*cell));
                    }
                    self.gen_network(&bp, &c.network, inner, &in_cells, dt, code)?;
                    let inner_outs = Self::output_sources(&c.network, inner, &in_cells)?;
                    for (src, out) in inner_outs.iter().zip(layout.block_out[bi].iter()) {
                        src.push(code);
                        code.push(Instr::Store(*out));
                    }
                }
            }
        }
        // Phase 3: late update of loop-breaking blocks.
        for (bi, inst) in net.blocks.iter().enumerate() {
            if inst.block.has_direct_feedthrough() {
                continue;
            }
            let ins = Self::block_inputs(net, layout, input_cells, bi)?;
            ins[0].push(code);
            code.push(Instr::Store(layout.state[bi][0]));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_fsm(
        &mut self,
        path: &str,
        fsm: &StateMachineBlock,
        ins: &[InSrc],
        latches: &[u32],
        state_cell: u32,
        ticks: u32,
        tis: u32,
        dt: f64,
        code: &mut Vec<Instr>,
    ) -> Result<(), CompileError> {
        // Fault lookup for this machine.
        let swap_targets = self.opts.faults.iter().any(
            |f| matches!(f, Fault::SwapTransitionTargets { block_path } if block_path == path),
        );
        let skip_entries = self
            .opts
            .faults
            .iter()
            .any(|f| matches!(f, Fault::SkipEntryActions { block_path } if block_path == path));
        let negate_guard: Option<usize> = self.opts.faults.iter().find_map(|f| match f {
            Fault::NegateGuard {
                block_path,
                transition,
            } if block_path == path => Some(*transition),
            _ => None,
        });

        let mut env: BTreeMap<String, VarSource> = fsm
            .inputs
            .iter()
            .zip(ins.iter())
            .map(|(p, s)| (p.name.clone(), s.var_source()))
            .collect();
        env.insert(
            gmdf_comdes::VAR_TIME_IN_STATE.to_owned(),
            VarSource::Cell(tis, SignalType::Real),
        );
        env.insert(gmdf_comdes::VAR_DT.to_owned(), VarSource::ConstF(dt));

        // tis = ticks * dt  (mirrors `ticks as f64 * dt`).
        code.push(Instr::Load(ticks));
        code.push(Instr::I2F);
        code.push(Instr::PushF(dt));
        code.push(Instr::MulF);
        code.push(Instr::Store(tis));

        // Dispatch header: chained `if state == s`.
        let nstates = fsm.states.len();
        let mut state_jumps = Vec::with_capacity(nstates);
        for s in 0..nstates {
            code.push(Instr::Load(state_cell));
            code.push(Instr::PushI(s as i64));
            code.push(Instr::CmpI(CmpKind::Eq));
            state_jumps.push(code.len());
            code.push(Instr::JmpIfNot(0)); // patched to state body
        }
        let fallthrough_at = code.len();
        code.push(Instr::Jmp(0)); // unreachable; patched to end

        // Transition numbering matches declaration order for NegateGuard.
        let global_index: Vec<usize> = (0..fsm.transitions.len()).collect();

        let mut during_jumps: Vec<Vec<usize>> = vec![Vec::new(); nstates]; // per target state
        let mut end_jumps: Vec<usize> = vec![fallthrough_at];

        // Per-state bodies.
        for s in 0..nstates {
            let body = code.len() as u32;
            code[state_jumps[s]] = Instr::JmpIfNot(body);
            // Swap fault: exchange the `to` of the first two transitions of
            // this machine (globally, matching the fault's intent).
            let mut swapped: Vec<usize> = fsm.transitions.iter().map(|t| t.to).collect();
            if swap_targets && fsm.transitions.len() >= 2 {
                swapped.swap(0, 1);
            }
            for (ti, t) in fsm
                .transitions
                .iter()
                .enumerate()
                .filter(|(_, t)| t.from == s)
            {
                compile_expr(&t.guard, &env, code).map_err(CompileError::Model)?;
                if negate_guard == Some(global_index[ti]) {
                    code.push(Instr::Not);
                }
                let next_at = code.len();
                code.push(Instr::JmpIfZero(0)); // patched to next transition
                let to = swapped[ti];
                code.push(Instr::PushI(to as i64));
                code.push(Instr::Store(state_cell));
                code.push(Instr::PushI(0));
                code.push(Instr::Store(ticks));
                code.push(Instr::PushF(0.0));
                code.push(Instr::Store(tis));
                if !skip_entries {
                    for a in &fsm.states[to].entry {
                        let oi = fsm
                            .outputs
                            .iter()
                            .position(|p| p.name == a.output)
                            .ok_or_else(|| {
                                CompileError::Internal(format!("no output `{}`", a.output))
                            })?;
                        let ty = compile_expr(&a.expr, &env, code).map_err(CompileError::Model)?;
                        if ty == SignalType::Int && fsm.outputs[oi].ty == SignalType::Real {
                            code.push(Instr::I2F);
                        }
                        code.push(Instr::Store(latches[oi]));
                    }
                }
                if self.opts.instrument.state_transitions {
                    let ev = self.debug.register(EventSpec {
                        kind: CommandKind::StateEnter,
                        path: path.to_owned(),
                        from: Some(fsm.states[t.from].name.clone()),
                        to: Some(fsm.states[to].name.clone()),
                        label: None,
                        value_type: None,
                    });
                    code.push(Instr::Emit { event: ev, argc: 0 });
                }
                during_jumps[to].push(code.len());
                code.push(Instr::Jmp(0)); // patched to during(to)
                let here = code.len() as u32;
                code[next_at] = Instr::JmpIfZero(here);
            }
            // No transition fired: ticks += 1; goto during(s).
            code.push(Instr::Load(ticks));
            code.push(Instr::PushI(1));
            code.push(Instr::AddI);
            code.push(Instr::Store(ticks));
            during_jumps[s].push(code.len());
            code.push(Instr::Jmp(0)); // patched to during(s)
        }

        // During bodies. Indexing by state number keeps the jump-patch
        // bookkeeping symmetrical with the dispatch header above.
        #[allow(clippy::needless_range_loop)]
        for s in 0..nstates {
            let body = code.len() as u32;
            for j in during_jumps[s].drain(..) {
                code[j] = Instr::Jmp(body);
            }
            for a in &fsm.states[s].during {
                let oi = fsm
                    .outputs
                    .iter()
                    .position(|p| p.name == a.output)
                    .ok_or_else(|| CompileError::Internal(format!("no output `{}`", a.output)))?;
                let ty = compile_expr(&a.expr, &env, code).map_err(CompileError::Model)?;
                if ty == SignalType::Int && fsm.outputs[oi].ty == SignalType::Real {
                    code.push(Instr::I2F);
                }
                code.push(Instr::Store(latches[oi]));
            }
            end_jumps.push(code.len());
            code.push(Instr::Jmp(0)); // patched to end
        }

        let end = code.len() as u32;
        for j in end_jumps {
            code[j] = Instr::Jmp(end);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_basic(
        &mut self,
        bp: &str,
        op: &BasicOp,
        ins: &[InSrc],
        outs: &[u32],
        state: &[u32],
        dt: f64,
        code: &mut Vec<Instr>,
    ) -> Result<(), CompileError> {
        use BasicOp::*;
        let gain_fault: Option<f64> = self.opts.faults.iter().find_map(|f| match f {
            Fault::GainError { block_path, factor } if block_path == bp => Some(*factor),
            _ => None,
        });
        match op {
            Const(v) => {
                match v {
                    SignalValue::Real(r) => code.push(Instr::PushF(*r)),
                    SignalValue::Int(i) => code.push(Instr::PushI(*i)),
                    SignalValue::Bool(b) => code.push(Instr::PushI(*b as i64)),
                }
                code.push(Instr::Store(outs[0]));
            }
            Gain { k } => {
                let k = gain_fault.map_or(*k, |f| k * f);
                code.push(Instr::PushF(k));
                ins[0].push(code);
                code.push(Instr::MulF);
                code.push(Instr::Store(outs[0]));
            }
            Offset { c } => {
                ins[0].push(code);
                code.push(Instr::PushF(*c));
                code.push(Instr::AddF);
                code.push(Instr::Store(outs[0]));
            }
            Sum | Sub | Mul | Div | Min | Max => {
                ins[0].push(code);
                ins[1].push(code);
                code.push(match op {
                    Sum => Instr::AddF,
                    Sub => Instr::SubF,
                    Mul => Instr::MulF,
                    Div => Instr::DivF,
                    Min => Instr::MinF,
                    Max => Instr::MaxF,
                    _ => unreachable!(),
                });
                code.push(Instr::Store(outs[0]));
            }
            Abs => {
                ins[0].push(code);
                code.push(Instr::AbsF);
                code.push(Instr::Store(outs[0]));
            }
            Neg => {
                ins[0].push(code);
                code.push(Instr::NegF);
                code.push(Instr::Store(outs[0]));
            }
            Limit { lo, hi } => {
                ins[0].push(code);
                code.push(Instr::PushF(*lo));
                code.push(Instr::MaxF);
                code.push(Instr::PushF(*hi));
                code.push(Instr::MinF);
                code.push(Instr::Store(outs[0]));
            }
            Deadband { width } => {
                ins[0].push(code);
                code.push(Instr::AbsF);
                code.push(Instr::PushF(*width));
                code.push(Instr::CmpF(CmpKind::Lt));
                let else_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::PushF(0.0));
                code.push(Instr::Store(outs[0]));
                let end_at = code.len();
                code.push(Instr::Jmp(0));
                let here = code.len() as u32;
                code[else_at] = Instr::JmpIfZero(here);
                ins[0].push(code);
                code.push(Instr::Store(outs[0]));
                let end = code.len() as u32;
                code[end_at] = Instr::Jmp(end);
            }
            Hysteresis { low, high } => {
                // q2 = x >= high ? 1 : (x <= low ? 0 : q)
                ins[0].push(code);
                code.push(Instr::PushF(*high));
                code.push(Instr::CmpF(CmpKind::Ge));
                let l1_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::PushI(1));
                let s1_at = code.len();
                code.push(Instr::Jmp(0));
                let l1 = code.len() as u32;
                code[l1_at] = Instr::JmpIfZero(l1);
                ins[0].push(code);
                code.push(Instr::PushF(*low));
                code.push(Instr::CmpF(CmpKind::Le));
                let l2_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::PushI(0));
                let s2_at = code.len();
                code.push(Instr::Jmp(0));
                let l2 = code.len() as u32;
                code[l2_at] = Instr::JmpIfZero(l2);
                code.push(Instr::Load(state[0]));
                let store = code.len() as u32;
                code[s1_at] = Instr::Jmp(store);
                code[s2_at] = Instr::Jmp(store);
                code.push(Instr::Store(state[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::Store(outs[0]));
            }
            Integrator { gain, lo, hi, .. } => {
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushF(*gain));
                ins[0].push(code);
                code.push(Instr::MulF);
                code.push(Instr::PushF(dt));
                code.push(Instr::MulF);
                code.push(Instr::AddF);
                code.push(Instr::PushF(*lo));
                code.push(Instr::MaxF);
                code.push(Instr::PushF(*hi));
                code.push(Instr::MinF);
                code.push(Instr::Store(state[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::Store(outs[0]));
            }
            Derivative => {
                ins[0].push(code);
                code.push(Instr::Load(state[0]));
                code.push(Instr::SubF);
                code.push(Instr::PushF(dt));
                code.push(Instr::DivF);
                code.push(Instr::Store(outs[0]));
                ins[0].push(code);
                code.push(Instr::Store(state[0]));
            }
            LowPass { alpha } => {
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushF(*alpha));
                ins[0].push(code);
                code.push(Instr::Load(state[0]));
                code.push(Instr::SubF);
                code.push(Instr::MulF);
                code.push(Instr::AddF);
                code.push(Instr::Store(state[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::Store(outs[0]));
            }
            MovingAverage { window } => {
                let w = *window as usize;
                let idx_cell = state[w];
                let count_cell = state[w + 1];
                let idxm = self.scratch_cell(bp, SignalType::Int);
                // idxm = idx % w
                code.push(Instr::Load(idx_cell));
                code.push(Instr::PushI(w as i64));
                code.push(Instr::RemI);
                code.push(Instr::Store(idxm));
                // unrolled indexed store: if idxm == i { w_i = x }
                let mut done_jumps = Vec::new();
                // Unrolled indexed store addresses state[i] cells by index.
                #[allow(clippy::needless_range_loop)]
                for i in 0..w {
                    code.push(Instr::Load(idxm));
                    code.push(Instr::PushI(i as i64));
                    code.push(Instr::CmpI(CmpKind::Eq));
                    let next_at = code.len();
                    code.push(Instr::JmpIfZero(0));
                    ins[0].push(code);
                    code.push(Instr::Store(state[i]));
                    done_jumps.push(code.len());
                    code.push(Instr::Jmp(0));
                    let here = code.len() as u32;
                    code[next_at] = Instr::JmpIfZero(here);
                }
                let done = code.len() as u32;
                for j in done_jumps {
                    code[j] = Instr::Jmp(done);
                }
                // idx = (idxm + 1) % w
                code.push(Instr::Load(idxm));
                code.push(Instr::PushI(1));
                code.push(Instr::AddI);
                code.push(Instr::PushI(w as i64));
                code.push(Instr::RemI);
                code.push(Instr::Store(idx_cell));
                // count = min(count + 1, w)
                code.push(Instr::Load(count_cell));
                code.push(Instr::PushI(1));
                code.push(Instr::AddI);
                code.push(Instr::PushI(w as i64));
                code.push(Instr::MinI);
                code.push(Instr::Store(count_cell));
                // y = (w_0 + … + w_{n-1}) / count
                code.push(Instr::PushF(0.0));
                for cell in state.iter().take(w) {
                    code.push(Instr::Load(*cell));
                    code.push(Instr::AddF);
                }
                code.push(Instr::Load(count_cell));
                code.push(Instr::I2F);
                code.push(Instr::DivF);
                code.push(Instr::Store(outs[0]));
            }
            Pid { kp, ki, kd, lo, hi } => {
                let e_cell = self.scratch_cell(bp, SignalType::Real);
                // e = sp - pv
                ins[0].push(code);
                ins[1].push(code);
                code.push(Instr::SubF);
                code.push(Instr::Store(e_cell));
                // I = I + e*dt
                code.push(Instr::Load(state[0]));
                code.push(Instr::Load(e_cell));
                code.push(Instr::PushF(dt));
                code.push(Instr::MulF);
                code.push(Instr::AddF);
                code.push(Instr::Store(state[0]));
                // u = clamp(kp*e + ki*I + kd*((e - prev)/dt))
                code.push(Instr::PushF(*kp));
                code.push(Instr::Load(e_cell));
                code.push(Instr::MulF);
                code.push(Instr::PushF(*ki));
                code.push(Instr::Load(state[0]));
                code.push(Instr::MulF);
                code.push(Instr::AddF);
                code.push(Instr::PushF(*kd));
                code.push(Instr::Load(e_cell));
                code.push(Instr::Load(state[1]));
                code.push(Instr::SubF);
                code.push(Instr::PushF(dt));
                code.push(Instr::DivF);
                code.push(Instr::MulF);
                code.push(Instr::AddF);
                code.push(Instr::PushF(*lo));
                code.push(Instr::MaxF);
                code.push(Instr::PushF(*hi));
                code.push(Instr::MinF);
                code.push(Instr::Store(outs[0]));
                // prev_err = e
                code.push(Instr::Load(e_cell));
                code.push(Instr::Store(state[1]));
            }
            UnitDelay { .. } => {
                return Err(CompileError::Internal(
                    "unit delay handled by network phases".into(),
                ))
            }
            SampleHold => {
                ins[1].push(code);
                let skip_at = code.len();
                code.push(Instr::JmpIfNot(0));
                ins[0].push(code);
                code.push(Instr::Store(state[0]));
                let here = code.len() as u32;
                code[skip_at] = Instr::JmpIfNot(here);
                code.push(Instr::Load(state[0]));
                code.push(Instr::Store(outs[0]));
            }
            RateLimiter { max_rise, max_fall } => {
                code.push(Instr::Load(state[0]));
                ins[0].push(code);
                code.push(Instr::Load(state[0]));
                code.push(Instr::SubF);
                code.push(Instr::PushF(-max_fall * dt));
                code.push(Instr::MaxF);
                code.push(Instr::PushF(max_rise * dt));
                code.push(Instr::MinF);
                code.push(Instr::AddF);
                code.push(Instr::Store(state[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::Store(outs[0]));
            }
            Counter { min, max, wrap } => {
                let tmp = self.scratch_cell(bp, SignalType::Int);
                ins[1].push(code); // reset
                let l1_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::PushI(*min));
                let s1_at = code.len();
                code.push(Instr::Jmp(0));
                let l1 = code.len() as u32;
                code[l1_at] = Instr::JmpIfZero(l1);
                ins[0].push(code); // inc
                let l2_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushI(1));
                code.push(Instr::AddI);
                code.push(Instr::Store(tmp));
                code.push(Instr::Load(tmp));
                code.push(Instr::PushI(*max));
                code.push(Instr::CmpI(CmpKind::Gt));
                let no_ovf_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::PushI(if *wrap { *min } else { *max }));
                let s2_at = code.len();
                code.push(Instr::Jmp(0));
                let no_ovf = code.len() as u32;
                code[no_ovf_at] = Instr::JmpIfZero(no_ovf);
                code.push(Instr::Load(tmp));
                let s3_at = code.len();
                code.push(Instr::Jmp(0));
                let l2 = code.len() as u32;
                code[l2_at] = Instr::JmpIfZero(l2);
                code.push(Instr::Load(state[0]));
                let store = code.len() as u32;
                for at in [s1_at, s2_at, s3_at] {
                    code[at] = Instr::Jmp(store);
                }
                code.push(Instr::Store(state[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::Store(outs[0]));
            }
            TimerOn { delay } => {
                ins[0].push(code);
                let l0_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushF(dt));
                code.push(Instr::AddF);
                let s_at = code.len();
                code.push(Instr::Jmp(0));
                let l0 = code.len() as u32;
                code[l0_at] = Instr::JmpIfZero(l0);
                code.push(Instr::PushF(0.0));
                let store = code.len() as u32;
                code[s_at] = Instr::Jmp(store);
                code.push(Instr::Store(state[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushF(*delay));
                code.push(Instr::CmpF(CmpKind::Ge));
                code.push(Instr::Store(outs[0]));
            }
            PulseGen { period, duty } => {
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushF(duty * period));
                code.push(Instr::CmpF(CmpKind::Lt));
                code.push(Instr::Store(outs[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushF(dt));
                code.push(Instr::AddF);
                code.push(Instr::Store(state[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushF(*period));
                code.push(Instr::CmpF(CmpKind::Ge));
                let end_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::Load(state[0]));
                code.push(Instr::PushF(*period));
                code.push(Instr::SubF);
                code.push(Instr::Store(state[0]));
                let end = code.len() as u32;
                code[end_at] = Instr::JmpIfZero(end);
            }
            And | Or | Xor => {
                ins[0].push(code);
                ins[1].push(code);
                code.push(match op {
                    And => Instr::And,
                    Or => Instr::Or,
                    Xor => Instr::Xor,
                    _ => unreachable!(),
                });
                code.push(Instr::Store(outs[0]));
            }
            Not => {
                ins[0].push(code);
                code.push(Instr::Not);
                code.push(Instr::Store(outs[0]));
            }
            SrLatch => {
                ins[1].push(code); // r
                let l1_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::PushI(0));
                let s1_at = code.len();
                code.push(Instr::Jmp(0));
                let l1 = code.len() as u32;
                code[l1_at] = Instr::JmpIfZero(l1);
                ins[0].push(code); // s
                let l2_at = code.len();
                code.push(Instr::JmpIfZero(0));
                code.push(Instr::PushI(1));
                let s2_at = code.len();
                code.push(Instr::Jmp(0));
                let l2 = code.len() as u32;
                code[l2_at] = Instr::JmpIfZero(l2);
                code.push(Instr::Load(state[0]));
                let store = code.len() as u32;
                code[s1_at] = Instr::Jmp(store);
                code[s2_at] = Instr::Jmp(store);
                code.push(Instr::Store(state[0]));
                code.push(Instr::Load(state[0]));
                code.push(Instr::Store(outs[0]));
            }
            RisingEdge => {
                ins[0].push(code);
                code.push(Instr::Load(state[0]));
                code.push(Instr::Not);
                code.push(Instr::And);
                code.push(Instr::Store(outs[0]));
                ins[0].push(code);
                code.push(Instr::Store(state[0]));
            }
            Compare(c) => {
                ins[0].push(code);
                ins[1].push(code);
                code.push(Instr::CmpF(match c {
                    gmdf_comdes::CmpOp::Lt => CmpKind::Lt,
                    gmdf_comdes::CmpOp::Le => CmpKind::Le,
                    gmdf_comdes::CmpOp::Gt => CmpKind::Gt,
                    gmdf_comdes::CmpOp::Ge => CmpKind::Ge,
                    gmdf_comdes::CmpOp::Eq => CmpKind::Eq,
                    gmdf_comdes::CmpOp::Ne => CmpKind::Ne,
                }));
                code.push(Instr::Store(outs[0]));
            }
            Select => {
                ins[0].push(code);
                let lb_at = code.len();
                code.push(Instr::JmpIfZero(0));
                ins[1].push(code);
                let ls_at = code.len();
                code.push(Instr::Jmp(0));
                let lb = code.len() as u32;
                code[lb_at] = Instr::JmpIfZero(lb);
                ins[2].push(code);
                let ls = code.len() as u32;
                code[ls_at] = Instr::Jmp(ls);
                code.push(Instr::Store(outs[0]));
            }
            Func { inputs, outputs } => {
                let env: BTreeMap<String, VarSource> = inputs
                    .iter()
                    .zip(ins.iter())
                    .map(|(p, s)| (p.name.clone(), s.var_source()))
                    .collect();
                for (oi, (port, expr)) in outputs.iter().enumerate() {
                    let ty = compile_expr(expr, &env, code).map_err(CompileError::Model)?;
                    if ty == SignalType::Int && port.ty == SignalType::Real {
                        code.push(Instr::I2F);
                    }
                    code.push(Instr::Store(outs[oi]));
                }
            }
        }
        Ok(())
    }

    fn compile_actor(&mut self, actor: &Actor) -> Result<TaskImage, CompileError> {
        let dt = actor.timing.dt_seconds();
        let in_latch: Vec<u32> = actor
            .inputs
            .iter()
            .map(|i| {
                self.cell(
                    format!("{}/in/{}", actor.name, i.port.name),
                    i.port.ty,
                    i.port.ty.zero(),
                )
            })
            .collect();
        let out_latch: Vec<u32> = actor
            .outputs
            .iter()
            .map(|o| {
                self.cell(
                    format!("{}/out/{}", actor.name, o.port.name),
                    o.port.ty,
                    o.port.ty.zero(),
                )
            })
            .collect();
        let layout = self.allocate_network(&actor.name, &actor.network);

        let mut code = Vec::new();
        let start_event = if self.opts.instrument.task_boundaries {
            let ev = self
                .debug
                .register(EventSpec::new(CommandKind::TaskStart, &actor.name));
            code.push(Instr::Emit { event: ev, argc: 0 });
            Some(ev)
        } else {
            None
        };
        self.gen_network(
            &actor.name,
            &actor.network,
            &layout,
            &in_latch,
            dt,
            &mut code,
        )?;
        let out_srcs = Self::output_sources(&actor.network, &layout, &in_latch)?;
        for ((src, latch), binding) in out_srcs.iter().zip(out_latch.iter()).zip(&actor.outputs) {
            src.push(&mut code);
            code.push(Instr::Store(*latch));
            if self.opts.instrument.signal_writes {
                let ev = self.debug.register(EventSpec {
                    kind: CommandKind::SignalWrite,
                    path: format!("{}/out/{}", actor.name, binding.port.name),
                    from: None,
                    to: None,
                    label: Some(binding.label.clone()),
                    value_type: Some(binding.port.ty),
                });
                code.push(Instr::Load(*latch));
                code.push(Instr::Emit { event: ev, argc: 1 });
            }
        }
        let end_event = if self.opts.instrument.task_boundaries {
            let ev = self
                .debug
                .register(EventSpec::new(CommandKind::TaskEnd, &actor.name));
            code.push(Instr::Emit { event: ev, argc: 0 });
            Some(ev)
        } else {
            None
        };
        code.push(Instr::Halt);

        // DropEmits fault: neutralize every Emit (stack residue is benign).
        if self
            .opts
            .faults
            .iter()
            .any(|f| matches!(f, Fault::DropEmits))
        {
            // Replacement jumps target `pc + 1`, so the index is the datum.
            #[allow(clippy::needless_range_loop)]
            for pc in 0..code.len() {
                if matches!(code[pc], Instr::Emit { .. }) {
                    code[pc] = Instr::Jmp(pc as u32 + 1);
                }
            }
        }

        let input_latches = actor
            .inputs
            .iter()
            .zip(in_latch.iter())
            .map(|(i, latch)| {
                let board = self
                    .board
                    .get(&i.label)
                    .ok_or_else(|| CompileError::Internal(format!("no board `{}`", i.label)))?;
                Ok(Latch {
                    from: board.addr,
                    to: *latch,
                })
            })
            .collect::<Result<Vec<_>, CompileError>>()?;
        let publications = actor
            .outputs
            .iter()
            .zip(out_latch.iter())
            .map(|(o, latch)| {
                let board = self
                    .board
                    .get(&o.label)
                    .ok_or_else(|| CompileError::Internal(format!("no board `{}`", o.label)))?;
                Ok(Publication {
                    latch: *latch,
                    board: board.addr,
                    label: o.label.clone(),
                    ty: o.port.ty,
                })
            })
            .collect::<Result<Vec<_>, CompileError>>()?;

        let mut task = TaskImage {
            actor: actor.name.clone(),
            code,
            period_ns: actor.timing.period_ns,
            offset_ns: actor.timing.offset_ns,
            deadline_ns: actor.timing.deadline_ns,
            priority: actor.timing.priority,
            input_latches,
            publications,
            start_event,
            end_event,
            wcet: 0,
        };
        task.wcet = task.wcet_cycles();
        Ok(task)
    }
}
