//! # gmdf-codegen — model transformation for GMDF
//!
//! Compiles COMDES systems ([`gmdf_comdes`]) into executable
//! [`ProgramImage`]s for the embedded node simulator, reproducing the
//! "model transformation" stage of the GMDF workflow (paper Fig. 1): the
//! generated code carries the **command interface** the debugger listens
//! to, woven in as `Emit` instructions by the instrumentation pass.
//!
//! * [`compile_system`] — the compiler (with [`InstrumentOptions`] and
//!   [`Fault`] injection);
//! * [`Instr`] / [`vm::run`] — the target ISA and its executor;
//! * [`Frame`] / [`FrameDecoder`] — the RS-232 command wire format;
//! * [`ProgramImage`] / [`SymbolTable`] / [`DebugInfo`] — deployment and
//!   debug metadata (JTAG watch addresses, event table).
//!
//! ```
//! use gmdf_codegen::{compile_system, CompileOptions};
//! use gmdf_comdes::{ActorBuilder, BasicOp, NetworkBuilder, NodeSpec, Port, System, Timing};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = NetworkBuilder::new()
//!     .input(Port::real("x"))
//!     .output(Port::real("y"))
//!     .block("g", BasicOp::Gain { k: 2.0 })
//!     .connect("x", "g.x")?
//!     .connect("g.y", "y")?
//!     .build()?;
//! let actor = ActorBuilder::new("Doubler", net)
//!     .input("x", "in")
//!     .output("y", "out")
//!     .timing(Timing::periodic(1_000_000, 0))
//!     .build()?;
//! let mut node = NodeSpec::new("ecu", 48_000_000);
//! node.actors.push(actor);
//! let system = System::new("demo").with_node(node);
//!
//! let image = compile_system(&system, &CompileOptions::default())?;
//! assert_eq!(image.nodes.len(), 1);
//! assert!(image.nodes[0].symbols.get("Doubler/in/x").is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod expr;
mod fault;
mod frame;
mod image;
mod isa;
pub mod vm;

pub use compile::{compile_system, CompileError, CompileOptions, InstrumentOptions};
pub use expr::{compile_expr, VarSource};
pub use fault::Fault;
pub use frame::{crc16, CommandKind, Frame, FrameDecoder, MAX_ARGS, SOF};
pub use image::{
    DebugInfo, EventSpec, Latch, NodeImage, ProgramImage, Publication, Symbol, SymbolTable,
    TaskImage,
};
pub use isa::{raw, CmpKind, Instr};
pub use vm::{run, RunResult, VmError, DEFAULT_STEP_BUDGET};
