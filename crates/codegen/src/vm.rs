//! The stack-machine executor.
//!
//! This is the semantics of "executable code" in the reproduction: the
//! target node simulator ([`gmdf-target`]) wraps it with memory,
//! peripherals and a kernel; unit and property tests drive it directly.
//! Execution is deterministic and cycle-counted.
//!
//! [`gmdf-target`]: ../../gmdf_target/index.html

use crate::frame::Frame;
use crate::isa::{raw, Instr};
use std::fmt;

/// Execution fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Pop from an empty stack.
    StackUnderflow {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// Load/store outside the data segment.
    BadAddress {
        /// Program counter of the faulting instruction.
        pc: usize,
        /// Offending address.
        addr: u32,
    },
    /// Jump outside the code.
    BadJump {
        /// Program counter of the faulting instruction.
        pc: usize,
        /// Offending target.
        target: u32,
    },
    /// Execution exceeded the step budget (runaway loop guard).
    StepBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// Code ran off the end without `Halt`.
    MissingHalt,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow { pc } => write!(f, "stack underflow at pc {pc}"),
            VmError::BadAddress { pc, addr } => write!(f, "bad address {addr} at pc {pc}"),
            VmError::BadJump { pc, target } => write!(f, "bad jump target {target} at pc {pc}"),
            VmError::StepBudgetExceeded { budget } => {
                write!(f, "step budget {budget} exceeded (runaway loop?)")
            }
            VmError::MissingHalt => write!(f, "code ran past the end without halt"),
        }
    }
}

impl std::error::Error for VmError {}

/// Result of one task-step execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Total cycles consumed.
    pub cycles: u64,
    /// Emitted command frames, each tagged with the cycle count *at which
    /// the emit instruction finished* — the target simulator converts this
    /// to a wall-clock time under preemption.
    pub emits: Vec<(u64, Frame)>,
}

/// Default step budget (instructions per task step).
pub const DEFAULT_STEP_BUDGET: u64 = 1_000_000;

/// Executes `code` over the `data` segment until `Halt`.
///
/// Returns consumed cycles and emitted frames. The stack is private to the
/// run; only `data` persists between runs.
///
/// # Errors
///
/// Returns a [`VmError`] on stack underflow, bad addresses/jumps, missing
/// `Halt`, or when `step_budget` instructions have been executed.
pub fn run(code: &[Instr], data: &mut [u64], step_budget: u64) -> Result<RunResult, VmError> {
    let mut stack: Vec<u64> = Vec::with_capacity(32);
    let mut pc: usize = 0;
    let mut cycles: u64 = 0;
    let mut steps: u64 = 0;
    let mut emits = Vec::new();

    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow { pc })?
        };
    }
    macro_rules! binf {
        ($op:expr) => {{
            let b = raw::to_f(pop!());
            let a = raw::to_f(pop!());
            stack.push(raw::from_f($op(a, b)));
        }};
    }
    macro_rules! bini {
        ($op:expr) => {{
            let b = raw::to_i(pop!());
            let a = raw::to_i(pop!());
            stack.push(raw::from_i($op(a, b)));
        }};
    }

    loop {
        if steps >= step_budget {
            return Err(VmError::StepBudgetExceeded {
                budget: step_budget,
            });
        }
        let Some(instr) = code.get(pc) else {
            return Err(VmError::MissingHalt);
        };
        steps += 1;
        cycles += instr.cycles();
        let mut next = pc + 1;
        match *instr {
            Instr::PushF(v) => stack.push(raw::from_f(v)),
            Instr::PushI(v) => stack.push(raw::from_i(v)),
            Instr::Load(addr) => {
                let cell = data
                    .get(addr as usize)
                    .ok_or(VmError::BadAddress { pc, addr })?;
                stack.push(*cell);
            }
            Instr::Store(addr) => {
                let v = pop!();
                let cell = data
                    .get_mut(addr as usize)
                    .ok_or(VmError::BadAddress { pc, addr })?;
                *cell = v;
            }
            Instr::AddF => binf!(|a: f64, b: f64| a + b),
            Instr::SubF => binf!(|a: f64, b: f64| a - b),
            Instr::MulF => binf!(|a: f64, b: f64| a * b),
            Instr::DivF => binf!(|a: f64, b: f64| a / b),
            Instr::MinF => binf!(f64::min),
            Instr::MaxF => binf!(f64::max),
            Instr::NegF => {
                let a = raw::to_f(pop!());
                stack.push(raw::from_f(-a));
            }
            Instr::AbsF => {
                let a = raw::to_f(pop!());
                stack.push(raw::from_f(a.abs()));
            }
            Instr::AddI => bini!(i64::wrapping_add),
            Instr::SubI => bini!(i64::wrapping_sub),
            Instr::MulI => bini!(i64::wrapping_mul),
            Instr::DivI => bini!(|a: i64, b: i64| if b == 0 { 0 } else { a.wrapping_div(b) }),
            Instr::RemI => bini!(|a: i64, b: i64| if b == 0 { 0 } else { a.wrapping_rem(b) }),
            Instr::MinI => bini!(i64::min),
            Instr::MaxI => bini!(i64::max),
            Instr::NegI => {
                let a = raw::to_i(pop!());
                stack.push(raw::from_i(a.wrapping_neg()));
            }
            Instr::AbsI => {
                let a = raw::to_i(pop!());
                stack.push(raw::from_i(a.wrapping_abs()));
            }
            Instr::CmpF(k) => {
                let b = raw::to_f(pop!());
                let a = raw::to_f(pop!());
                stack.push(raw::from_b(k.apply(a, b)));
            }
            Instr::CmpI(k) => {
                let b = raw::to_i(pop!());
                let a = raw::to_i(pop!());
                stack.push(raw::from_b(k.apply(a, b)));
            }
            Instr::And => {
                let b = raw::to_b(pop!());
                let a = raw::to_b(pop!());
                stack.push(raw::from_b(a && b));
            }
            Instr::Or => {
                let b = raw::to_b(pop!());
                let a = raw::to_b(pop!());
                stack.push(raw::from_b(a || b));
            }
            Instr::Xor => {
                let b = raw::to_b(pop!());
                let a = raw::to_b(pop!());
                stack.push(raw::from_b(a ^ b));
            }
            Instr::Not => {
                let a = raw::to_b(pop!());
                stack.push(raw::from_b(!a));
            }
            Instr::I2F => {
                let a = raw::to_i(pop!());
                stack.push(raw::from_f(a as f64));
            }
            Instr::F2I => {
                let a = raw::to_f(pop!());
                stack.push(raw::from_i(gmdf_comdes::trunc_to_int(a)));
            }
            Instr::Jmp(t) => {
                if t as usize >= code.len() {
                    return Err(VmError::BadJump { pc, target: t });
                }
                next = t as usize;
            }
            Instr::JmpIfZero(t) => {
                if t as usize >= code.len() {
                    return Err(VmError::BadJump { pc, target: t });
                }
                if pop!() == 0 {
                    next = t as usize;
                }
            }
            Instr::JmpIfNot(t) => {
                if t as usize >= code.len() {
                    return Err(VmError::BadJump { pc, target: t });
                }
                if pop!() != 0 {
                    next = t as usize;
                }
            }
            Instr::Emit { event, argc } => {
                let mut args = Vec::with_capacity(argc as usize);
                for _ in 0..argc {
                    args.push(pop!());
                }
                args.reverse(); // first-pushed first
                emits.push((cycles, Frame::new(event, args)));
            }
            Instr::Halt => {
                return Ok(RunResult { cycles, emits });
            }
        }
        pc = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::CmpKind;

    #[test]
    fn arithmetic_and_store() {
        let code = [
            Instr::PushF(2.0),
            Instr::PushF(3.0),
            Instr::MulF,
            Instr::Store(0),
            Instr::Halt,
        ];
        let mut data = vec![0u64; 1];
        let r = run(&code, &mut data, DEFAULT_STEP_BUDGET).unwrap();
        assert_eq!(raw::to_f(data[0]), 6.0);
        assert_eq!(r.cycles, 1 + 1 + 8 + 2 + 1);
        assert!(r.emits.is_empty());
    }

    #[test]
    fn integer_div_by_zero_is_zero() {
        let code = [
            Instr::PushI(9),
            Instr::PushI(0),
            Instr::DivI,
            Instr::Store(0),
            Instr::Halt,
        ];
        let mut data = vec![0xFFu64; 1];
        run(&code, &mut data, DEFAULT_STEP_BUDGET).unwrap();
        assert_eq!(raw::to_i(data[0]), 0);
    }

    #[test]
    fn conditional_jump_selects_branch() {
        // if (5 > 3) store 1 else store 2
        let code = [
            Instr::PushF(5.0),
            Instr::PushF(3.0),
            Instr::CmpF(CmpKind::Gt),
            Instr::JmpIfZero(7),
            Instr::PushI(1),
            Instr::Store(0),
            Instr::Jmp(9),
            Instr::PushI(2),
            Instr::Store(0),
            Instr::Halt,
        ];
        let mut data = vec![0u64; 1];
        run(&code, &mut data, DEFAULT_STEP_BUDGET).unwrap();
        assert_eq!(raw::to_i(data[0]), 1);
    }

    #[test]
    fn emit_pops_args_in_push_order() {
        let code = [
            Instr::PushI(10),
            Instr::PushI(20),
            Instr::Emit { event: 5, argc: 2 },
            Instr::Halt,
        ];
        let mut data = vec![];
        let r = run(&code, &mut data, DEFAULT_STEP_BUDGET).unwrap();
        assert_eq!(r.emits.len(), 1);
        let (at, frame) = &r.emits[0];
        assert_eq!(frame.event, 5);
        assert_eq!(frame.args, vec![10, 20]);
        assert_eq!(*at, 1 + 1 + (24 + 16));
    }

    #[test]
    fn f2i_matches_interpreter_truncation() {
        for v in [2.9, -2.9, f64::NAN, 1e300, -1e300] {
            let code = [Instr::PushF(v), Instr::F2I, Instr::Store(0), Instr::Halt];
            let mut data = vec![0u64; 1];
            run(&code, &mut data, DEFAULT_STEP_BUDGET).unwrap();
            assert_eq!(raw::to_i(data[0]), gmdf_comdes::trunc_to_int(v), "{v}");
        }
    }

    #[test]
    fn stack_underflow_detected() {
        let code = [Instr::AddF, Instr::Halt];
        let err = run(&code, &mut [], DEFAULT_STEP_BUDGET).unwrap_err();
        assert!(matches!(err, VmError::StackUnderflow { pc: 0 }));
    }

    #[test]
    fn bad_address_detected() {
        let code = [Instr::PushI(1), Instr::Store(9), Instr::Halt];
        let err = run(&code, &mut [0u64; 2], DEFAULT_STEP_BUDGET).unwrap_err();
        assert!(matches!(err, VmError::BadAddress { addr: 9, .. }));
    }

    #[test]
    fn bad_jump_detected() {
        let code = [Instr::Jmp(99)];
        let err = run(&code, &mut [], DEFAULT_STEP_BUDGET).unwrap_err();
        assert!(matches!(err, VmError::BadJump { target: 99, .. }));
    }

    #[test]
    fn missing_halt_detected() {
        let code = [Instr::PushI(1), Instr::Store(0)];
        let err = run(&code, &mut [0u64; 1], DEFAULT_STEP_BUDGET).unwrap_err();
        assert_eq!(err, VmError::MissingHalt);
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let code = [Instr::Jmp(0)];
        let err = run(&code, &mut [], 1000).unwrap_err();
        assert!(matches!(err, VmError::StepBudgetExceeded { budget: 1000 }));
    }

    #[test]
    fn logic_ops() {
        let code = [
            Instr::PushI(1),
            Instr::PushI(0),
            Instr::Or,
            Instr::Not,
            Instr::Store(0),
            Instr::Halt,
        ];
        let mut data = vec![9u64; 1];
        run(&code, &mut data, DEFAULT_STEP_BUDGET).unwrap();
        assert_eq!(data[0], 0);
    }
}
