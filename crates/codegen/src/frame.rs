//! The command-interface wire format.
//!
//! "GMDF requires that developers implement a predefined command interface
//! in order to enable GDM to receive commands from the tested program"
//! (paper §II). This module is that predefined interface: the frame layout
//! command frames use on the RS-232 link (active mode), and the command
//! kinds both transports share.
//!
//! Frame layout (all little-endian):
//!
//! ```text
//! 0x7E | len: u8 | event_id: u16 | argc: u8 | args: argc × u64 | crc16: u16
//! ```
//!
//! `len` counts the bytes between itself and the CRC (`3 + 8·argc`). The
//! CRC is CRC-16/CCITT-FALSE over `len..args`. There is no byte stuffing:
//! the decoder resynchronizes on `0x7E` + valid CRC, which is robust
//! enough for a point-to-point wire and keeps the generated emit code
//! small.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Start-of-frame marker byte.
pub const SOF: u8 = 0x7E;

/// Maximum argument count per frame.
pub const MAX_ARGS: usize = 8;

/// Categories of commands the generated code (or the JTAG watcher) sends
/// to the debugger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CommandKind {
    /// A task activation began (release / dispatch).
    TaskStart,
    /// A task activation finished its computation.
    TaskEnd,
    /// A state-machine block entered a state.
    StateEnter,
    /// A modal block switched modes.
    ModeSwitch,
    /// An actor output signal was written.
    SignalWrite,
    /// A watched variable changed (synthesized by the passive JTAG
    /// channel; never emitted by generated code).
    WatchHit,
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandKind::TaskStart => "task-start",
            CommandKind::TaskEnd => "task-end",
            CommandKind::StateEnter => "state-enter",
            CommandKind::ModeSwitch => "mode-switch",
            CommandKind::SignalWrite => "signal-write",
            CommandKind::WatchHit => "watch-hit",
        };
        write!(f, "{s}")
    }
}

/// A decoded command frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Event id, resolved against [`DebugInfo`](crate::DebugInfo).
    pub event: u16,
    /// Raw argument cells, in emit order.
    pub args: Vec<u64>,
}

impl Frame {
    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() > MAX_ARGS` — generated code never exceeds it.
    pub fn new(event: u16, args: Vec<u64>) -> Self {
        assert!(args.len() <= MAX_ARGS, "too many frame args");
        Frame { event, args }
    }

    /// Serializes the frame to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let len = 3 + 8 * self.args.len();
        let mut out = Vec::with_capacity(2 + len + 2);
        out.push(SOF);
        out.push(len as u8);
        out.extend_from_slice(&self.event.to_le_bytes());
        out.push(self.args.len() as u8);
        for a in &self.args {
            out.extend_from_slice(&a.to_le_bytes());
        }
        let crc = crc16(&out[1..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Incremental frame decoder: feed received bytes, collect frames.
///
/// Tolerates garbage between frames (resynchronizes on the next `SOF`
/// whose CRC verifies) and counts discarded bytes and CRC failures.
///
/// Serializable so mid-stream decoder state (a frame straddling a
/// checkpoint instant) survives a checkpoint/restore round trip.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes discarded while hunting for a frame start.
    pub discarded: u64,
    /// Frames dropped due to CRC mismatch.
    pub crc_errors: u64,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds received bytes; returns any complete frames, in order.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<Frame> {
        self.buf.extend_from_slice(bytes);
        let mut frames = Vec::new();
        loop {
            // Hunt for SOF.
            match self.buf.iter().position(|&b| b == SOF) {
                Some(0) => {}
                Some(p) => {
                    self.discarded += p as u64;
                    self.buf.drain(..p);
                }
                None => {
                    self.discarded += self.buf.len() as u64;
                    self.buf.clear();
                    return frames;
                }
            }
            if self.buf.len() < 2 {
                return frames;
            }
            let len = self.buf[1] as usize;
            let total = 2 + len + 2;
            if len < 3 || !(len - 3).is_multiple_of(8) || (len - 3) / 8 > MAX_ARGS {
                // Impossible length: not a real frame start.
                self.discarded += 1;
                self.buf.drain(..1);
                continue;
            }
            if self.buf.len() < total {
                return frames;
            }
            let crc_got = u16::from_le_bytes([self.buf[total - 2], self.buf[total - 1]]);
            let crc_want = crc16(&self.buf[1..total - 2]);
            if crc_got != crc_want {
                self.crc_errors += 1;
                self.discarded += 1;
                self.buf.drain(..1);
                continue;
            }
            let event = u16::from_le_bytes([self.buf[2], self.buf[3]]);
            let argc = self.buf[4] as usize;
            let mut args = Vec::with_capacity(argc);
            for i in 0..argc {
                let off = 5 + 8 * i;
                let mut le = [0u8; 8];
                le.copy_from_slice(&self.buf[off..off + 8]);
                args.push(u64::from_le_bytes(le));
            }
            self.buf.drain(..total);
            frames.push(Frame { event, args });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let frames = [
            Frame::new(0, vec![]),
            Frame::new(7, vec![42]),
            Frame::new(65535, vec![u64::MAX, 0, 1]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend(f.encode());
        }
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&wire);
        assert_eq!(got, frames);
        assert_eq!(dec.discarded, 0);
        assert_eq!(dec.crc_errors, 0);
    }

    #[test]
    fn byte_at_a_time_decoding() {
        let f = Frame::new(3, vec![0xDEADBEEF]);
        let wire = f.encode();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire {
            got.extend(dec.feed(&[b]));
        }
        assert_eq!(got, vec![f]);
    }

    #[test]
    fn resynchronizes_after_garbage() {
        let f = Frame::new(9, vec![5]);
        let mut wire = vec![0x00, 0x13, 0x7E, 0x01]; // junk incl. a fake SOF
        wire.extend(f.encode());
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&wire);
        assert_eq!(got, vec![f]);
        assert!(dec.discarded > 0);
    }

    #[test]
    fn crc_error_detected_and_skipped() {
        let good = Frame::new(1, vec![2]);
        let mut corrupted = good.encode();
        let n = corrupted.len();
        corrupted[n - 3] ^= 0xFF; // flip an arg byte
        let mut wire = corrupted;
        wire.extend(good.encode());
        let mut dec = FrameDecoder::new();
        let got = dec.feed(&wire);
        assert_eq!(got, vec![good]);
        assert_eq!(dec.crc_errors, 1);
    }

    #[test]
    fn partial_frame_waits_for_more_bytes() {
        let f = Frame::new(4, vec![1, 2]);
        let wire = f.encode();
        let mut dec = FrameDecoder::new();
        assert!(dec.feed(&wire[..5]).is_empty());
        assert_eq!(dec.feed(&wire[5..]), vec![f]);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn command_kind_display() {
        assert_eq!(CommandKind::StateEnter.to_string(), "state-enter");
        assert_eq!(CommandKind::WatchHit.to_string(), "watch-hit");
    }
}
