//! Target-simulator contract tests: the UART byte stream decodes frame
//! for frame, the JTAG watch unit polls in order and coalesces, and the
//! whole platform is deterministic.

use gmdf_codegen::{compile_system, CommandKind, CompileOptions, FrameDecoder, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, SignalValue, System,
    Timing, VAR_TIME_IN_STATE,
};
use gmdf_target::{JtagMonitor, SimConfig, SimEvent, Simulator};

/// A ring FSM dwelling `dwell_s` per state, as a one-node system.
fn ring_system(n_states: usize, dwell_s: f64, period_ns: u64) -> System {
    let mut fb = FsmBuilder::new().output(Port::int("s"));
    for i in 0..n_states {
        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
    }
    for i in 0..n_states {
        fb = fb.transition(
            &format!("S{i}"),
            &format!("S{}", (i + 1) % n_states),
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        );
    }
    let fsm = fb.initial("S0").build().unwrap();
    let net = NetworkBuilder::new()
        .output(Port::int("s"))
        .state_machine("ring", fsm)
        .connect("ring.s", "s")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Ring", net)
        .output("s", "state_sig")
        .timing(Timing::periodic(period_ns, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("ring_sys").with_node(node)
}

fn boot(system: &System, instrument: InstrumentOptions, config: SimConfig) -> Simulator {
    let image = compile_system(
        system,
        &CompileOptions {
            instrument,
            faults: vec![],
        },
    )
    .expect("compiles");
    Simulator::new(image, config).expect("boots")
}

#[test]
fn uart_frames_round_trip_through_the_decoder() {
    let system = ring_system(4, 0.002, 1_000_000);
    // A fast debug link so full instrumentation does not saturate it.
    let mut sim = boot(
        &system,
        InstrumentOptions::full(),
        SimConfig {
            uart_baud: 1_000_000,
            ..SimConfig::default()
        },
    );
    let debug = sim.image().debug.clone();
    sim.run_until(40_000_000).unwrap();

    let bytes = sim.uart_take("ecu").unwrap();
    assert!(!bytes.is_empty(), "instrumented code must emit frames");
    // Timestamps are monotonic and spaced at least one UART byte apart.
    let byte_ns = 10_000_000_000 / sim.config().uart_baud;
    for w in bytes.windows(2) {
        assert!(w[1].0 >= w[0].0 + byte_ns, "{w:?}");
    }

    // Every frame decodes cleanly and resolves in the event table.
    let raw: Vec<u8> = bytes.iter().map(|&(_, b)| b).collect();
    let mut dec = FrameDecoder::new();
    let frames = dec.feed(&raw);
    assert_eq!(dec.crc_errors, 0);
    assert_eq!(dec.discarded, 0);
    assert!(frames.len() >= 30, "task pairs + transitions over 40 ms");
    for f in &frames {
        assert!(
            debug.event(f.event).is_some(),
            "unknown event id {}",
            f.event
        );
    }
    // The behavioural subsequence is the ring walk S1, S2, S3, S0, …
    let entered: Vec<&str> = frames
        .iter()
        .filter_map(|f| {
            let spec = debug.event(f.event).unwrap();
            if spec.kind == CommandKind::StateEnter {
                spec.to.as_deref()
            } else {
                None
            }
        })
        .collect();
    assert!(entered.len() >= 8);
    for (i, s) in entered.iter().enumerate() {
        assert_eq!(*s, format!("S{}", (i + 1) % 4), "ring order at {i}");
    }
}

#[test]
fn uart_byte_stream_is_empty_without_instrumentation() {
    let system = ring_system(4, 0.002, 1_000_000);
    let mut sim = boot(&system, InstrumentOptions::none(), SimConfig::default());
    sim.run_until(20_000_000).unwrap();
    assert!(sim.uart_take("ecu").unwrap().is_empty());
}

#[test]
fn jtag_polls_in_registration_order_and_coalesces() {
    // The ring advances every 2 ms (1 ms dwell sampled at 1 ms periods
    // fires on the second step in each state); polling every 4 ms must
    // therefore skip exactly one state per poll.
    let system = ring_system(8, 0.001, 1_000_000);
    let mut sim = boot(&system, InstrumentOptions::none(), SimConfig::default());
    // Poll every 4 ms; registration order: ticks cell, then state cell.
    let mut monitor = JtagMonitor::new(4_000_000, 10_000_000);
    monitor.watch(&sim, "ecu", "Ring/ring#ticks").unwrap();
    monitor.watch(&sim, "ecu", "Ring/ring#state").unwrap();
    let hits = monitor.run_until(&mut sim, 12_000_000).unwrap();
    assert!(monitor.scan_ns_total > 0, "host pays scan time");
    assert!(sim.cycles_executed("ecu").unwrap() > 0);

    // Within one poll instant, events preserve registration order.
    for w in hits.windows(2) {
        if w[0].time_ns == w[1].time_ns {
            assert!(
                (w[0].symbol.as_str(), w[1].symbol.as_str())
                    == ("Ring/ring#ticks", "Ring/ring#state"),
                "per-poll ordering broke: {w:?}"
            );
        }
    }

    // Intermediate states coalesce away: each observed state jumps by 2
    // (mod 8) over its predecessor, never by the single step a
    // fast-enough poll would see.
    let states: Vec<i64> = hits
        .iter()
        .filter(|h| h.symbol == "Ring/ring#state")
        .map(|h| h.value.as_int().unwrap())
        .collect();
    assert!(states.len() >= 3);
    for w in states.windows(2) {
        let jump = (w[1] - w[0]).rem_euclid(8);
        assert_eq!(jump, 2, "coalesced polling must skip states: {states:?}");
    }
}

#[test]
fn same_image_and_config_replay_identically() {
    let system = ring_system(5, 0.0015, 1_000_000);
    let run = || {
        let mut sim = boot(
            &system,
            InstrumentOptions::behavior(),
            SimConfig {
                clock_jitter_ns: 40_000,
                ..SimConfig::default()
            },
        );
        sim.schedule_signal(0, "state_sig", SignalValue::Int(0))
            .unwrap();
        sim.run_until(30_000_000).unwrap();
        let bytes = sim.uart_take("ecu").unwrap();
        (format!("{:?}", sim.events()), bytes)
    };
    let (events_a, bytes_a) = run();
    let (events_b, bytes_b) = run();
    assert_eq!(events_a, events_b, "event logs must be bit-identical");
    assert_eq!(bytes_a, bytes_b, "UART streams must be bit-identical");
}

#[test]
fn incremental_runs_match_one_big_run() {
    let system = ring_system(4, 0.002, 1_000_000);
    let mut a = boot(&system, InstrumentOptions::behavior(), SimConfig::default());
    a.run_until(25_000_000).unwrap();
    let mut b = boot(&system, InstrumentOptions::behavior(), SimConfig::default());
    for t in [1_000_000, 1_500_000, 9_999_999, 20_000_000, 25_000_000] {
        b.run_until(t).unwrap();
    }
    assert_eq!(format!("{:?}", a.events()), format!("{:?}", b.events()));
    assert_eq!(a.uart_take("ecu").unwrap(), b.uart_take("ecu").unwrap());
}

#[test]
fn slice_pumping_matches_one_big_run() {
    let system = ring_system(4, 0.002, 1_000_000);
    let mut a = boot(&system, InstrumentOptions::behavior(), SimConfig::default());
    a.run_until(25_000_000).unwrap();
    // Pump in deliberately ragged slices (prime-ish sizes, not divisors
    // of any period) up to the same horizon.
    let mut b = boot(&system, InstrumentOptions::behavior(), SimConfig::default());
    let mut k = 0usize;
    while b.now_ns() < 25_000_000 {
        let slice = [13_337, 991, 742_101, 1_000_003][k % 4].min(25_000_000 - b.now_ns());
        let now = b.run_for_slice(slice).unwrap();
        assert_eq!(now, b.now_ns());
        k += 1;
    }
    assert_eq!(format!("{:?}", a.events()), format!("{:?}", b.events()));
    assert_eq!(a.uart_take("ecu").unwrap(), b.uart_take("ecu").unwrap());
}

#[test]
fn latched_outputs_publish_exactly_at_deadlines() {
    let system = ring_system(4, 0.002, 1_000_000);
    let mut sim = boot(&system, InstrumentOptions::none(), SimConfig::default());
    sim.run_until(10_000_000).unwrap();
    let publishes: Vec<u64> = sim
        .events()
        .iter()
        .filter_map(|e| match e {
            SimEvent::Publish { time_ns, .. } => Some(*time_ns),
            _ => None,
        })
        .collect();
    assert!(publishes.len() >= 9);
    for (i, t) in publishes.iter().enumerate() {
        // Release k at k ms, deadline (= period) at (k+1) ms.
        assert_eq!(*t, (i as u64 + 1) * 1_000_000);
    }
}

#[test]
fn unlatched_outputs_publish_at_completion_before_the_deadline() {
    let system = ring_system(4, 0.002, 1_000_000);
    let mut sim = boot(
        &system,
        InstrumentOptions::none(),
        SimConfig {
            latch_outputs: false,
            ..SimConfig::default()
        },
    );
    sim.run_until(10_000_000).unwrap();
    let mut completions = Vec::new();
    let mut publishes = Vec::new();
    for e in sim.events() {
        match e {
            SimEvent::Completion { time_ns, .. } => completions.push(*time_ns),
            SimEvent::Publish { time_ns, .. } => publishes.push(*time_ns),
            _ => {}
        }
    }
    assert_eq!(completions, publishes, "publication rides completion");
    for (k, t) in publishes.iter().enumerate() {
        let release = k as u64 * 1_000_000;
        assert!(*t > release && *t < release + 1_000_000, "{t}");
    }
}

#[test]
fn bus_latency_delays_remote_boards_only() {
    // Producer on one node, consumer board copy on the other.
    let net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block("g", BasicOp::Gain { k: 3.0 })
        .connect("x", "g.x")
        .unwrap()
        .connect("g.y", "y")
        .unwrap()
        .build()
        .unwrap();
    let producer = ActorBuilder::new("Prod", net.clone())
        .input("x", "in")
        .output("y", "mid")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let consumer = ActorBuilder::new("Cons", net)
        .input("x", "mid")
        .output("y", "out")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut na = NodeSpec::new("a", 50_000_000);
    na.actors.push(producer);
    let mut nb = NodeSpec::new("b", 50_000_000);
    nb.actors.push(consumer);
    let system = System::new("pair").with_node(na).with_node(nb);

    let mut sim = boot(
        &system,
        InstrumentOptions::none(),
        SimConfig {
            bus_latency_ns: 300_000,
            ..SimConfig::default()
        },
    );
    sim.schedule_signal(0, "in", SignalValue::Real(2.0))
        .unwrap();
    // Producer publishes mid = 6 at t = 1 ms on its own board…
    sim.run_until(1_000_000).unwrap();
    assert_eq!(sim.read_signal("a", "mid").unwrap(), SignalValue::Real(6.0));
    assert_eq!(sim.read_signal("b", "mid").unwrap(), SignalValue::Real(0.0));
    // …and node b sees it only after the bus latency.
    sim.run_until(1_300_000).unwrap();
    assert_eq!(sim.read_signal("b", "mid").unwrap(), SignalValue::Real(6.0));
}

#[test]
fn overload_reports_deadline_misses_and_late_publication() {
    // 40 PID stages at 1 MHz: far more demand than one 1 ms period.
    let mut b = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"));
    let mut prev = "x".to_owned();
    for i in 0..40 {
        let name = format!("p{i}");
        b = b.block(
            &name,
            BasicOp::Pid {
                kp: 1.0,
                ki: 0.1,
                kd: 0.01,
                lo: -1e9,
                hi: 1e9,
            },
        );
        b = b.connect(&prev, &format!("{name}.sp")).unwrap();
        prev = format!("{name}.u");
    }
    let net = b.connect(&prev, "y").unwrap().build().unwrap();
    let actor = ActorBuilder::new("Heavy", net)
        .input("x", "in")
        .output("y", "out")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 1_000_000);
    node.actors.push(actor);
    let system = System::new("overload").with_node(node);

    let mut sim = boot(&system, InstrumentOptions::none(), SimConfig::default());
    sim.run_until(8_000_000).unwrap();
    let misses = sim
        .events()
        .iter()
        .filter(|e| matches!(e, SimEvent::DeadlineMiss { .. }))
        .count();
    assert!(misses > 0, "an overloaded CPU must miss deadlines");
    // A late activation publishes when it completes, not at the deadline.
    let first_miss = sim
        .events()
        .iter()
        .find_map(|e| match e {
            SimEvent::DeadlineMiss {
                time_ns,
                overrun_ns,
                ..
            } => Some((*time_ns, *overrun_ns)),
            _ => None,
        })
        .unwrap();
    assert!(first_miss.1 > 0);
}

#[test]
fn unknown_names_are_rejected() {
    let system = ring_system(3, 0.002, 1_000_000);
    let mut sim = boot(&system, InstrumentOptions::none(), SimConfig::default());
    assert!(sim
        .schedule_signal(0, "ghost", SignalValue::Real(0.0))
        .is_err());
    assert!(sim.read_signal("ecu", "ghost").is_err());
    assert!(sim.read_signal("nope", "state_sig").is_err());
    assert!(sim.cycles_executed("nope").is_err());
    assert!(sim.uart_take("nope").is_err());
    let mut monitor = JtagMonitor::new(1_000_000, 10_000_000);
    assert!(monitor.watch(&sim, "ecu", "Ring/ring#ghost").is_err());
    assert!(monitor.watch(&sim, "nope", "Ring/ring#state").is_err());
}

#[test]
fn clock_jitter_moves_releases_but_stays_deterministic() {
    let system = ring_system(4, 0.002, 1_000_000);
    let jittered = SimConfig {
        clock_jitter_ns: 200_000,
        ..SimConfig::default()
    };
    let mut sim = boot(&system, InstrumentOptions::none(), jittered);
    sim.run_until(10_000_000).unwrap();
    let releases: Vec<u64> = sim
        .events()
        .iter()
        .filter_map(|e| match e {
            SimEvent::Release { time_ns, .. } => Some(*time_ns),
            _ => None,
        })
        .collect();
    assert!(releases.len() >= 9);
    // At least one release must actually be displaced from its nominal
    // k·period instant, and none may be early.
    let mut displaced = 0;
    for (k, t) in releases.iter().enumerate() {
        let nominal = k as u64 * 1_000_000;
        assert!(*t >= nominal && *t <= nominal + 200_000, "{t} vs {nominal}");
        if *t != nominal {
            displaced += 1;
        }
    }
    assert!(displaced > 0, "jitter model had no effect: {releases:?}");
}

#[test]
fn oversized_jitter_is_capped_and_time_stays_monotone() {
    // Jitter far above the 1 ms period: releases must still be capped
    // below one period apart from nominal and the event log must never
    // run backward.
    let system = ring_system(4, 0.002, 1_000_000);
    let mut sim = boot(
        &system,
        InstrumentOptions::none(),
        SimConfig {
            clock_jitter_ns: 50_000_000,
            ..SimConfig::default()
        },
    );
    sim.run_until(20_000_000).unwrap();
    let mut releases = Vec::new();
    let mut last_t = 0;
    for e in sim.events() {
        assert!(e.time_ns() >= last_t, "event log ran backward: {e:?}");
        last_t = last_t.max(e.time_ns());
        if let SimEvent::Release { time_ns, .. } = e {
            releases.push(*time_ns);
        }
    }
    assert!(releases.len() >= 19);
    for (k, t) in releases.iter().enumerate() {
        let nominal = k as u64 * 1_000_000;
        assert!(
            *t >= nominal && *t < nominal + 1_000_000,
            "{t} vs {nominal}"
        );
    }
}

#[test]
fn jtag_monitor_resyncs_after_direct_simulator_advance() {
    let system = ring_system(8, 0.001, 1_000_000);
    let mut sim = boot(&system, InstrumentOptions::none(), SimConfig::default());
    let mut monitor = JtagMonitor::new(2_000_000, 10_000_000);
    monitor.watch(&sim, "ecu", "Ring/ring#state").unwrap();
    monitor.run_until(&mut sim, 4_000_000).unwrap();
    // The caller advances the platform without the probe attached…
    sim.run_until(20_000_000).unwrap();
    // …and the next monitored window must stamp hits with poll instants
    // inside it, never with stale pre-advance times.
    let hits = monitor.run_until(&mut sim, 26_000_000).unwrap();
    assert!(!hits.is_empty());
    for h in &hits {
        assert!(h.time_ns >= 20_000_000, "stale poll timestamp: {h:?}");
        assert_eq!(h.time_ns % 2_000_000, 0);
    }
}

#[test]
fn sub_cycle_stepping_matches_one_big_run() {
    // On a 1 MHz node a cycle is 1000 ns. Stepping run_until in 999 ns
    // increments — below the cycle time — must produce exactly the same
    // completions as one big run: execution progress is anchored to the
    // schedule, not to caller stepping granularity.
    let net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block(
            "p",
            BasicOp::Pid {
                kp: 1.0,
                ki: 0.1,
                kd: 0.01,
                lo: -1e9,
                hi: 1e9,
            },
        )
        .connect("x", "p.sp")
        .unwrap()
        .connect("p.u", "y")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Ctl", net)
        .input("x", "in")
        .output("y", "out")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 1_000_000);
    node.actors.push(actor);
    let system = System::new("slow").with_node(node);

    let mut big = boot(&system, InstrumentOptions::none(), SimConfig::default());
    big.run_until(5_000_000).unwrap();

    let mut fine = boot(&system, InstrumentOptions::none(), SimConfig::default());
    let mut t = 0;
    while t < 5_000_000 {
        t = (t + 999).min(5_000_000);
        fine.run_until(t).unwrap();
    }

    assert_eq!(
        format!("{:?}", big.events()),
        format!("{:?}", fine.events())
    );
    assert!(
        big.events()
            .iter()
            .any(|e| matches!(e, SimEvent::Completion { .. })),
        "the slow task must still complete"
    );
    assert_eq!(
        big.cycles_executed("ecu").unwrap(),
        fine.cycles_executed("ecu").unwrap()
    );
}

#[test]
fn tick_plus_jitter_never_collapses_two_releases() {
    // tick 4 µs + jitter up to 9.999 µs on a 10 µs period: without the
    // tightened jitter cap, quantization collapses consecutive jittered
    // releases onto one tick (e.g. k=80 and k=81 both at 812 µs with the
    // default seed), double-stepping the task. Releases must stay
    // strictly increasing per task.
    let system = ring_system(4, 0.00002, 10_000);
    let mut sim = boot(
        &system,
        InstrumentOptions::none(),
        SimConfig {
            tick_ns: 4_000,
            clock_jitter_ns: 9_999,
            ..SimConfig::default()
        },
    );
    sim.run_until(2_000_000).unwrap();
    let releases: Vec<u64> = sim
        .events()
        .iter()
        .filter_map(|e| match e {
            SimEvent::Release { time_ns, .. } => Some(*time_ns),
            _ => None,
        })
        .collect();
    assert!(releases.len() >= 190);
    for w in releases.windows(2) {
        assert!(w[0] < w[1], "same-instant double release at {w:?}");
    }
}

#[test]
fn tick_at_or_above_a_period_is_rejected() {
    let system = ring_system(3, 0.002, 1_000_000);
    let image = compile_system(&system, &CompileOptions::default()).unwrap();
    let err = Simulator::new(
        image,
        SimConfig {
            tick_ns: 1_000_000,
            ..SimConfig::default()
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("tick_ns"), "{err}");
}

#[test]
fn tick_quantization_aligns_releases() {
    let system = ring_system(4, 0.002, 1_000_000);
    // 1 ms period with an offset-free task and a 300 µs tick: releases
    // land on lcm boundaries (multiples of 300 µs at or after nominal).
    let mut sim = boot(
        &system,
        InstrumentOptions::none(),
        SimConfig {
            tick_ns: 300_000,
            ..SimConfig::default()
        },
    );
    sim.run_until(10_000_000).unwrap();
    for e in sim.events() {
        if let SimEvent::Release { time_ns, .. } = e {
            assert_eq!(time_ns % 300_000, 0, "release off the kernel tick");
        }
    }
}
