//! Calendar-vs-scan equivalence and memoization exactness.
//!
//! The PR 2 determinism contract says: same image + same config ⇒ the
//! same event log, byte stream, and trace, bit for bit, no matter how
//! the run is sliced. This suite extends that contract across the two
//! perf knobs introduced with the event calendar:
//!
//! * [`DispatchMode::Calendar`] vs [`DispatchMode::LegacyScan`] (the
//!   original full-rescan dispatcher, kept as the oracle), and
//! * [`SimConfig::memo_steps`] on vs off,
//!
//! over randomized multi-node images (FSMs, filters, cross-node
//! relays), jitter seeds, tick/latency models, and slice partitions.
//! In debug builds the indexed job picker additionally cross-checks
//! itself against the scan picker on every single pick, so any index
//! divergence fails these tests immediately even if the end state
//! happened to agree.

use gmdf_codegen::{compile_system, CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, SignalValue, System,
    Timing, VAR_TIME_IN_STATE,
};
use gmdf_target::{DispatchMode, SimConfig, SimEvent, Simulator};
use proptest::prelude::*;

// -- randomized workload ----------------------------------------------------

/// What one generated actor does.
#[derive(Debug, Clone, Copy)]
enum ActorKind {
    /// Ring FSM dwelling per state — never quiescent (its time-in-state
    /// counter advances), exercising the memo *miss* path.
    Ring { states: usize },
    /// Low-pass filter over the global stimulus label `u` — quiescent
    /// whenever `u` and its internal state are stable.
    Filter,
    /// Gain stage consuming the most recent real-valued label produced
    /// by an earlier actor (possibly on another node — exercising
    /// broadcast deliveries), or `u` if there is none yet.
    Relay,
}

#[derive(Debug, Clone)]
struct ActorSpec {
    kind: ActorKind,
    period_ns: u64,
    offset_ns: u64,
    /// `true`: deadline = period / 2 (tight — provokes deadline misses
    /// and the late-publication path under load).
    tight_deadline: bool,
    priority: u8,
}

/// Builds a multi-node system from per-node actor specs. Every actor
/// publishes its own label; relays chain real-valued labels across
/// nodes so bus deliveries carry data the behaviour depends on.
fn build_system(nodes: &[Vec<ActorSpec>]) -> System {
    let mut system = System::new("prop_sys");
    let mut last_real_label: Option<String> = None;
    for (ni, actors) in nodes.iter().enumerate() {
        let mut node = NodeSpec::new(&format!("n{ni}"), 50_000_000);
        for (ai, spec) in actors.iter().enumerate() {
            let timing = Timing {
                period_ns: spec.period_ns,
                offset_ns: spec.offset_ns,
                deadline_ns: if spec.tight_deadline {
                    spec.period_ns / 2
                } else {
                    spec.period_ns
                },
                priority: spec.priority,
            };
            let out_label = format!("sig_{ni}_{ai}");
            let actor = match spec.kind {
                ActorKind::Ring { states } => {
                    let mut fb = FsmBuilder::new().output(Port::int("s"));
                    for i in 0..states {
                        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i as i64)));
                    }
                    for i in 0..states {
                        fb = fb.transition(
                            &format!("S{i}"),
                            &format!("S{}", (i + 1) % states),
                            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.0015)),
                        );
                    }
                    let fsm = fb.initial("S0").build().unwrap();
                    let net = NetworkBuilder::new()
                        .output(Port::int("s"))
                        .state_machine("ring", fsm)
                        .connect("ring.s", "s")
                        .unwrap()
                        .build()
                        .unwrap();
                    ActorBuilder::new(&format!("Ring{ni}_{ai}"), net)
                        .output("s", &out_label)
                        .timing(timing)
                        .build()
                        .unwrap()
                }
                ActorKind::Filter => {
                    let net = NetworkBuilder::new()
                        .input(Port::real("x"))
                        .output(Port::real("y"))
                        .block("lp", BasicOp::LowPass { alpha: 0.5 })
                        .connect("x", "lp.x")
                        .unwrap()
                        .connect("lp.y", "y")
                        .unwrap()
                        .build()
                        .unwrap();
                    let actor = ActorBuilder::new(&format!("Filter{ni}_{ai}"), net)
                        .input("x", "u")
                        .output("y", &out_label)
                        .timing(timing)
                        .build()
                        .unwrap();
                    last_real_label = Some(out_label.clone());
                    actor
                }
                ActorKind::Relay => {
                    let src = last_real_label.clone().unwrap_or_else(|| "u".to_owned());
                    let net = NetworkBuilder::new()
                        .input(Port::real("x"))
                        .output(Port::real("y"))
                        .block("g", BasicOp::Gain { k: 1.5 })
                        .connect("x", "g.x")
                        .unwrap()
                        .connect("g.y", "y")
                        .unwrap()
                        .build()
                        .unwrap();
                    let actor = ActorBuilder::new(&format!("Relay{ni}_{ai}"), net)
                        .input("x", &src)
                        .output("y", &out_label)
                        .timing(timing)
                        .build()
                        .unwrap();
                    last_real_label = Some(out_label.clone());
                    actor
                }
            };
            node.actors.push(actor);
        }
        system = system.with_node(node);
    }
    system
}

fn arb_actor() -> impl Strategy<Value = ActorSpec> {
    (
        (0u8..3, 2usize..5, 0usize..4 /* period selector */),
        (0usize..3 /* offset selector */, any::<bool>(), 0u8..3),
    )
        .prop_map(|((kind, states, pi), (oi, tight_deadline, priority))| {
            let kind = match kind {
                0 => ActorKind::Ring { states },
                1 => ActorKind::Filter,
                _ => ActorKind::Relay,
            };
            ActorSpec {
                kind,
                period_ns: [500_000, 1_000_000, 1_250_000, 2_000_000][pi],
                offset_ns: [0, 137_000, 250_000][oi],
                tight_deadline,
                priority,
            }
        })
}

fn arb_nodes() -> impl Strategy<Value = Vec<Vec<ActorSpec>>> {
    proptest::collection::vec(proptest::collection::vec(arb_actor(), 1..4), 1..4)
}

/// Random platform knobs shared by all simulators of one case.
#[derive(Debug, Clone)]
struct PlatformSpec {
    seed: u64,
    clock_jitter_ns: u64,
    tick_ns: u64,
    bus_latency_ns: u64,
    latch_outputs: bool,
    instrument: u8,
}

fn arb_platform() -> impl Strategy<Value = PlatformSpec> {
    (
        any::<u64>(),
        prop_oneof![Just(0u64), Just(40_000u64)],
        prop_oneof![Just(0u64), Just(100_000u64)],
        prop_oneof![Just(0u64), Just(150_000u64)],
        any::<bool>(),
    )
        .prop_map(
            |(seed, clock_jitter_ns, tick_ns, bus_latency_ns, latch_outputs)| PlatformSpec {
                seed,
                clock_jitter_ns,
                tick_ns,
                bus_latency_ns,
                latch_outputs,
                instrument: (seed % 3) as u8,
            },
        )
}

fn config_of(p: &PlatformSpec, dispatch: DispatchMode, memo_steps: bool) -> SimConfig {
    SimConfig {
        latch_outputs: p.latch_outputs,
        bus_latency_ns: p.bus_latency_ns,
        uart_baud: 1_000_000,
        tick_ns: p.tick_ns,
        clock_jitter_ns: p.clock_jitter_ns,
        seed: p.seed,
        dispatch,
        memo_steps,
        ..SimConfig::default()
    }
}

const HORIZON_NS: u64 = 20_000_000;

/// Runs the image under `config`, either one-shot or over `slices`
/// (cycled until the horizon), and returns the observables the
/// determinism contract covers: the debug-formatted event log and each
/// node's timestamped UART bytes.
fn observe(
    system: &System,
    p: &PlatformSpec,
    config: SimConfig,
    slices: Option<&[u64]>,
) -> (String, Vec<Vec<(u64, u8)>>) {
    let instrument = match p.instrument {
        0 => InstrumentOptions::none(),
        1 => InstrumentOptions::behavior(),
        _ => InstrumentOptions::full(),
    };
    let image = compile_system(
        system,
        &CompileOptions {
            instrument,
            faults: vec![],
        },
    )
    .expect("compiles");
    let node_names: Vec<String> = image.nodes.iter().map(|n| n.node.clone()).collect();
    let mut sim = Simulator::new(image, config).expect("boots");
    // Stimuli on `u`: a step profile every 3 ms, plus one mid-slice.
    for k in 0..7u64 {
        sim.schedule_signal(k * 3_000_000, "u", SignalValue::Real((k % 3) as f64))
            .ok(); // systems without a `u` consumer reject the label
    }
    match slices {
        None => sim.run_until(HORIZON_NS).expect("runs"),
        Some(slices) => {
            let mut k = 0usize;
            while sim.now_ns() < HORIZON_NS {
                let dt = slices[k % slices.len()].min(HORIZON_NS - sim.now_ns());
                sim.run_for_slice(dt).expect("runs");
                k += 1;
            }
        }
    }
    let bytes = node_names
        .iter()
        .map(|n| sim.uart_take(n).expect("known node"))
        .collect();
    (format!("{:?}", sim.events()), bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The tentpole equivalence: a calendar-dispatched, memoized,
    /// arbitrarily sliced run is observably identical to the legacy
    /// full-scan, unmemoized, one-shot run — over random images,
    /// jitter seeds, tick/latency models and slice partitions.
    #[test]
    fn calendar_memo_sliced_equals_scan_oneshot(
        nodes in arb_nodes(),
        platform in arb_platform(),
        slices in proptest::collection::vec(
            prop_oneof![
                Just(13u64),
                Just(333u64),
                Just(70_001u64),
                Just(1_250_000u64),
                Just(5_000_000u64),
            ],
            1..6,
        ),
    ) {
        let system = build_system(&nodes);
        let oracle = observe(
            &system,
            &platform,
            config_of(&platform, DispatchMode::LegacyScan, false),
            None,
        );
        let calendar_sliced = observe(
            &system,
            &platform,
            config_of(&platform, DispatchMode::Calendar, true),
            Some(&slices),
        );
        prop_assert_eq!(&oracle.0, &calendar_sliced.0, "event logs diverged");
        prop_assert_eq!(&oracle.1, &calendar_sliced.1, "UART streams diverged");
        // Memo off on the calendar path: isolates dispatch from caching.
        let calendar_plain = observe(
            &system,
            &platform,
            config_of(&platform, DispatchMode::Calendar, false),
            None,
        );
        prop_assert_eq!(&oracle.0, &calendar_plain.0);
        prop_assert_eq!(&oracle.1, &calendar_plain.1);
    }
}

// -- memoization ------------------------------------------------------------

/// A single-node stateless pipeline (`y = 2x`): quiescent whenever the
/// stimulus holds still, so the memo should absorb almost every release.
fn doubler_system() -> System {
    let net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block("g", BasicOp::Gain { k: 2.0 })
        .connect("x", "g.x")
        .unwrap()
        .connect("g.y", "y")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Doubler", net)
        .input("x", "in")
        .output("y", "out")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    System::new("doubler").with_node(node)
}

fn boot(system: &System, config: SimConfig) -> Simulator {
    let image = compile_system(
        system,
        &CompileOptions {
            instrument: InstrumentOptions::full(),
            faults: vec![],
        },
    )
    .expect("compiles");
    Simulator::new(image, config).expect("boots")
}

#[test]
fn memo_hits_skip_the_vm_without_changing_behaviour() {
    let system = doubler_system();
    let run = |memo_steps: bool| {
        let mut sim = boot(
            &system,
            SimConfig {
                memo_steps,
                ..SimConfig::default()
            },
        );
        sim.schedule_signal(0, "in", SignalValue::Real(3.0))
            .unwrap();
        // One input change mid-run: a new footprint, then quiescence again.
        sim.schedule_signal(10_500_000, "in", SignalValue::Real(7.0))
            .unwrap();
        sim.run_until(20_000_000).unwrap();
        let bytes = sim.uart_take("ecu").unwrap();
        let out = sim.read_signal("ecu", "out").unwrap();
        (format!("{:?}", sim.events()), bytes, out, sim.memo_stats())
    };
    let (ev_on, bytes_on, out_on, (hits, misses)) = run(true);
    let (ev_off, bytes_off, out_off, (hits_off, misses_off)) = run(false);
    // The counter proves the VM was actually skipped…
    assert!(
        hits >= 15,
        "expected most releases to hit the cache: {hits}"
    );
    // Two misses per input plateau: the step that sees the new input,
    // and the next one (the output latch — part of the footprint — only
    // settles to the new value after that first step).
    assert_eq!(misses, 4, "two cold misses per distinct input plateau");
    assert_eq!((hits_off, misses_off), (0, 0), "memo off must not count");
    // …while every observable stays bit-identical.
    assert_eq!(ev_on, ev_off);
    assert_eq!(bytes_on, bytes_off);
    assert_eq!(out_on, out_off);
    assert_eq!(out_on, SignalValue::Real(14.0));
}

#[test]
fn cyclic_fsm_footprints_repeat_and_stay_exact() {
    // A dwelling ring FSM is never *quiescent* — its time-in-state cell
    // advances every activation — but its (state, dwell-ticks) space is
    // finite and cyclic: 3 states × 2 activations each. After one full
    // lap the footprints repeat, so the memo starts hitting, and the
    // memoized run must still match the unmemoized one exactly.
    let mut fb = FsmBuilder::new().output(Port::int("s"));
    for i in 0..3 {
        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i)));
    }
    for i in 0..3 {
        fb = fb.transition(
            &format!("S{i}"),
            &format!("S{}", (i + 1) % 3),
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        );
    }
    let fsm = fb.initial("S0").build().unwrap();
    let net = NetworkBuilder::new()
        .output(Port::int("s"))
        .state_machine("ring", fsm)
        .connect("ring.s", "s")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Ring", net)
        .output("s", "state_sig")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    let system = System::new("ring").with_node(node);

    let mut memoized = boot(&system, SimConfig::default());
    memoized.run_until(15_000_000).unwrap();
    let (hits, misses) = memoized.memo_stats();
    assert!(hits >= 6, "the second lap onwards should hit: {hits}");
    assert!(
        misses <= 9,
        "misses bounded by the warm-up lap, not the horizon: {misses}"
    );

    let mut plain = boot(
        &system,
        SimConfig {
            memo_steps: false,
            ..SimConfig::default()
        },
    );
    plain.run_until(15_000_000).unwrap();
    assert_eq!(
        format!("{:?}", memoized.events()),
        format!("{:?}", plain.events())
    );
    assert_eq!(
        memoized.uart_take("ecu").unwrap(),
        plain.uart_take("ecu").unwrap()
    );
}

#[test]
fn uart_take_into_appends_and_matches_uart_take() {
    let system = doubler_system();
    let mut a = boot(&system, SimConfig::default());
    let mut b = boot(&system, SimConfig::default());
    for sim in [&mut a, &mut b] {
        sim.schedule_signal(0, "in", SignalValue::Real(1.0))
            .unwrap();
        sim.run_until(5_000_000).unwrap();
    }
    let taken = a.uart_take("ecu").unwrap();
    let mut buf = vec![(0u64, 0xEEu8)]; // pre-existing content survives
    let n = b.uart_take_into("ecu", &mut buf).unwrap();
    assert_eq!(n, taken.len());
    assert_eq!(buf[0], (0, 0xEE));
    assert_eq!(&buf[1..], &taken[..]);
    // The queue is drained: a second take yields nothing new.
    assert_eq!(b.uart_take_into("ecu", &mut buf).unwrap(), 0);
}

// -- calendar-specific edges ------------------------------------------------

#[test]
fn legacy_scan_knob_round_trips_through_config() {
    let system = doubler_system();
    let sim = boot(
        &system,
        SimConfig {
            dispatch: DispatchMode::LegacyScan,
            ..SimConfig::default()
        },
    );
    assert_eq!(sim.config().dispatch, DispatchMode::LegacyScan);
    assert_eq!(SimConfig::default().dispatch, DispatchMode::Calendar);
}

#[test]
fn deadline_miss_path_is_identical_across_dispatch_modes() {
    // Tight deadlines + a slow CPU force misses and late publication;
    // both dispatchers must tell the identical story.
    let net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block(
            "p",
            BasicOp::Pid {
                kp: 1.0,
                ki: 0.1,
                kd: 0.01,
                lo: -1e9,
                hi: 1e9,
            },
        )
        .connect("x", "p.sp")
        .unwrap()
        .connect("p.u", "y")
        .unwrap()
        .build()
        .unwrap();
    let actor = ActorBuilder::new("Pid", net)
        .input("x", "u")
        .output("y", "out")
        .timing(Timing {
            period_ns: 100_000,
            offset_ns: 0,
            deadline_ns: 10_000,
            priority: 0,
        })
        .build()
        .unwrap();
    let mut node = NodeSpec::new("slow", 1_000_000); // 1 MHz CPU
    node.actors.push(actor);
    let system = System::new("overload").with_node(node);

    let observe = |dispatch| {
        let mut sim = boot(
            &system,
            SimConfig {
                dispatch,
                ..SimConfig::default()
            },
        );
        sim.schedule_signal(0, "u", SignalValue::Real(5.0)).unwrap();
        sim.run_until(3_000_000).unwrap();
        assert!(
            sim.events()
                .iter()
                .any(|e| matches!(e, SimEvent::DeadlineMiss { .. })),
            "workload must actually overload the CPU"
        );
        (
            format!("{:?}", sim.events()),
            sim.uart_take("slow").unwrap(),
        )
    };
    assert_eq!(
        observe(DispatchMode::Calendar),
        observe(DispatchMode::LegacyScan)
    );
}
