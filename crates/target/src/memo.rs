//! Bit-exact VM step memoization.
//!
//! Task code on this platform is a deterministic stack machine whose
//! only persistent interface is the node's data segment, addressed by
//! *static* `Load`/`Store` operands. That makes a task step a pure
//! function of the values its code can possibly read or overwrite — the
//! **footprint**: the union of its static load and store addresses.
//!
//! [`TaskMemo`] caches, per footprint valuation:
//!
//! * the cycle count and emitted frames ([`RunResult`] equivalents), and
//! * the post-run values of every static store address.
//!
//! On a hit the kernel skips [`vm::run`] entirely and replays the cached
//! store values. This is exact, not approximate:
//!
//! * identical footprint values ⇒ the deterministic VM takes the
//!   identical path ⇒ identical cycles, emits and writes;
//! * a store address the path never executes keeps its pre-run value —
//!   which is part of the key, so the cached "post" value equals the
//!   current value and replaying it is a no-op;
//! * cells outside the footprint are untouched by either path.
//!
//! Quiescent tasks (inputs and internal state unchanged — the common
//! case in mostly-idle embedded fleets) therefore cost a key probe
//! instead of a full VM execution, without moving a single bit of
//! observable behaviour. The cache is capped and evicts in insertion
//! order, keeping memory bounded and behaviour independent of hash
//! iteration order.
//!
//! [`vm::run`]: gmdf_codegen::vm::run

use gmdf_codegen::{vm::RunResult, Frame, Instr};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a folding whole `u64` words — the memo probes once per release,
/// and SipHash's per-probe setup would eat a good slice of the VM run
/// it is trying to skip. Collisions only cost a bucket walk; equality
/// is always verified on the full key.
#[derive(Debug, Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Cached entries per task. Generously above the state-space size of
/// typical periodic tasks (a handful of FSM states × input plateaus);
/// pathological tasks that never repeat a footprint just miss.
const MEMO_CAP: usize = 256;

/// One cached task-step execution.
#[derive(Debug, Clone)]
struct CachedStep {
    /// Total cycles the step consumed.
    cycles: u64,
    /// `(cycle offset, frame)` pairs the step emitted.
    emits: Vec<(u64, Frame)>,
    /// Post-run values of the task's static store addresses, aligned
    /// with [`TaskMemo::stores`].
    post_stores: Vec<u64>,
}

/// The memo table of one task: static footprint plus cached executions.
#[derive(Debug)]
pub(crate) struct TaskMemo {
    /// Sorted, deduplicated union of the code's `Load` and `Store`
    /// addresses — the cells that can influence or be changed by a step.
    footprint: Vec<u32>,
    /// Sorted, deduplicated `Store` addresses — the cells a step can
    /// change.
    stores: Vec<u32>,
    entries: FnvMap<Vec<u64>, CachedStep>,
    /// Keys in insertion order, for deterministic FIFO eviction.
    order: VecDeque<Vec<u64>>,
    /// Scratch buffer for key construction. Hits reuse it probe after
    /// probe with no allocation; a miss donates it to the map as the
    /// stored key (so the probe after a miss regrows it once).
    key_buf: Vec<u64>,
}

impl TaskMemo {
    /// Derives the static footprint of `code`.
    pub fn new(code: &[Instr]) -> Self {
        let mut footprint = Vec::new();
        let mut stores = Vec::new();
        for instr in code {
            match *instr {
                Instr::Load(a) => footprint.push(a),
                Instr::Store(a) => {
                    footprint.push(a);
                    stores.push(a);
                }
                _ => {}
            }
        }
        footprint.sort_unstable();
        footprint.dedup();
        stores.sort_unstable();
        stores.dedup();
        TaskMemo {
            footprint,
            stores,
            entries: FnvMap::default(),
            order: VecDeque::new(),
            key_buf: Vec::new(),
        }
    }

    /// Probes the cache against the current data segment. On a hit,
    /// replays the cached stores into `data` and returns the cached
    /// result; the caller must not run the VM.
    pub fn lookup_and_apply(&mut self, data: &mut [u64]) -> Option<RunResult> {
        self.key_buf.clear();
        self.key_buf
            .extend(self.footprint.iter().map(|&a| data[a as usize]));
        let cached = self.entries.get(&self.key_buf)?;
        for (&addr, &value) in self.stores.iter().zip(&cached.post_stores) {
            data[addr as usize] = value;
        }
        Some(RunResult {
            cycles: cached.cycles,
            emits: cached.emits.clone(),
        })
    }

    /// Records a miss: `pre_key` is the footprint valuation captured
    /// before the VM ran (by [`TaskMemo::lookup_and_apply`], which
    /// leaves it in the scratch buffer), `data` the post-run segment.
    pub fn record(&mut self, data: &[u64], result: &RunResult) {
        if self.entries.len() >= MEMO_CAP {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
            }
        }
        let key = std::mem::take(&mut self.key_buf);
        let step = CachedStep {
            cycles: result.cycles,
            emits: result.emits.clone(),
            post_stores: self.stores.iter().map(|&a| data[a as usize]).collect(),
        };
        self.order.push_back(key.clone());
        self.entries.insert(key, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_codegen::vm;

    /// `data[1] = data[0] * 2; emit(7, data[1])` — footprint {0, 1}.
    fn doubler() -> Vec<Instr> {
        vec![
            Instr::Load(0),
            Instr::PushI(2),
            Instr::MulI,
            Instr::Store(1),
            Instr::Load(1),
            Instr::Emit { event: 7, argc: 1 },
            Instr::Halt,
        ]
    }

    #[test]
    fn footprint_is_static_loads_and_stores() {
        let m = TaskMemo::new(&doubler());
        assert_eq!(m.footprint, vec![0, 1]);
        assert_eq!(m.stores, vec![1]);
    }

    #[test]
    fn hit_replays_the_exact_execution() {
        let code = doubler();
        let mut memo = TaskMemo::new(&code);
        let mut data = vec![21u64, 0];
        assert!(memo.lookup_and_apply(&mut data).is_none());
        let r = vm::run(&code, &mut data, 1000).unwrap();
        memo.record(&data, &r);
        // Same inputs again: a fresh segment with the same footprint.
        let mut data2 = vec![21u64, 0];
        let cached = memo.lookup_and_apply(&mut data2).expect("hit");
        assert_eq!(cached, r);
        assert_eq!(data2, data);
        // Different input: miss.
        let mut data3 = vec![22u64, 0];
        assert!(memo.lookup_and_apply(&mut data3).is_none());
    }

    #[test]
    fn eviction_keeps_the_table_bounded() {
        let code = doubler();
        let mut memo = TaskMemo::new(&code);
        for i in 0..(MEMO_CAP as u64 + 10) {
            let mut data = vec![i, 0];
            if memo.lookup_and_apply(&mut data).is_none() {
                let r = vm::run(&code, &mut data, 1000).unwrap();
                memo.record(&data, &r);
            }
        }
        assert!(memo.entries.len() <= MEMO_CAP);
        // The newest entry is still cached…
        let mut data = vec![MEMO_CAP as u64 + 9, 0];
        assert!(memo.lookup_and_apply(&mut data).is_some());
        // …and the oldest was evicted.
        let mut data0 = vec![0u64, 0];
        assert!(memo.lookup_and_apply(&mut data0).is_none());
    }
}
