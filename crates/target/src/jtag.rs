//! The passive command interface: an IEEE 1149.1-style watch unit.
//!
//! "A command interface could be implemented … without any code
//! modifications" (paper §II): instead of instrumenting the generated
//! code, the debugger selects *monitored variables* — symbol-table cells
//! such as a state machine's `#state` cell — and a JTAG probe scans them
//! out on a fixed polling period. The target spends **zero** cycles; the
//! host pays TAP scan time instead, which [`JtagMonitor::scan_ns_total`]
//! accounts.

use crate::error::SimError;
use crate::event::WatchEvent;
use crate::sim::Simulator;
use gmdf_comdes::{SignalType, SignalValue};
use serde::{Deserialize, Serialize};

/// TAP bits per 64-bit data scan: instruction-register preamble plus the
/// data register and state-machine overhead.
const SCAN_BITS: u64 = 88;

/// One watched symbol-table cell.
#[derive(Debug)]
struct Watch {
    node: String,
    node_idx: usize,
    symbol: String,
    addr: u32,
    ty: SignalType,
    last_raw: Option<u64>,
}

/// A polling JTAG probe over a [`Simulator`]'s memory.
///
/// Watches are scanned in registration order at every poll instant
/// (multiples of the poll period). A [`WatchEvent`] is reported whenever
/// a scan observes a value different from the previous scan — including
/// the very first scan, which reports the initial value. Changes faster
/// than the poll period coalesce: only the value visible at the poll
/// instant is seen, exactly like real watchpoint polling.
#[derive(Debug)]
pub struct JtagMonitor {
    poll_period_ns: u64,
    tck_hz: u64,
    /// Cumulative host-side scan time, in nanoseconds — the cost the
    /// passive channel pays instead of target cycles.
    pub scan_ns_total: u64,
    watches: Vec<Watch>,
    next_poll_ns: Option<u64>,
}

impl JtagMonitor {
    /// Creates a probe polling every `poll_period_ns` over a
    /// `tck_hz` TAP clock.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero — a probe without a clock or a
    /// period cannot scan.
    pub fn new(poll_period_ns: u64, tck_hz: u64) -> Self {
        assert!(poll_period_ns > 0, "poll period must be nonzero");
        assert!(tck_hz > 0, "TCK frequency must be nonzero");
        JtagMonitor {
            poll_period_ns,
            tck_hz,
            scan_ns_total: 0,
            watches: Vec::new(),
            next_poll_ns: None,
        }
    }

    /// The configured poll period.
    pub fn poll_period_ns(&self) -> u64 {
        self.poll_period_ns
    }

    /// Number of watched cells.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }

    /// Adds `symbol` on `node` to the watch list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] / [`SimError::UnknownSymbol`]
    /// when the cell cannot be resolved against the deployed image.
    pub fn watch(&mut self, sim: &Simulator, node: &str, symbol: &str) -> Result<(), SimError> {
        let node_idx = sim.node_index(node)?;
        let sym = sim.resolve_symbol(node_idx, symbol)?;
        self.watches.push(Watch {
            node: node.to_owned(),
            node_idx,
            symbol: symbol.to_owned(),
            addr: sym.addr,
            ty: sym.ty,
            last_raw: None,
        });
        Ok(())
    }

    /// Drives the simulator to `t_end_ns`, scanning all watches at every
    /// poll instant on the way; returns the observed changes in
    /// (poll time, registration order).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_until(
        &mut self,
        sim: &mut Simulator,
        t_end_ns: u64,
    ) -> Result<Vec<WatchEvent>, SimError> {
        let mut hits = Vec::new();
        let scan_ns = (SCAN_BITS as u128 * 1_000_000_000 / self.tck_hz as u128) as u64;
        // Polls land on period multiples, starting at the first one not
        // in the past — including the current instant. A stored poll
        // instant that the simulator has already run past (the caller
        // advanced it directly between calls) resynchronizes the same
        // way: scanning memory "at" an instant the platform has left
        // behind would stamp watch events with times that never match
        // the values observed.
        let mut next = match self.next_poll_ns {
            Some(t) if t >= sim.now_ns() => t,
            _ => sim.now_ns().div_ceil(self.poll_period_ns) * self.poll_period_ns,
        };
        while next <= t_end_ns {
            sim.run_until(next)?;
            for w in &mut self.watches {
                let raw = sim.peek_raw(w.node_idx, w.addr);
                self.scan_ns_total += scan_ns;
                if w.last_raw != Some(raw) {
                    w.last_raw = Some(raw);
                    hits.push(WatchEvent {
                        time_ns: next,
                        node: w.node.clone(),
                        symbol: w.symbol.clone(),
                        value: SignalValue::from_raw(w.ty, raw),
                    });
                }
            }
            next += self.poll_period_ns;
        }
        self.next_poll_ns = Some(next);
        sim.run_until(t_end_ns)?;
        Ok(hits)
    }

    /// Captures the probe's dynamic state (scan-time account, pending
    /// poll instant, last observed raw per watch in registration order) —
    /// the watch list itself is configuration, re-created from the spec.
    pub fn save_state(&self) -> JtagState {
        JtagState {
            scan_ns_total: self.scan_ns_total,
            next_poll_ns: self.next_poll_ns,
            last_raws: self.watches.iter().map(|w| w.last_raw).collect(),
        }
    }

    /// Restores a state snapshot captured from a probe with the same
    /// watch list (same watches, same registration order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadState`] when the snapshot's watch count
    /// does not match this probe's.
    pub fn restore_state(&mut self, state: &JtagState) -> Result<(), SimError> {
        if state.last_raws.len() != self.watches.len() {
            return Err(SimError::BadState(format!(
                "snapshot has {} watch(es), probe has {}",
                state.last_raws.len(),
                self.watches.len()
            )));
        }
        self.scan_ns_total = state.scan_ns_total;
        self.next_poll_ns = state.next_poll_ns;
        for (w, &raw) in self.watches.iter_mut().zip(&state.last_raws) {
            w.last_raw = raw;
        }
        Ok(())
    }
}

/// Serializable dynamic state of a [`JtagMonitor`] — what a session
/// checkpoint captures so passive-channel change detection resumes
/// exactly where it left off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JtagState {
    scan_ns_total: u64,
    next_poll_ns: Option<u64>,
    /// Last raw value per watch, in registration order.
    last_raws: Vec<Option<u64>>,
}
