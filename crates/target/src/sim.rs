//! The multi-node target simulator: periodic-task kernel, preemptive
//! fixed-priority CPUs, signal-board network, and per-node UART.
//!
//! ## Execution model
//!
//! The kernel follows Distributed Timed Multitasking:
//!
//! * at a task's **release** instant the kernel latches the task's inputs
//!   from the node's signal board and the task's step becomes ready;
//! * the step's *data effect* is computed atomically at release (the
//!   generated code touches only task-private cells, so this matches the
//!   reference interpreter bit for bit), while its *CPU demand* — the
//!   cycle count the VM reports — is scheduled on the node's processor
//!   under preemptive fixed-priority scheduling;
//! * command frames emitted by the code surface on the UART at the
//!   wall-clock instant their `Emit` instruction retires under that
//!   schedule;
//! * at the **deadline** instant the kernel publishes the latched outputs
//!   to the signal boards (or at completion time when
//!   [`SimConfig::latch_outputs`] is off).
//!
//! Simultaneous timeline events process in the interpreter's order —
//! stimuli, then network deliveries, then deadline publications, then
//! releases — each tie broken by node and task declaration order, which
//! makes every run bit-reproducible.
//!
//! ## Dispatch and the event calendar
//!
//! Finding "the earliest pending instant" is the hot loop's core
//! question. Two interchangeable answers exist
//! ([`SimConfig::dispatch`]):
//!
//! * [`DispatchMode::Calendar`] (default) — an indexed event calendar
//!   ([`crate::calendar`]): a priority queue over armed releases, queued
//!   deadline publications and projected CPU completions, plus a
//!   per-node runnable-job index. O(log n) per event.
//! * [`DispatchMode::LegacyScan`] — the original full rescan of every
//!   node and task. O(nodes × tasks) per event; kept as the reference
//!   oracle the property tests compare the calendar against.
//!
//! Independent of dispatch, [`SimConfig::memo_steps`] memoizes task-step
//! execution ([`crate::memo`]): a release whose VM-visible footprint
//! matches a previous activation replays the cached effect instead of
//! re-running the VM. Both knobs are bit-for-bit exact — they never
//! change the event log, the UART stream, or any data cell.

use crate::calendar::{Calendar, DueSet};
use crate::config::{DispatchMode, SimConfig};
use crate::error::SimError;
use crate::event::SimEvent;
use crate::memo::TaskMemo;
use gmdf_codegen::{vm, Frame, ProgramImage, Symbol};
use gmdf_comdes::SignalValue;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Converts a cycle count to nanoseconds on a `hz` clock (rounding up).
///
/// This is *the* conversion the kernel uses to project task completions,
/// exposed publicly so static analysis (`gmdf-analyze`) prices cycle
/// costs with the exact same rounding the simulator will exhibit.
pub fn cycles_to_ns(cycles: u64, hz: u64) -> u64 {
    ((u128::from(cycles) * 1_000_000_000).div_ceil(u128::from(hz))) as u64
}

/// Internal alias kept for the kernel's original vocabulary.
fn ns_of(cycles: u64, hz: u64) -> u64 {
    cycles_to_ns(cycles, hz)
}

/// How many whole cycles fit in `dt_ns` on a `hz` clock.
fn cycles_in(dt_ns: u64, hz: u64) -> u64 {
    (u128::from(dt_ns) * u128::from(hz) / 1_000_000_000) as u64
}

/// Deterministic per-release jitter: a split-mix hash of the seed and the
/// release coordinates, reduced to `[0, max]`.
fn jitter_ns(seed: u64, node: usize, task: usize, k: u64, max: u64) -> u64 {
    if max == 0 {
        return 0;
    }
    let mut x = seed
        ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (task as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ k.wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % (max + 1)
}

/// One released, not yet completed activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Job {
    seq: u64,
    release_ns: u64,
    deadline_ns: u64,
    total_cycles: u64,
    executed_cycles: u64,
    /// `(cycle offset, frame)` pairs still waiting to retire.
    emits: VecDeque<(u64, Frame)>,
    /// Raw publication-latch values captured when the step ran.
    pub_raw: Vec<u64>,
}

/// Output values of a completed activation awaiting its deadline instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PendingPub {
    deadline_ns: u64,
    seq: u64,
    pub_raw: Vec<u64>,
}

/// Per-task runtime state.
#[derive(Debug)]
struct TaskRt {
    next_release_idx: u64,
    next_release_ns: u64,
    next_seq: u64,
    /// Released activations, oldest first (FIFO within a task).
    jobs: VecDeque<Job>,
    /// Completed-on-time activations awaiting deadline publication,
    /// oldest deadline first.
    pending_pubs: VecDeque<PendingPub>,
    /// Step-execution cache (see [`crate::memo`]).
    memo: TaskMemo,
}

/// The serial debug link of one node.
#[derive(Debug)]
struct Uart {
    byte_ns: u64,
    busy_until_ns: u64,
    queue: VecDeque<(u64, u8)>,
}

impl Uart {
    /// Queues a frame's wire bytes starting no earlier than `t`.
    fn send_frame(&mut self, t: u64, frame: &Frame) {
        let mut at = self.busy_until_ns.max(t);
        for b in frame.encode() {
            at += self.byte_ns;
            self.queue.push_back((at, b));
        }
        self.busy_until_ns = at;
    }
}

/// The job currently occupying a node's CPU, anchored to the wall
/// instant it (re)gained the processor.
///
/// Anchoring is what makes execution independent of how finely callers
/// step `run_until`: a running job's completion instant is always
/// `start_ns + ns_of(remaining)`, never re-derived from rounded
/// per-window progress. Partial progress only materializes into
/// `executed_cycles` at preemption instants, which are schedule events,
/// not caller choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RunAnchor {
    ti: usize,
    seq: u64,
    start_ns: u64,
    base_cycles: u64,
}

/// Per-node runtime state.
#[derive(Debug)]
struct NodeRt {
    data: Vec<u64>,
    tasks: Vec<TaskRt>,
    uart: Uart,
    cycles_executed: u64,
    anchor: Option<RunAnchor>,
    /// Runnable tasks ordered by the scheduler key (see
    /// [`crate::calendar::ReadyIndex`]). Mirrors "`tasks[ti].jobs` is
    /// non-empty", maintained at every job push/pop — in calendar mode
    /// only, so the legacy-scan oracle keeps the original cost profile.
    ready: crate::calendar::ReadyIndex,
    /// The last completion projection pushed to the calendar:
    /// `(task, job seq, finish instant)`. When a schedule change leaves
    /// the projection identical (a lower-priority release under a
    /// running job — the common case), the queued entry stays valid and
    /// no epoch bump or re-push happens.
    last_proj: Option<(usize, u64, u64)>,
}

/// One node's interned names: the node itself plus one entry per task,
/// shared by reference with every [`SimEvent`] that mentions them.
#[derive(Debug, Clone)]
struct NodeNames {
    node: Arc<str>,
    actors: Vec<Arc<str>>,
}

/// Broadcast subscribers of one publication: `(node, board address)`
/// pairs, excluding the producer.
type PubRoute = Vec<(usize, u32)>;

/// An in-flight labeled-signal broadcast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Delivery {
    time_ns: u64,
    node_idx: usize,
    addr: u32,
    raw: u64,
}

/// A deterministic simulator of the distributed embedded platform
/// executing one [`ProgramImage`].
///
/// ```
/// use gmdf_codegen::{compile_system, CompileOptions};
/// use gmdf_comdes::{ActorBuilder, BasicOp, NetworkBuilder, NodeSpec, Port, SignalValue,
///                   System, Timing};
/// use gmdf_target::{SimConfig, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = NetworkBuilder::new()
///     .input(Port::real("x"))
///     .output(Port::real("y"))
///     .block("g", BasicOp::Gain { k: 2.0 })
///     .connect("x", "g.x")?
///     .connect("g.y", "y")?
///     .build()?;
/// let actor = ActorBuilder::new("Doubler", net)
///     .input("x", "in")
///     .output("y", "out")
///     .timing(Timing::periodic(1_000_000, 0))
///     .build()?;
/// let mut node = NodeSpec::new("ecu", 50_000_000);
/// node.actors.push(actor);
/// let system = System::new("demo").with_node(node);
///
/// let image = compile_system(&system, &CompileOptions::default())?;
/// let mut sim = Simulator::new(image, SimConfig::default())?;
/// sim.schedule_signal(0, "in", SignalValue::Real(21.0))?;
/// sim.run_until(2_000_000)?;
/// assert_eq!(sim.read_signal("ecu", "out")?, SignalValue::Real(42.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    image: ProgramImage,
    config: SimConfig,
    nodes: Vec<NodeRt>,
    /// Node name → index, built once at boot (`node_index` is on the
    /// `read_symbol`/`uart_take` hot paths).
    name_index: HashMap<String, usize>,
    /// Interned node/actor names, built once at boot — event logging
    /// clones an `Arc`, never a `String` (`SimEvent` is pushed on every
    /// release, completion and publication).
    names: Vec<NodeNames>,
    /// Precomputed broadcast routes: `pub_routes[ni][ti][pi]` lists the
    /// `(subscriber node, board address)` pairs carrying publication
    /// `pi` of task `(ni, ti)`. Built once at boot so `publish` — which
    /// runs for every completed activation — never scans all nodes or
    /// hashes a label string.
    pub_routes: Vec<Vec<Vec<PubRoute>>>,
    /// Sorted (stably) by time; `stim_pos` marks the applied prefix.
    stimuli: Vec<(u64, String, SignalValue)>,
    stim_pos: usize,
    /// In-flight broadcasts, sorted by (time, insertion order).
    deliveries: VecDeque<Delivery>,
    /// The event calendar ([`DispatchMode::Calendar`] only).
    calendar: Calendar,
    /// Per-node schedule epoch: bumped whenever the node's job set
    /// changes, invalidating that node's queued completion projections.
    epochs: Vec<u64>,
    /// Nodes whose schedule changed this iteration (calendar mode).
    dirty: Vec<usize>,
    dirty_flag: Vec<bool>,
    /// Reused per-instant due-event buffers (no allocation per event).
    due: DueSet,
    /// Released-but-uncompleted jobs per node — the CPU advance skips
    /// nodes at zero (an idle node has no emits to retire and no
    /// completions to book), so its cost tracks *busy* nodes, not fleet
    /// size. Kept contiguous (not inside `NodeRt`) for the scan.
    job_counts: Vec<u32>,
    /// Releases that replayed a memoized step (VM skipped) / ran the VM.
    memo_hits: u64,
    memo_misses: u64,
    events: Vec<SimEvent>,
    now_ns: u64,
}

impl Simulator {
    /// Boots the platform: allocates and initializes each node's data
    /// segment, seeds the kernels with first-release instants, and sizes
    /// the UARTs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] for unusable configurations and
    /// [`SimError::BadImage`] for images violating platform invariants.
    pub fn new(image: ProgramImage, config: SimConfig) -> Result<Self, SimError> {
        if config.uart_baud == 0 {
            return Err(SimError::BadConfig("uart_baud must be nonzero".into()));
        }
        if config.step_budget == 0 {
            return Err(SimError::BadConfig("step_budget must be nonzero".into()));
        }
        let byte_ns = 10_000_000_000u64.div_ceil(config.uart_baud);
        let mut nodes = Vec::with_capacity(image.nodes.len());
        let mut calendar = Calendar::default();
        for (ni, node) in image.nodes.iter().enumerate() {
            if node.cpu_hz == 0 {
                return Err(SimError::BadImage(format!(
                    "node `{}` has a zero clock",
                    node.node
                )));
            }
            let mut data = vec![0u64; node.data_cells as usize];
            for &(addr, raw) in &node.data_init {
                let cell = data.get_mut(addr as usize).ok_or_else(|| {
                    SimError::BadImage(format!("init address {addr} outside node `{}`", node.node))
                })?;
                *cell = raw;
            }
            let mut tasks = Vec::with_capacity(node.tasks.len());
            for (ti, task) in node.tasks.iter().enumerate() {
                if task.period_ns == 0 {
                    return Err(SimError::BadImage(format!(
                        "task `{}` has a zero period",
                        task.actor
                    )));
                }
                // A tick at or above a task's period would quantize
                // several releases onto one instant, firing bursts of
                // same-nanosecond activations — reject rather than
                // invent catch-up semantics.
                if config.tick_ns >= task.period_ns && config.tick_ns != 0 {
                    return Err(SimError::BadConfig(format!(
                        "tick_ns ({}) must be below task `{}`'s period ({})",
                        config.tick_ns, task.actor, task.period_ns
                    )));
                }
                let mut rt = TaskRt {
                    next_release_idx: 0,
                    next_release_ns: 0,
                    next_seq: 0,
                    jobs: VecDeque::new(),
                    pending_pubs: VecDeque::new(),
                    memo: TaskMemo::new(&task.code),
                };
                rt.next_release_ns =
                    release_instant(&config, task.offset_ns, task.period_ns, 0, ni, ti);
                if config.dispatch == DispatchMode::Calendar {
                    calendar.push_release(rt.next_release_ns, ni, ti);
                }
                tasks.push(rt);
            }
            nodes.push(NodeRt {
                data,
                tasks,
                uart: Uart {
                    byte_ns,
                    busy_until_ns: 0,
                    queue: VecDeque::new(),
                },
                cycles_executed: 0,
                anchor: None,
                ready: crate::calendar::ReadyIndex::default(),
                last_proj: None,
            });
        }
        let name_index = image
            .nodes
            .iter()
            .enumerate()
            .map(|(ni, n)| (n.node.clone(), ni))
            .collect();
        let names = image
            .nodes
            .iter()
            .map(|n| NodeNames {
                node: Arc::from(n.node.as_str()),
                actors: n
                    .tasks
                    .iter()
                    .map(|t| Arc::from(t.actor.as_str()))
                    .collect(),
            })
            .collect();
        let pub_routes = image
            .nodes
            .iter()
            .enumerate()
            .map(|(ni, node)| {
                node.tasks
                    .iter()
                    .map(|task| {
                        task.publications
                            .iter()
                            .map(|p| {
                                image
                                    .nodes
                                    .iter()
                                    .enumerate()
                                    .filter(|&(oj, _)| oj != ni)
                                    .filter_map(|(oj, other)| {
                                        other.board.get(&p.label).map(|sym| (oj, sym.addr))
                                    })
                                    .collect()
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let n = nodes.len();
        Ok(Simulator {
            image,
            config,
            nodes,
            name_index,
            names,
            pub_routes,
            stimuli: Vec::new(),
            stim_pos: 0,
            deliveries: VecDeque::new(),
            calendar,
            epochs: vec![0; n],
            dirty: Vec::new(),
            dirty_flag: vec![false; n],
            due: DueSet::default(),
            job_counts: vec![0; n],
            memo_hits: 0,
            memo_misses: 0,
            events: Vec::new(),
            now_ns: 0,
        })
    }

    /// Current simulation time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The platform configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The deployed image.
    pub fn image(&self) -> &ProgramImage {
        &self.image
    }

    /// The event log so far, in time order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Step-memoization counters: `(hits, misses)`. A *hit* is a task
    /// release that replayed a cached step without running the VM; a
    /// *miss* ran the VM (and cached the result). Both are zero with
    /// [`SimConfig::memo_steps`] off.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo_hits, self.memo_misses)
    }

    /// Total cycles the named node's CPU has executed — the target-side
    /// cost metric instrumentation overhead is measured in.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for unknown names.
    pub fn cycles_executed(&self, node: &str) -> Result<u64, SimError> {
        let ni = self.node_index(node)?;
        let mut total = self.nodes[ni].cycles_executed;
        // Include the anchored job's progress up to now (materialized
        // counters only update at schedule instants).
        if let Some(a) = self.nodes[ni].anchor {
            let hz = self.image.nodes[ni].cpu_hz;
            let job = self.nodes[ni].tasks[a.ti]
                .jobs
                .front()
                .expect("anchored job");
            let done =
                (a.base_cycles + cycles_in(self.now_ns - a.start_ns, hz)).min(job.total_cycles);
            total += done - job.executed_cycles;
        }
        Ok(total)
    }

    /// Schedules an environment (sensor) write of `label` at `time_ns`.
    /// Stimuli in the past are ignored, like the reference interpreter's.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownLabel`] if no node's board carries the
    /// label.
    pub fn schedule_signal(
        &mut self,
        time_ns: u64,
        label: &str,
        value: SignalValue,
    ) -> Result<(), SimError> {
        if !self.image.nodes.iter().any(|n| n.board.contains_key(label)) {
            return Err(SimError::UnknownLabel(label.to_owned()));
        }
        if time_ns < self.now_ns {
            return Ok(());
        }
        // Stable insert by time keeps same-instant stimuli in schedule
        // order, matching the interpreter.
        let at = self.stimuli[self.stim_pos..].partition_point(|(t, _, _)| *t <= time_ns)
            + self.stim_pos;
        self.stimuli.insert(at, (time_ns, label.to_owned(), value));
        Ok(())
    }

    /// Reads a node's current copy of a labeled signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] / [`SimError::UnknownLabel`].
    pub fn read_signal(&self, node: &str, label: &str) -> Result<SignalValue, SimError> {
        let ni = self.node_index(node)?;
        let sym = self.image.nodes[ni]
            .board
            .get(label)
            .copied()
            .ok_or_else(|| SimError::UnknownLabel(label.to_owned()))?;
        Ok(SignalValue::from_raw(
            sym.ty,
            self.nodes[ni].data[sym.addr as usize],
        ))
    }

    /// Reads a symbol-table cell (what a JTAG probe scans out).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] / [`SimError::UnknownSymbol`].
    pub fn read_symbol(&self, node: &str, symbol: &str) -> Result<SignalValue, SimError> {
        let ni = self.node_index(node)?;
        let sym = self.resolve_symbol(ni, symbol)?;
        Ok(SignalValue::from_raw(
            sym.ty,
            self.nodes[ni].data[sym.addr as usize],
        ))
    }

    /// Drains the node's UART: `(timestamp, byte)` pairs whose
    /// transmission has finished by now, oldest first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for unknown names.
    pub fn uart_take(&mut self, node: &str) -> Result<Vec<(u64, u8)>, SimError> {
        let mut out = Vec::new();
        self.uart_take_into(node, &mut out)?;
        Ok(out)
    }

    /// Like [`Simulator::uart_take`], but **appends** the drained bytes
    /// to `out` instead of allocating — the reuse path for pumps that
    /// drain UARTs every slice. Returns the number of bytes appended.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] for unknown names.
    pub fn uart_take_into(
        &mut self,
        node: &str,
        out: &mut Vec<(u64, u8)>,
    ) -> Result<usize, SimError> {
        let ni = self.node_index(node)?;
        let now = self.now_ns;
        let uart = &mut self.nodes[ni].uart;
        let ready = uart.queue.partition_point(|(t, _)| *t <= now);
        out.extend(uart.queue.drain(..ready));
        Ok(ready)
    }

    /// Advances the platform to `t_end_ns` (inclusive), executing every
    /// stimulus, release, completion, publication and delivery due.
    ///
    /// Calling this in increments is equivalent to one big run — the
    /// kernels track their own progress.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Vm`] if generated code faults.
    pub fn run_until(&mut self, t_end_ns: u64) -> Result<(), SimError> {
        if t_end_ns < self.now_ns {
            return Ok(());
        }
        match self.config.dispatch {
            DispatchMode::Calendar => self.run_until_calendar(t_end_ns),
            DispatchMode::LegacyScan => self.run_until_scan(t_end_ns),
        }
    }

    /// Advances the platform by one bounded time slice and returns the
    /// new simulation time — the resumable pumping primitive a scheduler
    /// uses to interleave many simulators on shared worker threads.
    ///
    /// Slicing is exact: any partition of a horizon into slices produces
    /// the same platform state, event log and UART stream as one
    /// [`Simulator::run_until`] over the whole horizon (running jobs stay
    /// anchored to the instant they gained the CPU, so completion times
    /// never depend on slice boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Vm`] if generated code faults.
    pub fn run_for_slice(&mut self, slice_ns: u64) -> Result<u64, SimError> {
        let t_end = self.now_ns.saturating_add(slice_ns);
        self.run_until(t_end)?;
        Ok(self.now_ns)
    }

    // -- internals ---------------------------------------------------------

    pub(crate) fn node_index(&self, node: &str) -> Result<usize, SimError> {
        self.name_index
            .get(node)
            .copied()
            .ok_or_else(|| SimError::UnknownNode(node.to_owned()))
    }

    pub(crate) fn resolve_symbol(&self, node_idx: usize, symbol: &str) -> Result<Symbol, SimError> {
        self.image.nodes[node_idx]
            .symbols
            .get(symbol)
            .ok_or_else(|| SimError::UnknownSymbol {
                node: self.image.nodes[node_idx].node.clone(),
                symbol: symbol.to_owned(),
            })
    }

    pub(crate) fn peek_raw(&self, node_idx: usize, addr: u32) -> u64 {
        self.nodes[node_idx].data[addr as usize]
    }

    /// The original dispatch loop: full rescan per event.
    fn run_until_scan(&mut self, t_end_ns: u64) -> Result<(), SimError> {
        while let Some(t_next) = self.next_timeline_instant_scan(t_end_ns) {
            self.advance_cpus(t_next);
            self.now_ns = t_next;
            self.apply_stimuli_at(t_next);
            self.apply_deliveries_at(t_next);
            self.apply_deadline_pubs_at(t_next);
            self.apply_releases_at(t_next)?;
        }
        self.advance_cpus(t_end_ns);
        self.now_ns = t_end_ns;
        Ok(())
    }

    /// The calendar dispatch loop: O(log n) peek per event, apply work
    /// proportional to what actually fires.
    fn run_until_calendar(&mut self, t_end_ns: u64) -> Result<(), SimError> {
        while let Some(t_next) = self.next_timeline_instant_calendar(t_end_ns) {
            self.advance_cpus(t_next);
            self.now_ns = t_next;
            let mut due = std::mem::take(&mut self.due);
            self.calendar.take_due(t_next, &mut due);
            self.apply_stimuli_at(t_next);
            self.apply_deliveries_at(t_next);
            for &(ni, ti) in &due.publishes {
                self.apply_deadline_pub(ni, ti, t_next);
            }
            for &(ni, ti) in &due.releases {
                debug_assert_eq!(self.nodes[ni].tasks[ti].next_release_ns, t_next);
                self.release(ni, ti, t_next)?;
            }
            self.due = due;
            self.flush_dirty();
        }
        self.advance_cpus(t_end_ns);
        self.now_ns = t_end_ns;
        Ok(())
    }

    /// Calendar-mode lookup of the earliest pending instant ≤ `t_end`:
    /// an O(1) peek at the (time-sorted) stimulus and delivery queues
    /// and an O(log n) heap peek for everything else.
    fn next_timeline_instant_calendar(&mut self, t_end: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut consider = |t: u64| {
            if best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        };
        if let Some((t, _, _)) = self.stimuli.get(self.stim_pos) {
            consider(*t);
        }
        if let Some(d) = self.deliveries.front() {
            consider(d.time_ns);
        }
        if let Some(t) = self.calendar.peek_earliest(&self.epochs) {
            consider(t);
        }
        best.filter(|&t| t <= t_end)
    }

    /// The earliest discrete timeline instant ≤ `t_end` still pending, or
    /// the earliest CPU completion if it comes first (completions can
    /// schedule publications the timeline must then see). Full rescan —
    /// the [`DispatchMode::LegacyScan`] oracle.
    fn next_timeline_instant_scan(&self, t_end: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut consider = |t: u64| {
            if t <= t_end && best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        };
        if let Some((t, _, _)) = self.stimuli.get(self.stim_pos) {
            consider(*t);
        }
        if let Some(d) = self.deliveries.front() {
            consider(d.time_ns);
        }
        for (ni, node) in self.nodes.iter().enumerate() {
            for task in &node.tasks {
                consider(task.next_release_ns);
                if let Some(p) = task.pending_pubs.front() {
                    consider(p.deadline_ns);
                }
            }
            // The first completion on this node's CPU, were it to run
            // undisturbed from now (anchored jobs finish relative to the
            // instant they gained the CPU, not to `now`).
            if let Some((ti, _)) = self.pick_job_scan(ni) {
                consider(self.completion_of_pick(ni, ti));
            }
        }
        best
    }

    /// The projected completion instant of `(ni, ti)`'s front job, were
    /// it to hold the CPU undisturbed from now (anchored jobs finish
    /// relative to the instant they gained the CPU, not to `now`).
    fn completion_of_pick(&self, ni: usize, ti: usize) -> u64 {
        let job = self.nodes[ni].tasks[ti].jobs.front().expect("picked job");
        let hz = self.image.nodes[ni].cpu_hz;
        match self.nodes[ni].anchor {
            Some(a) if (a.ti, a.seq) == (ti, job.seq) => {
                a.start_ns + ns_of(job.total_cycles - a.base_cycles, hz)
            }
            _ => self.now_ns + ns_of(job.total_cycles - job.executed_cycles, hz),
        }
    }

    /// The highest-priority runnable job on `node_idx` per the active
    /// dispatch mode: `(task index, priority)`.
    fn pick_job(&self, node_idx: usize) -> Option<(usize, u8)> {
        match self.config.dispatch {
            DispatchMode::Calendar => self.pick_job_indexed(node_idx),
            DispatchMode::LegacyScan => self.pick_job_scan(node_idx),
        }
    }

    /// Indexed pick: the ready set's first entry. Cross-checked against
    /// the scan oracle in debug builds.
    fn pick_job_indexed(&self, node_idx: usize) -> Option<(usize, u8)> {
        let picked = self.nodes[node_idx].ready.first();
        debug_assert_eq!(
            picked,
            self.pick_job_scan(node_idx),
            "ready index diverged from the scan oracle on node {node_idx}"
        );
        picked
    }

    /// Scan pick: lower priority value wins, then earlier release, then
    /// declaration order. The [`DispatchMode::LegacyScan`] oracle.
    fn pick_job_scan(&self, node_idx: usize) -> Option<(usize, u8)> {
        let image = &self.image.nodes[node_idx];
        let mut best: Option<(usize, u8, u64)> = None;
        for (ti, rt) in self.nodes[node_idx].tasks.iter().enumerate() {
            let Some(front) = rt.jobs.front() else {
                continue;
            };
            let prio = image.tasks[ti].priority;
            let key = (prio, front.release_ns, ti);
            if best.is_none_or(|(bti, bp, br)| key < (bp, br, bti)) {
                best = Some((ti, prio, front.release_ns));
            }
        }
        best.map(|(ti, p, _)| (ti, p))
    }

    /// Marks `ni`'s schedule as changed this iteration (calendar mode):
    /// its queued completion projections will be invalidated and
    /// re-pushed by [`Simulator::flush_dirty`].
    fn mark_dirty(&mut self, ni: usize) {
        if self.config.dispatch == DispatchMode::Calendar && !self.dirty_flag[ni] {
            self.dirty_flag[ni] = true;
            self.dirty.push(ni);
        }
    }

    /// Re-projects the CPU completion of every dirty node. If the
    /// projection actually moved, the node's schedule epoch is bumped
    /// (lazily invalidating the stale calendar entry) and the new one
    /// pushed; an unchanged projection keeps its queued entry — the
    /// common case when a lower-priority release arrives under a
    /// running job, and what keeps heap churn off the hot path.
    fn flush_dirty(&mut self) {
        while let Some(ni) = self.dirty.pop() {
            self.dirty_flag[ni] = false;
            let proj = self.pick_job_indexed(ni).map(|(ti, _)| {
                let seq = self.nodes[ni].tasks[ti]
                    .jobs
                    .front()
                    .expect("picked job")
                    .seq;
                (ti, seq, self.completion_of_pick(ni, ti))
            });
            if proj == self.nodes[ni].last_proj {
                continue;
            }
            self.nodes[ni].last_proj = proj;
            self.epochs[ni] += 1;
            if let Some((_, _, fin)) = proj {
                self.calendar.push_completion(fin, ni, self.epochs[ni]);
            }
        }
    }

    /// Runs every node's CPU forward to `t_target`, retiring emits and
    /// completions due in `(now, t_target]`.
    fn advance_cpus(&mut self, t_target: u64) {
        for ni in 0..self.nodes.len() {
            if self.job_counts[ni] == 0 {
                debug_assert!(self.nodes[ni].anchor.is_none());
                continue;
            }
            let mut t = self.now_ns;
            loop {
                let Some((ti, _)) = self.pick_job(ni) else {
                    self.nodes[ni].anchor = None;
                    break;
                };
                let hz = self.image.nodes[ni].cpu_hz;
                let (seq, total, executed) = {
                    let job = self.nodes[ni].tasks[ti].jobs.front().expect("picked job");
                    (job.seq, job.total_cycles, job.executed_cycles)
                };
                // A different job won the CPU: the old one was preempted
                // at `t` (a schedule instant) — materialize its progress
                // before switching.
                if let Some(a) = self.nodes[ni].anchor {
                    if (a.ti, a.seq) != (ti, seq) {
                        self.materialize_preempted(ni, a, t);
                        self.nodes[ni].anchor = None;
                    }
                }
                let a = *self.nodes[ni].anchor.get_or_insert(RunAnchor {
                    ti,
                    seq,
                    start_ns: t,
                    base_cycles: executed,
                });
                let fin = a.start_ns + ns_of(total - a.base_cycles, hz);
                if fin <= t_target {
                    self.retire_emits(ni, ti, a.start_ns, a.base_cycles, total - a.base_cycles, hz);
                    self.nodes[ni].cycles_executed += total - executed;
                    let prio = self.image.nodes[ni].tasks[ti].priority;
                    self.job_counts[ni] -= 1;
                    let indexed = self.config.dispatch == DispatchMode::Calendar;
                    let nrt = &mut self.nodes[ni];
                    let job = nrt.tasks[ti].jobs.pop_front().expect("picked job");
                    // The ready index exists for calendar dispatch only;
                    // legacy-scan mode skips its upkeep so the oracle's
                    // cost profile stays that of the original code.
                    if indexed {
                        nrt.ready.remove(prio, job.release_ns, ti);
                        if let Some(front) = nrt.tasks[ti].jobs.front() {
                            nrt.ready.insert(prio, front.release_ns, ti);
                        }
                    }
                    nrt.anchor = None;
                    self.mark_dirty(ni);
                    self.complete_job(ni, ti, job, fin);
                    t = fin;
                } else {
                    // Still running at t_target: keep the anchor (so the
                    // completion instant never depends on how finely the
                    // caller steps) and surface the emits due by now.
                    let due = cycles_in(t_target - a.start_ns, hz);
                    self.retire_emits(ni, ti, a.start_ns, a.base_cycles, due, hz);
                    break;
                }
            }
        }
    }

    /// Books a preempted job's CPU progress as of the preemption
    /// instant `t`.
    fn materialize_preempted(&mut self, ni: usize, a: RunAnchor, t: u64) {
        let hz = self.image.nodes[ni].cpu_hz;
        let done = a.base_cycles + cycles_in(t - a.start_ns, hz);
        let nrt = &mut self.nodes[ni];
        let job = nrt.tasks[a.ti].jobs.front_mut().expect("anchored job");
        debug_assert_eq!(job.seq, a.seq);
        let done = done.min(job.total_cycles);
        nrt.cycles_executed += done - job.executed_cycles;
        job.executed_cycles = done;
    }

    /// Retires emits whose cycle offset falls inside the execution
    /// segment starting at wall time `seg_start` with `done` cycles
    /// already executed and `delta` more being executed now.
    fn retire_emits(
        &mut self,
        ni: usize,
        ti: usize,
        seg_start: u64,
        done: u64,
        delta: u64,
        hz: u64,
    ) {
        while let Some(&(off, _)) = self.nodes[ni].tasks[ti]
            .jobs
            .front()
            .and_then(|j| j.emits.front())
        {
            if off > done + delta {
                break;
            }
            let (_, frame) = self.nodes[ni].tasks[ti]
                .jobs
                .front_mut()
                .and_then(|j| j.emits.pop_front())
                .expect("emit present");
            let at = seg_start + ns_of(off.saturating_sub(done), hz);
            self.nodes[ni].uart.send_frame(at, &frame);
        }
    }

    /// Books a finished activation: logs completion (and a deadline miss
    /// when late) and routes its publication.
    fn complete_job(&mut self, ni: usize, ti: usize, job: Job, tc: u64) {
        let node_name = self.names[ni].node.clone();
        let actor = self.names[ni].actors[ti].clone();
        self.events.push(SimEvent::Completion {
            time_ns: tc,
            node: node_name.clone(),
            actor: actor.clone(),
            response_ns: tc - job.release_ns,
            cycles: job.total_cycles,
        });
        if tc > job.deadline_ns {
            self.events.push(SimEvent::DeadlineMiss {
                time_ns: tc,
                node: node_name,
                actor,
                overrun_ns: tc - job.deadline_ns,
            });
            // The deadline instant has passed: publish as late as reality.
            self.publish(ni, ti, &job.pub_raw, tc);
        } else if self.config.latch_outputs {
            if self.config.dispatch == DispatchMode::Calendar {
                self.calendar.push_publish(job.deadline_ns, ni, ti);
            }
            self.nodes[ni].tasks[ti].pending_pubs.push_back(PendingPub {
                deadline_ns: job.deadline_ns,
                seq: job.seq,
                pub_raw: job.pub_raw,
            });
        } else {
            self.publish(ni, ti, &job.pub_raw, tc);
        }
    }

    /// Writes `pub_raw` to the producing node's board, logs the
    /// publications, and broadcasts to every subscribed node's board
    /// over the routes precomputed at boot.
    fn publish(&mut self, ni: usize, ti: usize, pub_raw: &[u64], t: u64) {
        let Simulator {
            image,
            nodes,
            names,
            events,
            deliveries,
            config,
            pub_routes,
            ..
        } = self;
        let task = &image.nodes[ni].tasks[ti];
        for (pi, (p, &raw)) in task.publications.iter().zip(pub_raw.iter()).enumerate() {
            nodes[ni].data[p.board as usize] = raw;
            events.push(SimEvent::Publish {
                time_ns: t,
                node: names[ni].node.clone(),
                actor: names[ni].actors[ti].clone(),
                label: p.label.clone(),
                value: SignalValue::from_raw(p.ty, raw),
            });
            for &(oj, addr) in &pub_routes[ni][ti][pi] {
                if config.bus_latency_ns == 0 {
                    nodes[oj].data[addr as usize] = raw;
                } else {
                    deliveries.push_back(Delivery {
                        time_ns: t + config.bus_latency_ns,
                        node_idx: oj,
                        addr,
                        raw,
                    });
                }
            }
        }
    }

    fn apply_stimuli_at(&mut self, t: u64) {
        while let Some((st, label, value)) = self.stimuli.get(self.stim_pos) {
            if *st != t {
                break;
            }
            let (label, value) = (label.clone(), *value);
            self.stim_pos += 1;
            for ni in 0..self.nodes.len() {
                if let Some(sym) = self.image.nodes[ni].board.get(&label).copied() {
                    self.nodes[ni].data[sym.addr as usize] = value.to_raw();
                }
            }
            self.events.push(SimEvent::Stimulus {
                time_ns: t,
                label,
                value,
            });
        }
    }

    fn apply_deliveries_at(&mut self, t: u64) {
        while let Some(d) = self.deliveries.front() {
            if d.time_ns != t {
                break;
            }
            let d = self.deliveries.pop_front().expect("front checked");
            self.nodes[d.node_idx].data[d.addr as usize] = d.raw;
        }
    }

    /// Publishes `(ni, ti)`'s queued outputs whose deadline is `t`
    /// (calendar mode — the due set names the tasks directly).
    fn apply_deadline_pub(&mut self, ni: usize, ti: usize, t: u64) {
        while let Some(p) = self.nodes[ni].tasks[ti].pending_pubs.front() {
            if p.deadline_ns != t {
                break;
            }
            let p = self.nodes[ni].tasks[ti]
                .pending_pubs
                .pop_front()
                .expect("front checked");
            debug_assert!(p.seq < self.nodes[ni].tasks[ti].next_seq);
            self.publish(ni, ti, &p.pub_raw, t);
        }
    }

    /// Scan-mode deadline publication: every task of every node is
    /// checked for queued outputs due at `t`.
    fn apply_deadline_pubs_at(&mut self, t: u64) {
        for ni in 0..self.nodes.len() {
            for ti in 0..self.nodes[ni].tasks.len() {
                self.apply_deadline_pub(ni, ti, t);
            }
        }
    }

    /// Scan-mode release sweep: every task of every node is checked for
    /// an armed release at `t`.
    fn apply_releases_at(&mut self, t: u64) -> Result<(), SimError> {
        for ni in 0..self.nodes.len() {
            for ti in 0..self.nodes[ni].tasks.len() {
                if self.nodes[ni].tasks[ti].next_release_ns != t {
                    continue;
                }
                self.release(ni, ti, t)?;
            }
        }
        Ok(())
    }

    /// One kernel release: latch inputs, execute the step (or replay its
    /// memoized effect), queue the CPU demand, and arm the next release.
    fn release(&mut self, ni: usize, ti: usize, t: u64) -> Result<(), SimError> {
        let Simulator {
            image,
            nodes,
            names,
            events,
            config,
            calendar,
            memo_hits,
            memo_misses,
            job_counts,
            ..
        } = self;
        let task = &image.nodes[ni].tasks[ti];
        let nrt = &mut nodes[ni];
        for latch in &task.input_latches {
            nrt.data[latch.to as usize] = nrt.data[latch.from as usize];
        }
        let vm_fault = |error| SimError::Vm {
            node: image.nodes[ni].node.clone(),
            actor: task.actor.clone(),
            error,
        };
        let result = if config.memo_steps {
            // Split-borrow the node: the memo lives next to the data
            // segment it probes.
            let NodeRt { data, tasks, .. } = nrt;
            match tasks[ti].memo.lookup_and_apply(data) {
                Some(cached) => {
                    *memo_hits += 1;
                    cached
                }
                None => {
                    let r = vm::run(&task.code, data, config.step_budget).map_err(&vm_fault)?;
                    *memo_misses += 1;
                    tasks[ti].memo.record(data, &r);
                    r
                }
            }
        } else {
            vm::run(&task.code, &mut nrt.data, config.step_budget).map_err(&vm_fault)?
        };
        let pub_raw: Vec<u64> = task
            .publications
            .iter()
            .map(|p| nrt.data[p.latch as usize])
            .collect();
        events.push(SimEvent::Release {
            time_ns: t,
            node: names[ni].node.clone(),
            actor: names[ni].actors[ti].clone(),
        });
        let was_idle = nrt.tasks[ti].jobs.is_empty();
        let rt = &mut nrt.tasks[ti];
        let seq = rt.next_seq;
        rt.next_seq += 1;
        rt.jobs.push_back(Job {
            seq,
            release_ns: t,
            deadline_ns: t + task.deadline_ns,
            total_cycles: result.cycles.max(1),
            executed_cycles: 0,
            emits: result.emits.into_iter().collect(),
            pub_raw,
        });
        rt.next_release_idx += 1;
        rt.next_release_ns = release_instant(
            config,
            task.offset_ns,
            task.period_ns,
            rt.next_release_idx,
            ni,
            ti,
        );
        let next_release_ns = rt.next_release_ns;
        job_counts[ni] += 1;
        if config.dispatch == DispatchMode::Calendar {
            if was_idle {
                nrt.ready.insert(task.priority, t, ti);
            }
            calendar.push_release(next_release_ns, ni, ti);
        }
        self.mark_dirty(ni);
        Ok(())
    }
}

/// Per-task slice of a [`SimState`]: the kernel counters plus every
/// in-flight activation. The step-memo cache is *not* here — it is a
/// bit-exact pure cache, rebuilt empty on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TaskState {
    next_release_idx: u64,
    next_release_ns: u64,
    next_seq: u64,
    jobs: Vec<Job>,
    pending_pubs: Vec<PendingPub>,
}

/// Per-node slice of a [`SimState`]: data segment, task states, UART
/// transmit state and the CPU anchor. Derived structures (the ready
/// index and the completion projection) are rebuilt on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct NodeState {
    data: Vec<u64>,
    tasks: Vec<TaskState>,
    uart_busy_until_ns: u64,
    uart_queue: Vec<(u64, u8)>,
    cycles_executed: u64,
    anchor: Option<RunAnchor>,
}

/// A complete serializable snapshot of a [`Simulator`]'s dynamic state.
///
/// Captures everything a bit-exact resume needs: the clock, every node's
/// data segment, task/kernel counters, in-flight jobs and their pending
/// emits, undrained UART bytes, CPU anchors, unapplied stimuli and
/// in-flight network deliveries. Derived state — the event calendar, the
/// ready index, completion projections and the step-memo cache — is
/// deliberately absent and rebuilt by [`Simulator::restore_state`].
///
/// Two things are intentionally **not** state:
///
/// * the [`Simulator::events`] log — a grow-only observability log, never
///   read back by the kernel; a restored simulator starts with an empty
///   log and appends only post-restore events;
/// * the memo-hit counters' future trajectory — the cache restarts cold,
///   so a restored run may report more misses than the uninterrupted one
///   while producing the identical event/UART stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimState {
    now_ns: u64,
    nodes: Vec<NodeState>,
    stimuli: Vec<(u64, String, SignalValue)>,
    stim_pos: u64,
    deliveries: Vec<Delivery>,
    memo_hits: u64,
    memo_misses: u64,
}

impl SimState {
    /// Simulation time at which this snapshot was captured.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }
}

impl Simulator {
    /// Captures the simulator's complete dynamic state (see [`SimState`]
    /// for what is included). The snapshot is independent of the live
    /// simulator: restoring it into a freshly booted twin and running on
    /// is bit-identical to never having stopped.
    pub fn save_state(&self) -> SimState {
        SimState {
            now_ns: self.now_ns,
            nodes: self
                .nodes
                .iter()
                .map(|n| NodeState {
                    data: n.data.clone(),
                    tasks: n
                        .tasks
                        .iter()
                        .map(|t| TaskState {
                            next_release_idx: t.next_release_idx,
                            next_release_ns: t.next_release_ns,
                            next_seq: t.next_seq,
                            jobs: t.jobs.iter().cloned().collect(),
                            pending_pubs: t.pending_pubs.iter().cloned().collect(),
                        })
                        .collect(),
                    uart_busy_until_ns: n.uart.busy_until_ns,
                    uart_queue: n.uart.queue.iter().copied().collect(),
                    cycles_executed: n.cycles_executed,
                    anchor: n.anchor,
                })
                .collect(),
            stimuli: self.stimuli.clone(),
            stim_pos: self.stim_pos as u64,
            deliveries: self.deliveries.iter().cloned().collect(),
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
        }
    }

    /// Restores a [`SimState`] previously captured (from a simulator
    /// booted off the **same image and configuration**) into this one,
    /// rebuilding all derived structures: calendar entries for armed
    /// releases and queued deadline publications, the per-node ready
    /// index, job counts, and fresh (empty) step-memo caches. The event
    /// log is cleared — see [`SimState`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadState`] when the snapshot does not fit this
    /// simulator's image (node/task/data-segment shape mismatch, or an
    /// anchor pointing at a job that is not there).
    pub fn restore_state(&mut self, state: &SimState) -> Result<(), SimError> {
        if state.nodes.len() != self.nodes.len() {
            return Err(SimError::BadState(format!(
                "snapshot has {} node(s), image has {}",
                state.nodes.len(),
                self.nodes.len()
            )));
        }
        if state.stim_pos as usize > state.stimuli.len() {
            return Err(SimError::BadState(format!(
                "stimulus cursor {} beyond {} stimuli",
                state.stim_pos,
                state.stimuli.len()
            )));
        }
        for (ni, ns) in state.nodes.iter().enumerate() {
            let node = &self.image.nodes[ni];
            if ns.tasks.len() != node.tasks.len() {
                return Err(SimError::BadState(format!(
                    "snapshot node `{}` has {} task(s), image has {}",
                    node.node,
                    ns.tasks.len(),
                    node.tasks.len()
                )));
            }
            if ns.data.len() != self.nodes[ni].data.len() {
                return Err(SimError::BadState(format!(
                    "snapshot node `{}` has {} data cell(s), image has {}",
                    node.node,
                    ns.data.len(),
                    self.nodes[ni].data.len()
                )));
            }
            if let Some(a) = ns.anchor {
                let anchored = ns
                    .tasks
                    .get(a.ti)
                    .and_then(|t| t.jobs.first())
                    .is_some_and(|j| j.seq == a.seq);
                if !anchored {
                    return Err(SimError::BadState(format!(
                        "snapshot node `{}` anchors task {} job {} which is not released",
                        node.node, a.ti, a.seq
                    )));
                }
            }
        }

        let n = self.nodes.len();
        self.now_ns = state.now_ns;
        self.stimuli = state.stimuli.clone();
        self.stim_pos = state.stim_pos as usize;
        self.deliveries = state.deliveries.iter().cloned().collect();
        self.memo_hits = state.memo_hits;
        self.memo_misses = state.memo_misses;
        self.events.clear();
        self.calendar = Calendar::default();
        self.epochs = vec![0; n];
        self.dirty.clear();
        self.dirty_flag = vec![false; n];
        self.due = DueSet::default();

        let Simulator {
            image,
            config,
            nodes,
            calendar,
            job_counts,
            ..
        } = self;
        for (ni, ns) in state.nodes.iter().enumerate() {
            let nrt = &mut nodes[ni];
            nrt.data.copy_from_slice(&ns.data);
            nrt.uart.busy_until_ns = ns.uart_busy_until_ns;
            nrt.uart.queue = ns.uart_queue.iter().copied().collect();
            nrt.cycles_executed = ns.cycles_executed;
            nrt.anchor = ns.anchor;
            nrt.ready = crate::calendar::ReadyIndex::default();
            nrt.last_proj = None;
            let mut count: u32 = 0;
            for (ti, ts) in ns.tasks.iter().enumerate() {
                let task = &image.nodes[ni].tasks[ti];
                let rt = &mut nrt.tasks[ti];
                rt.next_release_idx = ts.next_release_idx;
                rt.next_release_ns = ts.next_release_ns;
                rt.next_seq = ts.next_seq;
                rt.jobs = ts.jobs.iter().cloned().collect();
                rt.pending_pubs = ts.pending_pubs.iter().cloned().collect();
                rt.memo = TaskMemo::new(&task.code);
                count += rt.jobs.len() as u32;
                if config.dispatch == DispatchMode::Calendar {
                    calendar.push_release(rt.next_release_ns, ni, ti);
                    for p in &rt.pending_pubs {
                        calendar.push_publish(p.deadline_ns, ni, ti);
                    }
                    if let Some(front) = rt.jobs.front() {
                        nrt.ready.insert(task.priority, front.release_ns, ti);
                    }
                }
            }
            job_counts[ni] = count;
        }
        // Re-project every node's CPU completion into the calendar.
        for ni in 0..n {
            self.mark_dirty(ni);
        }
        self.flush_dirty();
        Ok(())
    }
}

/// The (possibly jittered, tick-quantized) instant of release `k`.
fn release_instant(
    config: &SimConfig,
    offset_ns: u64,
    period_ns: u64,
    k: u64,
    node: usize,
    task: usize,
) -> u64 {
    let nominal = offset_ns + k * period_ns;
    // Jitter is capped so the release sequence stays strictly monotone,
    // which the determinism contract depends on. Tickless: j <= period-1
    // keeps jittered instants ordered. With a tick, quantization rounds
    // up by as much as tick-1, so the cap tightens to period - tick:
    // then q(n_k + j_k) <= n_k + period - 1 < n_{k+1} <= q(n_{k+1} +
    // j_{k+1}) — no two releases of a task can collapse onto one tick.
    let cap = if config.tick_ns == 0 {
        period_ns - 1
    } else {
        period_ns - config.tick_ns
    };
    let max_jitter = config.clock_jitter_ns.min(cap);
    let jittered = nominal + jitter_ns(config.seed, node, task, k, max_jitter);
    if config.tick_ns == 0 {
        jittered
    } else {
        jittered.div_ceil(config.tick_ns) * config.tick_ns
    }
}
