//! Simulator configuration.

use gmdf_codegen::vm::DEFAULT_STEP_BUDGET;
use serde::{Deserialize, Serialize};

/// How the simulator finds the next pending timeline instant.
///
/// Both modes are bit-for-bit equivalent — [`DispatchMode::LegacyScan`]
/// exists as an A/B oracle so tests (and suspicious users) can check the
/// indexed calendar against the original full rescan on any workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DispatchMode {
    /// Indexed event calendar: a priority queue over pending releases,
    /// deadline publications and projected CPU completions, plus a
    /// per-node runnable-job index. Per-event cost is O(log n) in the
    /// number of pending events instead of O(nodes × tasks).
    #[default]
    Calendar,
    /// The original full rescan of every node and task per event.
    /// O(nodes × tasks) per event; kept as the reference oracle.
    LegacyScan,
}

/// Platform parameters of the simulated embedded system.
///
/// The defaults model the idealized platform the reference interpreter
/// assumes — deadline-latched outputs, zero network latency, no clock
/// jitter — so a default-configured run is behaviourally identical to
/// model-level execution, which is exactly what implementation-error
/// detection needs as a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// `true` (default): the kernel publishes task outputs at the
    /// *deadline* instant (timed multitasking — zero I/O jitter);
    /// `false`: outputs are published the moment the task completes,
    /// exposing scheduling-induced jitter.
    pub latch_outputs: bool,
    /// One-way latency of a labeled-signal broadcast between nodes, in
    /// nanoseconds. `0` (default) matches the interpreter's idealized
    /// zero-latency network.
    pub bus_latency_ns: u64,
    /// RS-232 debug-link speed in baud (10 wire bits per byte: start +
    /// 8 data + stop). Default 115 200 — the classic debug UART.
    pub uart_baud: u64,
    /// Kernel tick granularity in nanoseconds. Release instants are
    /// quantized *up* to the next tick multiple. `0` (default) models a
    /// tickless, event-driven kernel.
    pub tick_ns: u64,
    /// Maximum per-release clock jitter in nanoseconds, drawn
    /// deterministically from [`SimConfig::seed`]. `0` (default)
    /// disables the jitter model. Effective jitter is capped below each
    /// task's period so release instants remain monotone.
    pub clock_jitter_ns: u64,
    /// Seed of the deterministic jitter generator.
    pub seed: u64,
    /// VM step budget per task activation (runaway-loop guard).
    pub step_budget: u64,
    /// Timeline dispatch strategy. [`DispatchMode::Calendar`] (default)
    /// and [`DispatchMode::LegacyScan`] produce identical behaviour; the
    /// scan is kept as a property-test oracle and A/B knob.
    pub dispatch: DispatchMode,
    /// `true` (default): memoize task-step execution. A release whose
    /// VM-visible memory footprint matches a previous activation reuses
    /// the cached `{cycles, emits, writes}` instead of re-running the
    /// VM. Bit-for-bit exact (the VM is deterministic and its load/store
    /// addresses are static), so this is purely a speed knob — flip it
    /// off to A/B against uncached execution.
    pub memo_steps: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latch_outputs: true,
            bus_latency_ns: 0,
            uart_baud: 115_200,
            tick_ns: 0,
            clock_jitter_ns: 0,
            seed: 0x9E37_79B9_7F4A_7C15,
            step_budget: DEFAULT_STEP_BUDGET,
            dispatch: DispatchMode::Calendar,
            memo_steps: true,
        }
    }
}
