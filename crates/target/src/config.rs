//! Simulator configuration.

use gmdf_codegen::vm::DEFAULT_STEP_BUDGET;
use serde::{Deserialize, Serialize};

/// How the simulator finds the next pending timeline instant.
///
/// Both modes are bit-for-bit equivalent — [`DispatchMode::LegacyScan`]
/// exists as an A/B oracle so tests (and suspicious users) can check the
/// indexed calendar against the original full rescan on any workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DispatchMode {
    /// Indexed event calendar: a priority queue over pending releases,
    /// deadline publications and projected CPU completions, plus a
    /// per-node runnable-job index. Per-event cost is O(log n) in the
    /// number of pending events instead of O(nodes × tasks).
    #[default]
    Calendar,
    /// The original full rescan of every node and task per event.
    /// O(nodes × tasks) per event; kept as the reference oracle.
    LegacyScan,
}

/// Platform parameters of the simulated embedded system.
///
/// The defaults model the idealized platform the reference interpreter
/// assumes — deadline-latched outputs, zero network latency, no clock
/// jitter — so a default-configured run is behaviourally identical to
/// model-level execution, which is exactly what implementation-error
/// detection needs as a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// `true` (default): the kernel publishes task outputs at the
    /// *deadline* instant (timed multitasking — zero I/O jitter);
    /// `false`: outputs are published the moment the task completes,
    /// exposing scheduling-induced jitter.
    pub latch_outputs: bool,
    /// One-way latency of a labeled-signal broadcast between nodes, in
    /// nanoseconds. `0` (default) matches the interpreter's idealized
    /// zero-latency network.
    pub bus_latency_ns: u64,
    /// RS-232 debug-link speed in baud (10 wire bits per byte: start +
    /// 8 data + stop). Default 115 200 — the classic debug UART.
    pub uart_baud: u64,
    /// Kernel tick granularity in nanoseconds. Release instants are
    /// quantized *up* to the next tick multiple. `0` (default) models a
    /// tickless, event-driven kernel.
    pub tick_ns: u64,
    /// Maximum per-release clock jitter in nanoseconds, drawn
    /// deterministically from [`SimConfig::seed`]. `0` (default)
    /// disables the jitter model. Effective jitter is capped below each
    /// task's period so release instants remain monotone.
    pub clock_jitter_ns: u64,
    /// Seed of the deterministic jitter generator.
    pub seed: u64,
    /// VM step budget per task activation (runaway-loop guard).
    pub step_budget: u64,
    /// Timeline dispatch strategy. [`DispatchMode::Calendar`] (default)
    /// and [`DispatchMode::LegacyScan`] produce identical behaviour; the
    /// scan is kept as a property-test oracle and A/B knob.
    pub dispatch: DispatchMode,
    /// `true` (default): memoize task-step execution. A release whose
    /// VM-visible memory footprint matches a previous activation reuses
    /// the cached `{cycles, emits, writes}` instead of re-running the
    /// VM. Bit-for-bit exact (the VM is deterministic and its load/store
    /// addresses are static), so this is purely a speed knob — flip it
    /// off to A/B against uncached execution.
    pub memo_steps: bool,
}

impl SimConfig {
    /// Upper bound on how far any release of a task with period
    /// `period_ns` can land past its nominal instant under this
    /// configuration — the *effective release jitter* a static analyzer
    /// (`gmdf-analyze`) must widen response-time bounds by.
    ///
    /// This mirrors the kernel's release arithmetic exactly: raw clock
    /// jitter is capped below the period so releases stay monotone
    /// (`period - 1` tickless, `period - tick` with a tick), and tick
    /// quantization then rounds the jittered instant *up* by at most
    /// `tick - 1`. Degenerate periods (`tick >= period`) are rejected
    /// at simulator boot; here they saturate to a finite bound.
    pub fn release_jitter_bound_ns(&self, period_ns: u64) -> u64 {
        let cap = if self.tick_ns == 0 {
            period_ns.saturating_sub(1)
        } else {
            period_ns.saturating_sub(self.tick_ns)
        };
        self.clock_jitter_ns
            .min(cap)
            .saturating_add(self.tick_ns.saturating_sub(1))
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latch_outputs: true,
            bus_latency_ns: 0,
            uart_baud: 115_200,
            tick_ns: 0,
            clock_jitter_ns: 0,
            seed: 0x9E37_79B9_7F4A_7C15,
            step_budget: DEFAULT_STEP_BUDGET,
            dispatch: DispatchMode::Calendar,
            memo_steps: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_bound_matches_kernel_caps() {
        let tickless = SimConfig {
            clock_jitter_ns: 40_000,
            ..SimConfig::default()
        };
        // Raw jitter below the cap passes through unchanged.
        assert_eq!(tickless.release_jitter_bound_ns(1_000_000), 40_000);
        // The cap bites for short periods: period - 1.
        assert_eq!(tickless.release_jitter_bound_ns(10_000), 9_999);

        let ticked = SimConfig {
            clock_jitter_ns: 40_000,
            tick_ns: 100_000,
            ..SimConfig::default()
        };
        // Quantization can add up to tick - 1 on top of the raw jitter.
        assert_eq!(ticked.release_jitter_bound_ns(1_000_000), 40_000 + 99_999);
        // Degenerate (rejected at boot) periods still yield a finite bound.
        assert_eq!(ticked.release_jitter_bound_ns(50_000), 99_999);
    }
}
