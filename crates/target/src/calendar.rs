//! The event calendar: a priority-queue index over pending timeline
//! instants, plus the per-node runnable-job index.
//!
//! ## Why an index at all
//!
//! The simulator's hot loop asks one question per event: *what is the
//! earliest pending instant?* The original implementation answered it by
//! rescanning every task of every node — O(nodes × tasks) per event,
//! which dominates large fleets. The calendar makes the answer an
//! O(log n) heap peek:
//!
//! * **Releases** — one entry per armed release; pushed when the kernel
//!   arms the next activation, consumed exactly at that instant. Never
//!   stale.
//! * **Deadline publications** — one entry per queued [`PendingPub`];
//!   pushed when a completion latches outputs. Never stale.
//! * **CPU completions** — the projected finish instant of the job
//!   currently winning a node's CPU. These *do* go stale (a release or
//!   completion can change the winner), so each entry carries the node's
//!   schedule epoch at push time and is lazily discarded on peek when
//!   the epoch has moved on. The simulator re-projects and re-pushes for
//!   every node whose job set changed in an iteration.
//!
//! Stimuli and network deliveries stay outside the heap: both queues are
//! already time-sorted, so their earliest instant is an O(1) front peek.
//!
//! ## The runnable index
//!
//! `ReadyIndex` mirrors "tasks with at least one released, uncompleted
//! job" as a `BTreeSet` ordered by the scheduler key
//! `(priority, front release, declaration order)`, so picking the
//! highest-priority runnable job is a `first()` instead of a scan over
//! every task.
//!
//! [`PendingPub`]: ../sim/index.html

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// What a calendar entry announces.
///
/// The discriminant values are part of the heap ordering (entries at one
/// instant sort by kind, then node, then task), but dispatch order
/// within an instant is decided by the simulator's apply functions, not
/// by the heap — the kind ranks only make the ordering total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum CalKind {
    /// A queued deadline publication of task `ti` on node `ni` comes due.
    Publish,
    /// Task `ti` on node `ni` has an armed release at this instant.
    Release,
    /// Node `ni`'s currently-winning job is projected to finish.
    /// Valid only while the node's schedule epoch still equals `epoch`.
    Completion,
}

/// One pending instant in the calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CalEntry {
    time_ns: u64,
    kind: CalKind,
    ni: usize,
    ti: usize,
    /// Schedule epoch for `Completion` entries; 0 for exact kinds.
    epoch: u64,
}

/// The events of one timeline instant, grouped by kind, each list sorted
/// by `(node, task)` declaration order — the tie-break the determinism
/// contract fixes. Owned by the simulator and reused across instants so
/// the hot loop does not allocate per event.
#[derive(Debug, Default)]
pub(crate) struct DueSet {
    /// `(ni, ti)` pairs with a deadline publication due.
    pub publishes: Vec<(usize, usize)>,
    /// `(ni, ti)` pairs with an armed release due.
    pub releases: Vec<(usize, usize)>,
}

/// Min-heap of pending timeline instants with lazy invalidation of
/// stale completion projections.
#[derive(Debug, Default)]
pub(crate) struct Calendar {
    heap: BinaryHeap<Reverse<CalEntry>>,
}

impl Calendar {
    /// Announces an armed release of `(ni, ti)` at `time_ns`.
    pub fn push_release(&mut self, time_ns: u64, ni: usize, ti: usize) {
        self.heap.push(Reverse(CalEntry {
            time_ns,
            kind: CalKind::Release,
            ni,
            ti,
            epoch: 0,
        }));
    }

    /// Announces a queued deadline publication of `(ni, ti)` at
    /// `time_ns`.
    pub fn push_publish(&mut self, time_ns: u64, ni: usize, ti: usize) {
        self.heap.push(Reverse(CalEntry {
            time_ns,
            kind: CalKind::Publish,
            ni,
            ti,
            epoch: 0,
        }));
    }

    /// Announces node `ni`'s projected CPU completion at `time_ns`,
    /// valid while the node's schedule epoch stays `epoch`.
    pub fn push_completion(&mut self, time_ns: u64, ni: usize, epoch: u64) {
        self.heap.push(Reverse(CalEntry {
            time_ns,
            kind: CalKind::Completion,
            ni,
            ti: 0,
            epoch,
        }));
    }

    /// The earliest pending instant, discarding stale completion
    /// projections from the top (`epochs[ni]` is each node's current
    /// schedule epoch).
    pub fn peek_earliest(&mut self, epochs: &[u64]) -> Option<u64> {
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.kind == CalKind::Completion && e.epoch != epochs[e.ni] {
                self.heap.pop();
                continue;
            }
            return Some(e.time_ns);
        }
        None
    }

    /// Removes every entry due at or before `t` and collects the exact
    /// (release / publish) events among them into `due` (cleared first),
    /// each list sorted by `(node, task)` and deduplicated. Completion
    /// entries are simply dropped — the CPU advance handles completions
    /// itself, and any still-valid one at `t` is re-projected by the
    /// caller afterwards.
    pub fn take_due(&mut self, t: u64, due: &mut DueSet) {
        due.publishes.clear();
        due.releases.clear();
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.time_ns > t {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked entry");
            match e.kind {
                CalKind::Publish => due.publishes.push((e.ni, e.ti)),
                CalKind::Release => due.releases.push((e.ni, e.ti)),
                CalKind::Completion => {}
            }
        }
        due.publishes.sort_unstable();
        due.publishes.dedup();
        due.releases.sort_unstable();
        due.releases.dedup();
    }

    /// Number of entries currently held (stale completions included).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Per-node index of runnable tasks ordered by the fixed-priority
/// scheduler key `(priority, front-job release, declaration order)` —
/// lower wins.
#[derive(Debug, Default)]
pub(crate) struct ReadyIndex {
    set: BTreeSet<(u8, u64, usize)>,
}

impl ReadyIndex {
    /// Marks task `ti` runnable with the given priority and front-job
    /// release instant.
    pub fn insert(&mut self, prio: u8, release_ns: u64, ti: usize) {
        self.set.insert((prio, release_ns, ti));
    }

    /// Unmarks task `ti` (its front job left the queue).
    pub fn remove(&mut self, prio: u8, release_ns: u64, ti: usize) {
        let was = self.set.remove(&(prio, release_ns, ti));
        debug_assert!(was, "ready-index entry missing on removal");
    }

    /// The winning runnable task: `(task index, priority)`.
    pub fn first(&self) -> Option<(usize, u8)> {
        self.set.first().map(|&(p, _, ti)| (ti, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_instant_wins_regardless_of_push_order() {
        let mut c = Calendar::default();
        c.push_release(500, 0, 0);
        c.push_publish(200, 1, 3);
        c.push_release(200, 0, 1);
        assert_eq!(c.peek_earliest(&[0, 0]), Some(200));
        let mut due = DueSet::default();
        c.take_due(200, &mut due);
        assert_eq!(due.publishes, vec![(1, 3)]);
        assert_eq!(due.releases, vec![(0, 1)]);
        assert_eq!(c.peek_earliest(&[0, 0]), Some(500));
    }

    #[test]
    fn stale_completions_are_discarded_on_peek() {
        let mut c = Calendar::default();
        c.push_completion(100, 0, 7); // stale: node 0 is at epoch 8
        c.push_completion(300, 1, 2); // valid
        assert_eq!(c.peek_earliest(&[8, 2]), Some(300));
        assert_eq!(c.len(), 1, "the stale entry must be gone");
    }

    #[test]
    fn due_set_sorts_by_declaration_order() {
        let mut c = Calendar::default();
        c.push_release(10, 2, 0);
        c.push_release(10, 0, 1);
        c.push_release(10, 0, 0);
        let mut due = DueSet::default();
        due.publishes.push((9, 9)); // cleared on reuse
        c.take_due(10, &mut due);
        assert!(due.publishes.is_empty());
        assert_eq!(due.releases, vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    fn ready_index_orders_by_priority_then_release_then_ti() {
        let mut r = ReadyIndex::default();
        r.insert(3, 100, 0);
        r.insert(1, 900, 2);
        r.insert(1, 900, 1);
        assert_eq!(r.first(), Some((1, 1)));
        r.remove(1, 900, 1);
        assert_eq!(r.first(), Some((2, 1)));
        r.remove(1, 900, 2);
        assert_eq!(r.first(), Some((0, 3)));
    }
}
