//! # gmdf-target — the embedded target simulator
//!
//! The paper's runtime debugging loop needs a *target side*: generated
//! code executing on an embedded board that either actively "sends
//! specific commands (events) at particular points of execution" over
//! RS-232, or is observed passively through JTAG watchpoints with zero
//! target overhead (paper §II). This crate is that board, simulated
//! deterministically:
//!
//! * [`Simulator`] — a multi-node execution platform for the
//!   [`ProgramImage`](gmdf_codegen::ProgramImage)s produced by
//!   `gmdf_codegen`. Each node runs a periodic-task kernel in the
//!   *Distributed Timed Multitasking* style: task inputs are latched at
//!   release instants, task code executes under preemptive fixed-priority
//!   scheduling with cycle-accurate costs, and outputs are published at
//!   deadline instants (eliminating I/O jitter) or, optionally, at
//!   completion time ([`SimConfig::latch_outputs`]).
//! * An RS-232 **UART model** per node: `Emit` instructions woven in by
//!   the code generator become command [`Frame`](gmdf_codegen::Frame)s
//!   serialized at a configurable baud rate; [`Simulator::uart_take`]
//!   yields the timestamped byte stream the active channel decodes.
//! * [`JtagMonitor`] — an IEEE 1149.1-style watch unit that polls
//!   *monitored variables* (symbol-table cells) on a TAP clock budget and
//!   reports [`WatchEvent`]s, without adding a single target cycle.
//!
//! Everything is deterministic: the same image and [`SimConfig`] produce
//! the same [`SimEvent`] log, byte stream and watch hits on every run —
//! the property replay-based debugging depends on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calendar;
mod config;
mod error;
mod event;
mod jtag;
mod memo;
mod sim;

pub use config::{DispatchMode, SimConfig};
pub use error::SimError;
pub use event::{SimEvent, WatchEvent};
pub use jtag::{JtagMonitor, JtagState};
pub use sim::{cycles_to_ns, SimState, Simulator};
