//! Observable simulator events.

use gmdf_comdes::SignalValue;
use std::sync::Arc;

/// One entry of the simulator's event log — the platform-level record of
/// a run (kernel activity and signal-board traffic). Model-level command
/// traffic travels separately, over the UART byte stream or the JTAG
/// watch hits.
///
/// Node and actor names are interned `Arc<str>`s shared with the
/// simulator's boot-time name table: logging an event costs a reference
/// count bump, not a heap-allocated `String` clone per release /
/// completion / publication. `Arc<str>` formats (`Debug` and `Display`)
/// exactly like `String`, so event-log comparisons are unaffected.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// An environment stimulus was applied to the signal boards.
    Stimulus {
        /// Application time.
        time_ns: u64,
        /// Signal label written.
        label: String,
        /// Written value.
        value: SignalValue,
    },
    /// A task activation was released (inputs latched, step executed).
    Release {
        /// Release instant.
        time_ns: u64,
        /// Node name.
        node: Arc<str>,
        /// Actor task name.
        actor: Arc<str>,
    },
    /// A task activation finished consuming its CPU demand.
    Completion {
        /// Completion instant.
        time_ns: u64,
        /// Node name.
        node: Arc<str>,
        /// Actor task name.
        actor: Arc<str>,
        /// Completion minus release (the response time).
        response_ns: u64,
        /// Cycles the activation consumed.
        cycles: u64,
    },
    /// A task activation completed after its deadline.
    DeadlineMiss {
        /// Completion instant (when the miss became known).
        time_ns: u64,
        /// Node name.
        node: Arc<str>,
        /// Actor task name.
        actor: Arc<str>,
        /// How far past the deadline the activation ran.
        overrun_ns: u64,
    },
    /// An actor output was published to the signal boards.
    Publish {
        /// Publication instant: the deadline under output latching, the
        /// completion time otherwise.
        time_ns: u64,
        /// Producing node.
        node: Arc<str>,
        /// Producing actor.
        actor: Arc<str>,
        /// Signal label.
        label: String,
        /// Published value.
        value: SignalValue,
    },
}

impl SimEvent {
    /// The event's timestamp.
    pub fn time_ns(&self) -> u64 {
        match self {
            SimEvent::Stimulus { time_ns, .. }
            | SimEvent::Release { time_ns, .. }
            | SimEvent::Completion { time_ns, .. }
            | SimEvent::DeadlineMiss { time_ns, .. }
            | SimEvent::Publish { time_ns, .. } => *time_ns,
        }
    }
}

/// A change of a watched cell, reported by the passive JTAG channel.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// Poll instant that observed the change.
    pub time_ns: u64,
    /// Node the cell lives on.
    pub node: String,
    /// Symbol-table name of the cell.
    pub symbol: String,
    /// The newly observed value.
    pub value: SignalValue,
}
