//! Simulator error type.

use gmdf_codegen::VmError;
use std::fmt;

/// Simulation construction or execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A signal label that no node's board knows.
    UnknownLabel(String),
    /// A node name not present in the image.
    UnknownNode(String),
    /// A symbol not present in the node's symbol table.
    UnknownSymbol {
        /// The node searched.
        node: String,
        /// The missing symbol name.
        symbol: String,
    },
    /// Generated code faulted in the VM.
    Vm {
        /// Node the task runs on.
        node: String,
        /// Faulting actor task.
        actor: String,
        /// The underlying VM fault.
        error: VmError,
    },
    /// The configuration is unusable (zero baud, zero TCK, …).
    BadConfig(String),
    /// The program image violates a platform invariant.
    BadImage(String),
    /// A state snapshot does not fit the simulator it is being restored
    /// into (shape mismatch or internal inconsistency).
    BadState(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownLabel(l) => write!(f, "unknown signal label `{l}`"),
            SimError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            SimError::UnknownSymbol { node, symbol } => {
                write!(f, "unknown symbol `{symbol}` on node `{node}`")
            }
            SimError::Vm { node, actor, error } => {
                write!(f, "task `{actor}` on `{node}` faulted: {error}")
            }
            SimError::BadConfig(m) => write!(f, "bad simulator configuration: {m}"),
            SimError::BadImage(m) => write!(f, "bad program image: {m}"),
            SimError::BadState(m) => write!(f, "bad state snapshot: {m}"),
        }
    }
}

impl std::error::Error for SimError {}
