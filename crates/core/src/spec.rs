//! Serializable session specifications.
//!
//! A [`SessionSpec`] is everything needed to (re)build a
//! [`DebugSession`] from nothing: the input system, the derived debug
//! model, the channel mode, and the compile/simulator options. Because
//! the simulator and the code generator are fully deterministic, a spec
//! plus the journal of applied commands *is* the session — the debug
//! server persists exactly this pair to recreate hosted sessions after
//! a restart.

use crate::session::{ChannelMode, DebugSession, SessionError};
use gmdf_codegen::CompileOptions;
use gmdf_comdes::System;
use gmdf_gdm::DebuggerModel;
use gmdf_target::SimConfig;
use serde::{Deserialize, Serialize};

/// A complete, serializable recipe for one debug session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The COMDES input system (steps 1–2 of the workflow).
    pub system: System,
    /// The derived, laid-out debug model (steps 3–4).
    pub gdm: DebuggerModel,
    /// The command interface (step 5).
    pub channel: ChannelMode,
    /// Code-generation options (instrumentation, injected faults).
    pub compile: CompileOptions,
    /// Target simulator configuration.
    pub sim: SimConfig,
}

impl SessionSpec {
    /// Builds a fresh session from the spec — compiling the system,
    /// booting the simulator and connecting the channel, exactly like
    /// [`DebugSession::build`].
    ///
    /// # Errors
    ///
    /// Propagates model, compile and simulator errors.
    pub fn build(&self) -> Result<DebugSession, SessionError> {
        DebugSession::build(
            self.system.clone(),
            self.gdm.clone(),
            self.channel,
            self.compile.clone(),
            self.sim,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workflow;
    use gmdf_codegen::InstrumentOptions;
    use gmdf_comdes::{ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, Timing};

    fn spec() -> SessionSpec {
        let fsm = FsmBuilder::new()
            .output(Port::boolean("lamp"))
            .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
            .state("On", |s| s.entry("lamp", Expr::Bool(true)))
            .transition(
                "Off",
                "On",
                Expr::var(gmdf_comdes::VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
            )
            .transition(
                "On",
                "Off",
                Expr::var(gmdf_comdes::VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
            )
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .output(Port::boolean("lamp"))
            .state_machine("ctl", fsm)
            .connect("ctl.lamp", "lamp")
            .unwrap()
            .build()
            .unwrap();
        let actor = ActorBuilder::new("Blinker", net)
            .output("lamp", "lamp")
            .timing(Timing::periodic(1_000_000, 0))
            .build()
            .unwrap();
        let mut node = NodeSpec::new("ecu", 50_000_000);
        node.actors.push(actor);
        let system = System::new("blink").with_node(node);
        Workflow::from_system(system)
            .unwrap()
            .default_abstraction()
            .default_commands()
            .into_spec(
                ChannelMode::Active,
                CompileOptions {
                    instrument: InstrumentOptions::behavior(),
                    faults: vec![],
                },
                SimConfig::default(),
            )
    }

    #[test]
    fn spec_round_trips_and_rebuilds_identically() {
        let spec = spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SessionSpec = serde_json::from_str(&json).unwrap();
        // Two sessions built from the round-tripped spec record
        // byte-identical traces — the determinism the debug server's
        // restore path rests on.
        let mut a = spec.build().unwrap();
        let mut b = back.build().unwrap();
        a.run_for(10_000_000).unwrap();
        b.run_for(10_000_000).unwrap();
        assert_eq!(a.engine().trace().to_json(), b.engine().trace().to_json());
        assert!(!a.engine().trace().is_empty());
    }
}
