//! COMDES presets: the standard abstraction mapping and expectation
//! derivation for the prototype's input language.
//!
//! "The COMDES design model is the only input model used in the current
//! tool" (paper §III); these presets are the pairing list an experienced
//! user would click together in the Fig. 4 dialog for COMDES models.

use gmdf_comdes::{comdes_metamodel, export_system, ComdesError, System};
use gmdf_engine::{allowed_transitions, Expectation};
use gmdf_gdm::{
    Abstraction, AbstractionGuide, CommandBinding, DebuggerModel, EdgeRule, GdmPattern,
};
use gmdf_metamodel::Model;
use std::sync::Arc;

/// The default COMDES → GDM mapping: actors and basic blocks as
/// rectangles, state machines and modal blocks as rounded containers,
/// states as circles, modes as rounded rectangles, ports as triangles;
/// transitions (guard-labeled) and connections as arrows.
///
/// # Panics
///
/// Never in practice: the pairings reference the fixed COMDES metamodel.
pub fn comdes_abstraction() -> Abstraction {
    let mm = Arc::new(comdes_metamodel());
    let mut g = AbstractionGuide::new(mm);
    g.pair("Actor", GdmPattern::Rectangle)
        .expect("fixed metamodel");
    g.pair("BasicBlock", GdmPattern::Rectangle)
        .expect("fixed metamodel");
    g.pair("StateMachineBlock", GdmPattern::RoundedRectangle)
        .expect("fixed metamodel");
    g.pair("State", GdmPattern::Circle)
        .expect("fixed metamodel");
    g.pair("ModalBlock", GdmPattern::RoundedRectangle)
        .expect("fixed metamodel");
    g.pair("Mode", GdmPattern::RoundedRectangle)
        .expect("fixed metamodel");
    g.pair("CompositeBlock", GdmPattern::RoundedRectangle)
        .expect("fixed metamodel");
    g.edge_rule(EdgeRule::ByReferences {
        metaclass: "Transition".into(),
        source: "source".into(),
        target: "target".into(),
        label_attr: Some("guard".into()),
    })
    .expect("fixed metamodel");
    g.edge_rule(EdgeRule::ByAttributes {
        metaclass: "Connection".into(),
        from: "from".into(),
        to: "to".into(),
    })
    .expect("fixed metamodel");
    g.finish().expect("nonempty mapping")
}

/// Derives a runtime-aligned debug model from a COMDES export: applies
/// the mapping, then strips the `system/node/` path prefix so element
/// paths match the command stream's actor-rooted paths.
pub fn comdes_gdm(model: &Model, name: &str, bindings: Vec<CommandBinding>) -> DebuggerModel {
    let mut gdm = comdes_abstraction().derive_with_bindings(model, name, bindings);
    gdm.strip_path_prefix(2);
    gdm
}

/// Derives a runtime-aligned debug model with the default bindings.
pub fn comdes_gdm_default(model: &Model, name: &str) -> DebuggerModel {
    comdes_gdm(model, name, gmdf_gdm::default_bindings())
}

/// Derives [`Expectation::AllowedTransitions`] monitors for every state
/// machine in `system`, from the system's own model — any observed
/// transition outside the model is then an implementation error by
/// construction.
///
/// # Errors
///
/// Propagates system validation/export failures.
pub fn comdes_allowed_transitions(system: &System) -> Result<Vec<Expectation>, ComdesError> {
    let (_, model) = export_system(system)?;
    // Export paths are `system/node/actor/...`; runtime events start at
    // the actor, so skip the two leading segments.
    Ok(allowed_transitions(
        &model,
        "Transition",
        "source",
        "target",
        2,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_comdes::{ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, Timing};

    fn sys() -> System {
        let fsm = FsmBuilder::new()
            .output(Port::boolean("q"))
            .state("A", |s| s.during("q", Expr::Bool(false)))
            .state("B", |s| s.during("q", Expr::Bool(true)))
            .transition("A", "B", Expr::Bool(true))
            .transition("B", "A", Expr::Bool(false))
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .output(Port::boolean("q"))
            .state_machine("m", fsm)
            .connect("m.q", "q")
            .unwrap()
            .build()
            .unwrap();
        let a = ActorBuilder::new("Act", net)
            .output("q", "lamp")
            .timing(Timing::periodic(1_000_000, 0))
            .build()
            .unwrap();
        let mut node = NodeSpec::new("n", 50_000_000);
        node.actors.push(a);
        System::new("s").with_node(node)
    }

    #[test]
    fn preset_abstraction_derives_comdes_models() {
        let (_, model) = export_system(&sys()).unwrap();
        let gdm = comdes_gdm_default(&model, "debug");
        assert!(gdm.check().is_empty());
        // Actor, FSM block, two states mapped; System/Node unmapped.
        assert!(gdm.element_index("Act/m/A").is_some());
        assert!(gdm.element_index("Act/m/B").is_some());
        assert_eq!(gdm.edges.len(), 3); // 2 transitions + 1 connection (m.q → q is boundary, skipped? m has 1 conn to output → endpoint without dot → parent; from m.q resolves to m element; parent=actor → edge m→actor)
    }

    #[test]
    fn allowed_transitions_use_runtime_paths() {
        let exps = comdes_allowed_transitions(&sys()).unwrap();
        assert_eq!(exps.len(), 1);
        let Expectation::AllowedTransitions { fsm_path, allowed } = &exps[0] else {
            panic!("wrong expectation kind");
        };
        assert_eq!(fsm_path, "Act/m");
        assert_eq!(allowed.len(), 2);
    }
}
