//! The prototype execution flow of paper Fig. 6, as a typed builder.
//!
//! The figure numbers five steps:
//!
//! 1. the plug-in starts once the input prerequisites (meta-model, model,
//!    executable code) are available;
//! 2. an interface selects the input files;
//! 3. the model abstraction guide sets up the mapping;
//! 4. command reaction information is added;
//! 5. the GDM is created and a communication channel to the embedded
//!    controller is established — the debugger then waits for commands.
//!
//! [`Workflow`] walks exactly these steps and ends in a live
//! [`DebugSession`].

use crate::presets::comdes_abstraction;
use crate::session::{ChannelMode, DebugSession, SessionError};
use gmdf_codegen::CompileOptions;
use gmdf_comdes::{export_system, System};
use gmdf_gdm::{default_bindings, Abstraction, AbstractionGuide, CommandBinding, DebuggerModel};
use gmdf_metamodel::{Metamodel, Model};
use gmdf_target::SimConfig;
use std::sync::Arc;

/// Step 1–2: input prerequisites loaded.
#[derive(Debug)]
pub struct Workflow {
    system: System,
    metamodel: Arc<Metamodel>,
    model: Model,
}

impl Workflow {
    /// Steps 1–2: start the tool and load the inputs. The COMDES system
    /// plays all three input roles: the model and metamodel are exported
    /// from it, and the executable code is generated from it at connect
    /// time.
    ///
    /// # Errors
    ///
    /// Propagates system validation errors.
    pub fn from_system(system: System) -> Result<Self, SessionError> {
        let (metamodel, model) = export_system(&system)?;
        Ok(Workflow {
            system,
            metamodel,
            model,
        })
    }

    /// The exported input model (inspection / validation).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The input metamodel.
    pub fn metamodel(&self) -> &Arc<Metamodel> {
        &self.metamodel
    }

    /// Step 3: open the abstraction guide. `configure` receives the guide
    /// with the metamodel element list loaded; returning `Ok` presses
    /// *ABSTRACTION FINISHED*.
    ///
    /// # Errors
    ///
    /// Propagates guide errors (unknown metaclasses, empty mapping…).
    pub fn abstraction_guide<F>(self, configure: F) -> Result<WorkflowMapped, SessionError>
    where
        F: FnOnce(&mut AbstractionGuide) -> Result<(), gmdf_gdm::AbstractionError>,
    {
        let mut guide = AbstractionGuide::new(self.metamodel.clone());
        configure(&mut guide)
            .map_err(|e| SessionError::Model(gmdf_comdes::ComdesError::BadSystem(e.to_string())))?;
        let abstraction = guide
            .finish()
            .map_err(|e| SessionError::Model(gmdf_comdes::ComdesError::BadSystem(e.to_string())))?;
        Ok(WorkflowMapped {
            wf: self,
            abstraction,
        })
    }

    /// Step 3 (shortcut): use the standard COMDES pairing list.
    pub fn default_abstraction(self) -> WorkflowMapped {
        WorkflowMapped {
            abstraction: comdes_abstraction(),
            wf: self,
        }
    }
}

/// Step 3 done: mapping frozen.
#[derive(Debug)]
pub struct WorkflowMapped {
    wf: Workflow,
    abstraction: Abstraction,
}

impl WorkflowMapped {
    /// Step 4: add command reaction information (which command triggers
    /// which type of reaction). The derived GDM is runtime-aligned: the
    /// `system/node/` export prefix is stripped from element paths so
    /// they match incoming command paths.
    pub fn command_settings(self, bindings: Vec<CommandBinding>) -> WorkflowConfigured {
        let mut gdm = self.abstraction.derive_with_bindings(
            &self.wf.model,
            &format!("{} — debug model", self.wf.system.name),
            bindings,
        );
        gdm.strip_path_prefix(2);
        WorkflowConfigured { wf: self.wf, gdm }
    }

    /// Step 4 (shortcut): the default reaction set.
    pub fn default_commands(self) -> WorkflowConfigured {
        self.command_settings(default_bindings())
    }
}

/// Step 4 done: the initial GDM file exists.
#[derive(Debug)]
pub struct WorkflowConfigured {
    wf: Workflow,
    gdm: DebuggerModel,
}

impl WorkflowConfigured {
    /// The generated debug model (the `.gdm.json` of the prototype).
    pub fn gdm(&self) -> &DebuggerModel {
        &self.gdm
    }

    /// Step 5: create the GDM and establish the communication channel —
    /// returns the live session, waiting for commands.
    ///
    /// # Errors
    ///
    /// Propagates compile and simulator errors.
    pub fn connect(
        self,
        channel: ChannelMode,
        compile: CompileOptions,
        sim: SimConfig,
    ) -> Result<DebugSession, SessionError> {
        DebugSession::build(self.wf.system, self.gdm, channel, compile, sim)
    }

    /// Step 5, deferred: freeze the configured pipeline into a
    /// serializable [`crate::SessionSpec`] instead of connecting now —
    /// the form the debug server persists for durable sessions.
    pub fn into_spec(
        self,
        channel: ChannelMode,
        compile: CompileOptions,
        sim: SimConfig,
    ) -> crate::SessionSpec {
        crate::SessionSpec {
            system: self.wf.system,
            gdm: self.gdm,
            channel,
            compile,
            sim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_codegen::InstrumentOptions;
    use gmdf_comdes::{ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, Timing};
    use gmdf_gdm::GdmPattern;

    fn system() -> System {
        let fsm = FsmBuilder::new()
            .output(Port::int("s"))
            .state("A", |st| st.during("s", Expr::Int(0)))
            .state("B", |st| st.during("s", Expr::Int(1)))
            .transition(
                "A",
                "B",
                Expr::var(gmdf_comdes::VAR_TIME_IN_STATE).ge(Expr::Real(0.001)),
            )
            .transition(
                "B",
                "A",
                Expr::var(gmdf_comdes::VAR_TIME_IN_STATE).ge(Expr::Real(0.001)),
            )
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .output(Port::int("s"))
            .state_machine("m", fsm)
            .connect("m.s", "s")
            .unwrap()
            .build()
            .unwrap();
        let a = ActorBuilder::new("A1", net)
            .output("s", "sig")
            .timing(Timing::periodic(1_000_000, 0))
            .build()
            .unwrap();
        let mut node = NodeSpec::new("ecu", 50_000_000);
        node.actors.push(a);
        System::new("wf").with_node(node)
    }

    #[test]
    fn five_step_workflow_reaches_a_live_session() {
        // Steps 1–2.
        let wf = Workflow::from_system(system()).unwrap();
        assert!(!wf.model().is_empty());
        // Step 3 with a custom pairing.
        let mapped = wf
            .abstraction_guide(|g| {
                g.pair("Actor", GdmPattern::Rectangle)?;
                g.pair("State", GdmPattern::Circle)?;
                g.edge_rule(gmdf_gdm::EdgeRule::ByReferences {
                    metaclass: "Transition".into(),
                    source: "source".into(),
                    target: "target".into(),
                    label_attr: Some("guard".into()),
                })
            })
            .unwrap();
        // Step 4.
        let configured = mapped.default_commands();
        assert!(configured.gdm().element_index("A1/m/A").is_some());
        // Step 5.
        let mut session = configured
            .connect(
                ChannelMode::Active,
                CompileOptions {
                    instrument: InstrumentOptions::behavior(),
                    faults: vec![],
                },
                SimConfig::default(),
            )
            .unwrap();
        let report = session.run_for(10_000_000).unwrap();
        assert!(report.events_fed > 0);
    }

    #[test]
    fn default_shortcuts_work() {
        let session = Workflow::from_system(system())
            .unwrap()
            .default_abstraction()
            .default_commands()
            .connect(
                ChannelMode::Passive {
                    poll_period_ns: 100_000,
                    tck_hz: 10_000_000,
                },
                CompileOptions::default(),
                SimConfig::default(),
            );
        assert!(session.is_ok());
    }

    #[test]
    fn bad_abstraction_surfaces_errors() {
        let err = Workflow::from_system(system())
            .unwrap()
            .abstraction_guide(|g| g.pair("Ghost", GdmPattern::Circle).map(|_| ()))
            .unwrap_err();
        assert!(err.to_string().contains("Ghost"));
    }
}
