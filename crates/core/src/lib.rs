//! # gmdf — the Graphical Model Debugger Framework
//!
//! Rust reproduction of *"Graphical Model Debugger Framework for Embedded
//! Systems"* (Zeng, Guo, Angelov — DATE 2010): debug embedded design
//! models **at runtime**, by executing generated code on the (simulated)
//! target while animating the model in the debugger.
//!
//! The facade ties the substrate crates together:
//!
//! | paper part | crate |
//! |---|---|
//! | MOF/EMF metamodeling | [`gmdf_metamodel`] |
//! | COMDES input language + reference interpreter | [`gmdf_comdes`] |
//! | model transformation / command interface | [`gmdf_codegen`] |
//! | embedded target (kernel, RS-232, JTAG) | [`gmdf_target`] |
//! | GDM + abstraction (Figs. 3–4) | [`gmdf_gdm`] |
//! | runtime engine, trace, replay | [`gmdf_engine`] |
//! | canvas + timing diagrams | [`gmdf_render`] |
//!
//! The [`Workflow`] type walks the five steps of paper Fig. 6 and ends in
//! a live [`DebugSession`]:
//!
//! ```
//! use gmdf::{ChannelMode, Workflow};
//! use gmdf_codegen::CompileOptions;
//! use gmdf_comdes::{ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port,
//!                   System, Timing, VAR_TIME_IN_STATE};
//! use gmdf_target::SimConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Model a blinking lamp (steps 1–2 feed on a COMDES system).
//! let fsm = FsmBuilder::new()
//!     .output(Port::boolean("lamp"))
//!     .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
//!     .state("On", |s| s.entry("lamp", Expr::Bool(true)))
//!     .transition("Off", "On", Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)))
//!     .transition("On", "Off", Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)))
//!     .build()?;
//! let net = NetworkBuilder::new()
//!     .output(Port::boolean("lamp"))
//!     .state_machine("ctl", fsm)
//!     .connect("ctl.lamp", "lamp")?
//!     .build()?;
//! let actor = ActorBuilder::new("Blinker", net)
//!     .output("lamp", "lamp")
//!     .timing(Timing::periodic(1_000_000, 0))
//!     .build()?;
//! let mut node = NodeSpec::new("ecu", 50_000_000);
//! node.actors.push(actor);
//! let system = System::new("blink").with_node(node);
//!
//! // Steps 3–5: abstraction, command settings, GDM + channel.
//! let mut session = Workflow::from_system(system)?
//!     .default_abstraction()
//!     .default_commands()
//!     .connect(ChannelMode::Active, CompileOptions::default(), SimConfig::default())?;
//!
//! session.run_for(10_000_000)?;
//! assert!(session.engine().trace().len() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channel;
mod presets;
mod session;
mod spec;
mod workflow;

pub use channel::{to_event_value, ActiveChannel, PassiveChannel};
pub use presets::{comdes_abstraction, comdes_allowed_transitions, comdes_gdm, comdes_gdm_default};
pub use session::{ChannelMode, DebugSession, RunReport, SessionCheckpoint, SessionError};
pub use spec::SessionSpec;
pub use workflow::{Workflow, WorkflowConfigured, WorkflowMapped};

use gmdf_comdes::BehaviorEvent;
use gmdf_gdm::{EventKind, ModelEvent};

/// Converts a reference-interpreter behaviour event into the debugger's
/// event vocabulary (used to build reference streams for bug
/// classification).
pub fn behavior_to_model_event(time_ns: u64, be: &BehaviorEvent) -> ModelEvent {
    match be {
        BehaviorEvent::StateEnter {
            block_path,
            from,
            to,
        } => ModelEvent::new(time_ns, EventKind::StateEnter, block_path)
            .with_from(from)
            .with_to(to),
        BehaviorEvent::ModeSwitch {
            block_path,
            from,
            to,
        } => ModelEvent::new(time_ns, EventKind::ModeSwitch, block_path)
            .with_from(from)
            .with_to(to),
    }
}
