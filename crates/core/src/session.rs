//! Debug sessions: the assembled GMDF pipeline.
//!
//! A [`DebugSession`] wires all three parts of the framework together
//! (paper Fig. 2): the *user input* (a COMDES system and its generated
//! executable code), the *GDM* (derived by abstraction), and the *runtime
//! engine* — connected to the target simulator through the active RS-232
//! channel or the passive JTAG monitor.

use crate::channel::{ActiveChannel, PassiveChannel};
use gmdf_codegen::{compile_system, CompileError, CompileOptions, FrameDecoder, ProgramImage};
use gmdf_comdes::{ComdesError, Interpreter, SignalValue, System};
use gmdf_engine::{classify, BugClass, DebuggerEngine, Divergence, EngineCheckpoint};
use gmdf_gdm::{DebuggerModel, ModelEvent};
use gmdf_target::{JtagMonitor, JtagState, SimConfig, SimError, SimState, Simulator};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which command interface the session uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChannelMode {
    /// Instrumented code sends frames over RS-232.
    Active,
    /// JTAG polling of monitored variables; zero target overhead.
    Passive {
        /// Poll period in nanoseconds.
        poll_period_ns: u64,
        /// Probe TCK frequency in Hz.
        tck_hz: u64,
    },
}

/// Session construction/run failure.
#[derive(Debug)]
pub enum SessionError {
    /// The input model is invalid.
    Model(ComdesError),
    /// Code generation failed.
    Compile(CompileError),
    /// Target simulation failed.
    Sim(SimError),
    /// The trace's backing store failed (a disk-backed read/flush).
    Trace(gmdf_engine::StoreError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Model(e) => write!(f, "model error: {e}"),
            SessionError::Compile(e) => write!(f, "compile error: {e}"),
            SessionError::Sim(e) => write!(f, "simulation error: {e}"),
            SessionError::Trace(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ComdesError> for SessionError {
    fn from(e: ComdesError) -> Self {
        SessionError::Model(e)
    }
}

impl From<CompileError> for SessionError {
    fn from(e: CompileError) -> Self {
        SessionError::Compile(e)
    }
}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> Self {
        SessionError::Sim(e)
    }
}

/// Summary of one [`DebugSession::run_for`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Model events fed to the engine.
    pub events_fed: usize,
    /// Expectation violations raised in this window.
    pub violations: usize,
    /// `true` if a breakpoint paused the engine.
    pub breakpoint_hit: bool,
}

/// Full serializable state of a [`DebugSession`] at one instant — the
/// unit a checkpoint store persists for O(interval) time travel.
///
/// Captures the target platform ([`SimState`]), the channel's
/// mid-stream decode state (partial UART frames / JTAG change
/// detection), the engine's presentation state
/// ([`EngineCheckpoint`]), the stimulus schedule, and the trace length
/// at the instant. The execution trace itself is **not** inside the
/// checkpoint: it lives in its own (segmented) store, and a restored
/// session regenerates entries from `trace_len` onward by
/// deterministic replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    sim: SimState,
    engine: EngineCheckpoint,
    /// Per-node frame decoders in node order (active channel only).
    active: Option<Vec<FrameDecoder>>,
    passive: Option<JtagState>,
    stimuli: Vec<(u64, String, SignalValue)>,
    trace_len: u64,
}

impl SessionCheckpoint {
    /// Simulation time at which the checkpoint was taken.
    pub fn t_ns(&self) -> u64 {
        self.sim.now_ns()
    }

    /// Trace length (next sequence number) at the checkpoint instant.
    pub fn trace_len(&self) -> u64 {
        self.trace_len
    }
}

/// A live model-level debug session.
#[derive(Debug)]
pub struct DebugSession {
    system: System,
    sim: Simulator,
    engine: DebuggerEngine,
    active: Option<Vec<(String, ActiveChannel)>>,
    passive: Option<(JtagMonitor, PassiveChannel)>,
    stimuli: Vec<(u64, String, SignalValue)>,
    /// Reused UART drain buffer — the pump runs every slice, and a fresh
    /// allocation per node per slice is measurable at fleet scale.
    uart_buf: Vec<(u64, u8)>,
}

// Sessions migrate onto scheduler worker threads; keep the entire
// session graph `Send` (compile-time check, so a regression fails every
// build rather than only the server crate's).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<DebugSession>()
};

impl DebugSession {
    /// Builds a session: compiles the system, boots the simulator, and
    /// connects the chosen channel.
    ///
    /// For the passive mode, every state and mode cell in the image is
    /// watched automatically (the "monitored variables" selection).
    ///
    /// # Errors
    ///
    /// Propagates model, compile and simulator errors.
    pub fn build(
        system: System,
        gdm: DebuggerModel,
        channel: ChannelMode,
        compile: CompileOptions,
        sim_config: SimConfig,
    ) -> Result<Self, SessionError> {
        let image: ProgramImage = compile_system(&system, &compile)?;
        let debug = image.debug.clone();
        let watch_suggestions = debug.watch_suggestions.clone();
        let sim = Simulator::new(image, sim_config)?;
        let engine = DebuggerEngine::new(gdm);
        let (active, passive) = match channel {
            ChannelMode::Active => {
                let chans = system
                    .nodes
                    .iter()
                    .map(|n| (n.name.clone(), ActiveChannel::new(debug.clone())))
                    .collect();
                (Some(chans), None)
            }
            ChannelMode::Passive {
                poll_period_ns,
                tck_hz,
            } => {
                let mut monitor = JtagMonitor::new(poll_period_ns, tck_hz);
                for (node, symbol) in &watch_suggestions {
                    if symbol.ends_with("#state") || symbol.ends_with("#last") {
                        monitor
                            .watch(&sim, node, symbol)
                            .map_err(SessionError::Sim)?;
                    }
                }
                (None, Some((monitor, PassiveChannel::new(&system))))
            }
        };
        Ok(DebugSession {
            system,
            sim,
            engine,
            active,
            passive,
            stimuli: Vec::new(),
            uart_buf: Vec::new(),
        })
    }

    /// The input system under debug.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The debugger engine (trace, violations, frames).
    pub fn engine(&self) -> &DebuggerEngine {
        &self.engine
    }

    /// Mutable engine access (breakpoints, stepping, expectations).
    pub fn engine_mut(&mut self) -> &mut DebuggerEngine {
        &mut self.engine
    }

    /// Replaces the execution trace's backend (e.g. with a segmented
    /// on-disk [`gmdf_engine::SegmentStore`]). Attaching a non-empty
    /// store puts the trace into deterministic catch-up mode — see
    /// [`gmdf_engine::ExecutionTrace`]'s type docs.
    pub fn set_trace_store(&mut self, store: Box<dyn gmdf_engine::TraceStore>) {
        self.engine.set_trace_store(store);
    }

    /// Replaces the trace's backend *without* catch-up: the store's
    /// current length becomes the next sequence number, and recording
    /// continues from there. This is how a time-travel replica resumes
    /// from a checkpoint — the entries before the checkpoint already
    /// live in the durable store and must not be regenerated.
    pub fn resume_trace_store(&mut self, store: Box<dyn gmdf_engine::TraceStore>) {
        self.engine.resume_trace_store(store);
    }

    /// Captures the session's complete dynamic state — target, channel
    /// decode state, engine presentation state, stimulus schedule and
    /// trace position — as one serializable [`SessionCheckpoint`].
    pub fn save_state(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            sim: self.sim.save_state(),
            engine: self.engine.save_state(),
            active: self
                .active
                .as_ref()
                .map(|chans| chans.iter().map(|(_, c)| c.decoder_state()).collect()),
            passive: self.passive.as_ref().map(|(m, _)| m.save_state()),
            stimuli: self.stimuli.clone(),
            trace_len: self.engine.trace().len() as u64,
        }
    }

    /// Restores a [`SessionCheckpoint`] into this session, which must
    /// have been built from the same [`SessionSpec`](crate::SessionSpec)
    /// (same system, GDM, channel mode and configuration). After restore
    /// the session behaves bit-identically to the one the snapshot was
    /// taken from — same future events, same trace entries.
    ///
    /// The execution trace is **not** touched: pair this with
    /// [`DebugSession::resume_trace_store`] (or a fresh store) so the
    /// trace position matches [`SessionCheckpoint::trace_len`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadState`] (wrapped) when the snapshot does
    /// not structurally match this session — different channel mode,
    /// node count, or watch list.
    pub fn restore_state(&mut self, state: &SessionCheckpoint) -> Result<(), SessionError> {
        match (&self.active, &state.active) {
            (Some(chans), Some(decs)) if chans.len() == decs.len() => {}
            (None, None) => {}
            _ => {
                return Err(SessionError::Sim(SimError::BadState(
                    "checkpoint channel mode does not match session".into(),
                )))
            }
        }
        if self.passive.is_some() != state.passive.is_some() {
            return Err(SessionError::Sim(SimError::BadState(
                "checkpoint channel mode does not match session".into(),
            )));
        }
        self.sim.restore_state(&state.sim)?;
        self.engine.restore_state(&state.engine);
        if let (Some(chans), Some(decs)) = (&mut self.active, &state.active) {
            for ((_, chan), dec) in chans.iter_mut().zip(decs) {
                chan.restore_decoder(dec.clone());
            }
        }
        if let (Some((monitor, _)), Some(jtag)) = (&mut self.passive, &state.passive) {
            monitor.restore_state(jtag)?;
        }
        self.stimuli = state.stimuli.clone();
        self.uart_buf.clear();
        Ok(())
    }

    /// Flushes the trace's backing store, surfacing any sticky
    /// storage failure.
    ///
    /// # Errors
    ///
    /// Propagates the store failure.
    pub fn sync_trace(&mut self) -> Result<(), gmdf_engine::StoreError> {
        self.engine.sync_trace()
    }

    /// Runs one bounded unit of trace-store maintenance (segment
    /// compression / retention eviction). A no-op on stores without a
    /// retention policy — the debug server's compactor thread calls
    /// this off the pump path.
    ///
    /// # Errors
    ///
    /// Propagates the store failure.
    pub fn maintain_trace(
        &mut self,
    ) -> Result<gmdf_engine::MaintenanceReport, gmdf_engine::StoreError> {
        self.engine.maintain_trace()
    }

    /// Pins the trace store's retention floor so eviction never drops
    /// an entry at or past the oldest retained checkpoint's trace
    /// position — see
    /// [`gmdf_engine::TraceStore::set_retain_floor`].
    pub fn set_trace_retain_floor(&mut self, floor: u64) {
        self.engine.set_trace_retain_floor(floor);
    }

    /// The target simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Runs the static analyzer (`gmdf-analyze`) over this session's
    /// system, compiled image and platform configuration — schedulability
    /// verdicts, route checks, and model lint in one
    /// [`AnalysisReport`](gmdf_analyze::AnalysisReport), without
    /// simulating anything.
    ///
    /// # Errors
    ///
    /// Returns [`gmdf_analyze::AnalysisError::Diverged`] when the
    /// response-time iteration cannot settle within its bounded budget.
    pub fn analyze(&self) -> Result<gmdf_analyze::AnalysisReport, gmdf_analyze::AnalysisError> {
        gmdf_analyze::analyze(&self.system, self.sim.image(), self.sim.config())
    }

    /// Mutable simulator access.
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Schedules an environment (sensor) stimulus.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::UnknownLabel`].
    pub fn schedule_signal(
        &mut self,
        time_ns: u64,
        label: &str,
        value: SignalValue,
    ) -> Result<(), SessionError> {
        self.sim.schedule_signal(time_ns, label, value)?;
        self.stimuli.push((time_ns, label.to_owned(), value));
        Ok(())
    }

    /// Current target simulation time.
    pub fn now_ns(&self) -> u64 {
        self.sim.now_ns()
    }

    /// Pumps the session for one bounded time slice: advances the target
    /// by `slice_ns`, then decodes the slice's UART bytes (or JTAG watch
    /// hits) **in one batch** and feeds the resulting commands to the
    /// engine in time order.
    ///
    /// Slicing is exact — any partition of a horizon into slices feeds
    /// the engine the identical command sequence (and therefore records a
    /// byte-identical trace) as a single [`DebugSession::run_for`] over
    /// the whole horizon. A frame whose bytes straddle a slice boundary
    /// is completed by the stateful decoder on the following slice, at
    /// the same timestamp it would have had in the one-shot run. This is
    /// the façade a multi-session scheduler pumps; `DebugSession` is
    /// `Send`, so sessions migrate freely onto worker threads.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_slice(&mut self, slice_ns: u64) -> Result<RunReport, SessionError> {
        self.run_for(slice_ns)
    }

    /// Runs the target for `duration_ns`, pumping commands into the
    /// engine as they arrive.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_for(&mut self, duration_ns: u64) -> Result<RunReport, SessionError> {
        let t_end = self.sim.now_ns().saturating_add(duration_ns);
        let mut events: Vec<ModelEvent> = Vec::new();
        if let Some((monitor, translator)) = &mut self.passive {
            let hits = monitor.run_until(&mut self.sim, t_end)?;
            events.extend(hits.iter().map(|w| translator.translate(w)));
        } else {
            self.sim.run_until(t_end)?;
        }
        if let Some(channels) = &mut self.active {
            let mut buf = std::mem::take(&mut self.uart_buf);
            for (node, channel) in channels.iter_mut() {
                buf.clear();
                self.sim.uart_take_into(node, &mut buf)?;
                events.extend(channel.feed(&buf));
            }
            self.uart_buf = buf;
        }
        events.sort_by_key(|e| e.time_ns);
        let mut report = RunReport {
            events_fed: events.len(),
            ..RunReport::default()
        };
        for e in events {
            let outcome = self.engine.feed(e);
            report.violations += outcome.violations;
            report.breakpoint_hit |= outcome.hit_breakpoint;
        }
        Ok(report)
    }

    /// Produces the *reference* behaviour stream by executing the input
    /// model itself (reference interpreter) over the same stimuli and
    /// horizon, then classifies the session against it: divergence ⇒
    /// implementation error, agreement ⇒ design error.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (never for validated systems) and
    /// trace-store read failures — a verdict over a silently truncated
    /// observed stream would be wrong, not conservative.
    pub fn classify_against_model(&self) -> Result<(BugClass, Option<Divergence>), SessionError> {
        let reference = self.reference_events()?;
        let observed: Vec<ModelEvent> = self
            .engine
            .trace()
            .try_entries()
            .map_err(SessionError::Trace)?
            .iter()
            .map(|e| e.event.clone())
            .collect();
        Ok(classify(&observed, &reference))
    }

    /// The reference interpreter's behaviour stream for this session's
    /// stimuli, up to the current simulation time.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn reference_events(&self) -> Result<Vec<ModelEvent>, SessionError> {
        let mut interp = Interpreter::new(&self.system)?;
        for (t, label, value) in &self.stimuli {
            interp.add_stimulus(*t, label, *value);
        }
        interp.run_until(self.sim.now_ns())?;
        let mut events = Vec::new();
        for rec in interp.records() {
            for be in &rec.events {
                events.push(crate::behavior_to_model_event(rec.release_ns, be));
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{comdes_allowed_transitions, comdes_gdm_default};
    use gmdf_codegen::InstrumentOptions;
    use gmdf_comdes::{ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, Timing};

    fn blinker_system() -> System {
        let fsm = FsmBuilder::new()
            .output(Port::boolean("lamp"))
            .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
            .state("On", |s| s.entry("lamp", Expr::Bool(true)))
            .transition(
                "Off",
                "On",
                Expr::var(gmdf_comdes::VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
            )
            .transition(
                "On",
                "Off",
                Expr::var(gmdf_comdes::VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
            )
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .output(Port::boolean("lamp"))
            .state_machine("ctl", fsm)
            .connect("ctl.lamp", "lamp")
            .unwrap()
            .build()
            .unwrap();
        let actor = ActorBuilder::new("Blinker", net)
            .output("lamp", "lamp")
            .timing(Timing::periodic(1_000_000, 0))
            .build()
            .unwrap();
        let mut node = NodeSpec::new("ecu", 50_000_000);
        node.actors.push(actor);
        System::new("blink").with_node(node)
    }

    fn build(channel: ChannelMode, faults: Vec<gmdf_codegen::Fault>) -> DebugSession {
        let system = blinker_system();
        let (_, model) = gmdf_comdes::export_system(&system).unwrap();
        let gdm = comdes_gdm_default(&model, "blinker");
        DebugSession::build(
            system,
            gdm,
            channel,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults,
            },
            SimConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn active_session_animates_states() {
        let mut s = build(ChannelMode::Active, vec![]);
        let report = s.run_for(20_000_000).unwrap();
        assert!(report.events_fed >= 4, "{report:?}");
        // Some state element is highlighted.
        let highlighted = s.engine().visual().iter().any(|(_, v)| v.highlighted);
        assert!(highlighted);
        assert!(!s.engine().trace().is_empty());
    }

    #[test]
    fn passive_session_sees_the_same_behavior() {
        let mut s = build(
            ChannelMode::Passive {
                poll_period_ns: 200_000,
                tck_hz: 10_000_000,
            },
            vec![],
        );
        let report = s.run_for(20_000_000).unwrap();
        assert!(report.events_fed >= 4, "{report:?}");
        let entries = s.engine().trace().entries();
        let states: Vec<&str> = entries
            .iter()
            .filter_map(|e| e.event.to.as_deref())
            .collect();
        assert!(states.contains(&"On"));
        assert!(states.contains(&"Off"));
    }

    #[test]
    fn clean_run_is_faithful_to_model() {
        let mut s = build(ChannelMode::Active, vec![]);
        for e in comdes_allowed_transitions(s.system()).unwrap() {
            s.engine_mut().add_expectation(e);
        }
        let report = s.run_for(20_000_000).unwrap();
        assert_eq!(report.violations, 0);
        let (class, divergence) = s.classify_against_model().unwrap();
        assert_eq!(class, BugClass::DesignError); // faithful ⇒ any bug would be design
        assert!(divergence.is_none());
    }

    #[test]
    fn injected_fault_is_classified_as_implementation_error() {
        let mut s = build(
            ChannelMode::Active,
            vec![gmdf_codegen::Fault::SwapTransitionTargets {
                block_path: "Blinker/ctl".into(),
            }],
        );
        for e in comdes_allowed_transitions(s.system()).unwrap() {
            s.engine_mut().add_expectation(e);
        }
        s.run_for(20_000_000).unwrap();
        let (class, divergence) = s.classify_against_model().unwrap();
        assert_eq!(class, BugClass::ImplementationError);
        assert!(divergence.is_some());
    }

    #[test]
    fn breakpoints_pause_the_view() {
        let mut s = build(ChannelMode::Active, vec![]);
        s.engine_mut().add_breakpoint(
            gmdf_gdm::CommandMatcher::kind(gmdf_gdm::EventKind::StateEnter),
            false,
        );
        let report = s.run_for(20_000_000).unwrap();
        assert!(report.breakpoint_hit);
        assert!(s.engine().pending() > 0);
        // Step through one queued command.
        let before = s.engine().pending();
        s.engine_mut().step().unwrap();
        assert_eq!(s.engine().pending(), before - 1);
    }

    #[test]
    fn slice_pumping_records_an_identical_trace() {
        let mut one_shot = build(ChannelMode::Active, vec![]);
        one_shot.run_for(20_000_000).unwrap();
        let mut sliced = build(ChannelMode::Active, vec![]);
        // Ragged slice sizes, including ones far below the UART frame
        // transmission time, so frames straddle slice boundaries.
        let mut k = 0usize;
        while sliced.now_ns() < 20_000_000 {
            let dt = [70_001, 333, 1_250_000, 13][k % 4].min(20_000_000 - sliced.now_ns());
            sliced.run_slice(dt).unwrap();
            k += 1;
        }
        assert_eq!(
            one_shot.engine().trace().to_json(),
            sliced.engine().trace().to_json()
        );
    }

    #[test]
    fn unknown_stimulus_label_rejected() {
        let mut s = build(ChannelMode::Active, vec![]);
        assert!(s
            .schedule_signal(0, "ghost", SignalValue::Real(0.0))
            .is_err());
    }
}
