//! Command-interface channels: turning raw transport data into
//! [`ModelEvent`]s.
//!
//! The **active** channel decodes RS-232 frames emitted by instrumented
//! code; the **passive** channel translates JTAG watch hits on monitored
//! variables into model events "without any code modifications" (paper
//! §II). Both produce the same event vocabulary, so the engine and all
//! downstream tooling are transport-agnostic.

use gmdf_codegen::{CommandKind, DebugInfo, FrameDecoder};
use gmdf_comdes::{Block, Network, SignalValue, System};
use gmdf_gdm::{EventKind, EventValue, ModelEvent};
use gmdf_target::WatchEvent;
use std::collections::BTreeMap;

/// Converts a COMDES signal value into the debugger's value domain.
pub fn to_event_value(v: SignalValue) -> EventValue {
    match v {
        SignalValue::Bool(b) => EventValue::Bool(b),
        SignalValue::Int(i) => EventValue::Int(i),
        SignalValue::Real(r) => EventValue::Real(r),
    }
}

fn kind_of(k: CommandKind) -> EventKind {
    match k {
        CommandKind::TaskStart => EventKind::TaskStart,
        CommandKind::TaskEnd => EventKind::TaskEnd,
        CommandKind::StateEnter => EventKind::StateEnter,
        CommandKind::ModeSwitch => EventKind::ModeSwitch,
        CommandKind::SignalWrite => EventKind::SignalWrite,
        CommandKind::WatchHit => EventKind::WatchChange,
    }
}

/// Decodes the active (RS-232) command stream of one node.
#[derive(Debug)]
pub struct ActiveChannel {
    decoder: FrameDecoder,
    debug: DebugInfo,
}

impl ActiveChannel {
    /// Creates a channel resolving events against `debug`.
    pub fn new(debug: DebugInfo) -> Self {
        ActiveChannel {
            decoder: FrameDecoder::new(),
            debug,
        }
    }

    /// Feeds timestamped UART bytes; returns decoded model events, each
    /// stamped with its frame's completion time.
    pub fn feed(&mut self, bytes: &[(u64, u8)]) -> Vec<ModelEvent> {
        let mut events = Vec::new();
        for &(t, b) in bytes {
            for frame in self.decoder.feed(&[b]) {
                let Some(spec) = self.debug.event(frame.event) else {
                    continue;
                };
                let mut ev = ModelEvent::new(t, kind_of(spec.kind), &spec.path);
                ev.from = spec.from.clone();
                ev.to = spec.to.clone();
                if let (Some(ty), Some(&raw)) = (spec.value_type, frame.args.first()) {
                    ev.value = Some(to_event_value(SignalValue::from_raw(ty, raw)));
                }
                events.push(ev);
            }
        }
        events
    }

    /// CRC errors seen so far (line-quality diagnostics).
    pub fn crc_errors(&self) -> u64 {
        self.decoder.crc_errors
    }

    /// Snapshot of the stateful frame decoder (partial frame bytes plus
    /// error counters) — what a session checkpoint captures so a frame
    /// straddling the checkpoint instant still completes after restore.
    pub fn decoder_state(&self) -> FrameDecoder {
        self.decoder.clone()
    }

    /// Restores a decoder snapshot taken by
    /// [`ActiveChannel::decoder_state`].
    pub fn restore_decoder(&mut self, state: FrameDecoder) {
        self.decoder = state;
    }
}

/// Translates passive JTAG watch hits into model events using the
/// structure of the input system (state and mode cell name resolution).
#[derive(Debug, Clone)]
pub struct PassiveChannel {
    /// FSM block path → state names (by index).
    states: BTreeMap<String, Vec<String>>,
    /// Modal block path → mode names (by index).
    modes: BTreeMap<String, Vec<String>>,
}

impl PassiveChannel {
    /// Builds the translator from the input system's structure.
    pub fn new(system: &System) -> Self {
        let mut states = BTreeMap::new();
        let mut modes = BTreeMap::new();
        for (_, actor) in system.actors() {
            collect_names(&actor.name, &actor.network, &mut states, &mut modes);
        }
        PassiveChannel { states, modes }
    }

    /// Known state-machine block paths.
    pub fn fsm_paths(&self) -> impl Iterator<Item = &str> {
        self.states.keys().map(String::as_str)
    }

    /// Translates one watch event. State cells become `StateEnter`
    /// (with the state *name* resolved from the index), mode cells become
    /// `ModeSwitch`, everything else a generic `WatchChange`.
    pub fn translate(&self, w: &WatchEvent) -> ModelEvent {
        if let Some(base) = w.symbol.strip_suffix("#state") {
            if let Some(names) = self.states.get(base) {
                let idx = w
                    .value
                    .as_int()
                    .unwrap_or(0)
                    .clamp(0, names.len() as i64 - 1);
                return ModelEvent::new(w.time_ns, EventKind::StateEnter, base)
                    .with_to(&names[idx as usize]);
            }
        }
        if let Some(base) = w.symbol.strip_suffix("#last") {
            if let Some(names) = self.modes.get(base) {
                let idx = w
                    .value
                    .as_int()
                    .unwrap_or(0)
                    .clamp(0, names.len() as i64 - 1);
                return ModelEvent::new(w.time_ns, EventKind::ModeSwitch, base)
                    .with_to(&names[idx as usize]);
            }
        }
        ModelEvent::new(w.time_ns, EventKind::WatchChange, &w.symbol)
            .with_value(to_event_value(w.value))
    }
}

fn collect_names(
    prefix: &str,
    net: &Network,
    states: &mut BTreeMap<String, Vec<String>>,
    modes: &mut BTreeMap<String, Vec<String>>,
) {
    for inst in &net.blocks {
        let path = format!("{prefix}/{}", inst.name);
        match &inst.block {
            Block::StateMachine(fsm) => {
                states.insert(path, fsm.states.iter().map(|s| s.name.clone()).collect());
            }
            Block::Modal(m) => {
                modes.insert(
                    path.clone(),
                    m.modes.iter().map(|mo| mo.name.clone()).collect(),
                );
                for mode in &m.modes {
                    collect_names(
                        &format!("{path}/{}", mode.name),
                        &mode.network,
                        states,
                        modes,
                    );
                }
            }
            Block::Composite(c) => collect_names(&path, &c.network, states, modes),
            Block::Basic(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdf_codegen::{EventSpec, Frame};
    use gmdf_comdes::{
        ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, Timing,
    };

    fn debug_info() -> DebugInfo {
        let mut d = DebugInfo::default();
        d.register(EventSpec {
            kind: CommandKind::StateEnter,
            path: "A/fsm".into(),
            from: Some("Idle".into()),
            to: Some("Run".into()),
            label: None,
            value_type: None,
        });
        d.register(EventSpec {
            kind: CommandKind::SignalWrite,
            path: "A/out/u".into(),
            from: None,
            to: None,
            label: Some("u".into()),
            value_type: Some(gmdf_comdes::SignalType::Real),
        });
        d
    }

    #[test]
    fn active_channel_decodes_frames_with_timestamps() {
        let mut ch = ActiveChannel::new(debug_info());
        let mut wire: Vec<(u64, u8)> = Vec::new();
        for (i, b) in Frame::new(0, vec![]).encode().into_iter().enumerate() {
            wire.push((100 + i as u64, b));
        }
        let value_frame = Frame::new(1, vec![SignalValue::Real(2.5).to_raw()]);
        for (i, b) in value_frame.encode().into_iter().enumerate() {
            wire.push((500 + i as u64, b));
        }
        let events = ch.feed(&wire);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::StateEnter);
        assert_eq!(events[0].to.as_deref(), Some("Run"));
        // Timestamp = last byte of the frame.
        assert_eq!(events[0].time_ns, 100 + 6);
        assert_eq!(events[1].kind, EventKind::SignalWrite);
        assert_eq!(events[1].value, Some(EventValue::Real(2.5)));
        assert_eq!(ch.crc_errors(), 0);
    }

    #[test]
    fn active_channel_skips_unknown_event_ids() {
        let mut ch = ActiveChannel::new(debug_info());
        let wire: Vec<(u64, u8)> = Frame::new(99, vec![])
            .encode()
            .into_iter()
            .map(|b| (0, b))
            .collect();
        assert!(ch.feed(&wire).is_empty());
    }

    fn sample_system() -> System {
        let fsm = FsmBuilder::new()
            .output(Port::int("s"))
            .state("Off", |s| s.during("s", Expr::Int(0)))
            .state("On", |s| s.during("s", Expr::Int(1)))
            .transition("Off", "On", Expr::Bool(true))
            .build()
            .unwrap();
        let net = NetworkBuilder::new()
            .output(Port::int("s"))
            .state_machine("ctl", fsm)
            .connect("ctl.s", "s")
            .unwrap()
            .build()
            .unwrap();
        let actor = ActorBuilder::new("Pump", net)
            .output("s", "pump_state")
            .timing(Timing::periodic(1_000_000, 0))
            .build()
            .unwrap();
        let mut node = NodeSpec::new("ecu", 50_000_000);
        node.actors.push(actor);
        // A second actor with a plain gain (no fsm).
        let gnet = NetworkBuilder::new()
            .input(Port::real("x"))
            .output(Port::real("y"))
            .block("g", BasicOp::Gain { k: 1.0 })
            .connect("x", "g.x")
            .unwrap()
            .connect("g.y", "y")
            .unwrap()
            .build()
            .unwrap();
        let g = ActorBuilder::new("Amp", gnet)
            .input("x", "in")
            .output("y", "out")
            .timing(Timing::periodic(1_000_000, 1))
            .build()
            .unwrap();
        node.actors.push(g);
        System::new("s").with_node(node)
    }

    #[test]
    fn passive_channel_resolves_state_names() {
        let ch = PassiveChannel::new(&sample_system());
        assert_eq!(ch.fsm_paths().collect::<Vec<_>>(), vec!["Pump/ctl"]);
        let ev = ch.translate(&WatchEvent {
            time_ns: 42,
            node: "ecu".into(),
            symbol: "Pump/ctl#state".into(),
            value: SignalValue::Int(1),
        });
        assert_eq!(ev.kind, EventKind::StateEnter);
        assert_eq!(ev.path, "Pump/ctl");
        assert_eq!(ev.to.as_deref(), Some("On"));
        assert_eq!(ev.time_ns, 42);
    }

    #[test]
    fn passive_channel_clamps_bad_indices() {
        let ch = PassiveChannel::new(&sample_system());
        let ev = ch.translate(&WatchEvent {
            time_ns: 1,
            node: "ecu".into(),
            symbol: "Pump/ctl#state".into(),
            value: SignalValue::Int(99),
        });
        assert_eq!(ev.to.as_deref(), Some("On")); // clamped to last
    }

    #[test]
    fn passive_channel_generic_watch() {
        let ch = PassiveChannel::new(&sample_system());
        let ev = ch.translate(&WatchEvent {
            time_ns: 7,
            node: "ecu".into(),
            symbol: "Amp/out/y".into(),
            value: SignalValue::Real(1.5),
        });
        assert_eq!(ev.kind, EventKind::WatchChange);
        assert_eq!(ev.value, Some(EventValue::Real(1.5)));
    }
}
