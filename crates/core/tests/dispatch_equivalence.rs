//! Session-level determinism across the simulator's perf knobs.
//!
//! The acceptance bar for the event calendar and the step memo is not
//! "events look similar" — it is a byte-identical
//! `ExecutionTrace::to_json` for every combination of dispatch mode,
//! memoization, and slice partition. This suite checks that at the
//! `DebugSession` level, where UART decode, engine dispatch and trace
//! recording all sit downstream of the simulator and would amplify any
//! divergence.

use gmdf::{comdes_gdm_default, ChannelMode, DebugSession};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    export_system, ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port,
    SignalValue, System, Timing, VAR_TIME_IN_STATE,
};
use gmdf_target::{DispatchMode, SimConfig};

const HORIZON_NS: u64 = 24_000_000;

/// Two nodes: a dwelling FSM on one, a filter consuming a stimulus on
/// the other — crossing signals so the session exercises broadcast
/// deliveries alongside the UART path.
fn two_node_system() -> System {
    let mut fb = FsmBuilder::new().output(Port::int("s"));
    for i in 0..4 {
        fb = fb.state(&format!("S{i}"), |st| st.entry("s", Expr::Int(i)));
    }
    for i in 0..4 {
        fb = fb.transition(
            &format!("S{i}"),
            &format!("S{}", (i + 1) % 4),
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        );
    }
    let fsm = fb.initial("S0").build().unwrap();
    let ring_net = NetworkBuilder::new()
        .output(Port::int("s"))
        .state_machine("ring", fsm)
        .connect("ring.s", "s")
        .unwrap()
        .build()
        .unwrap();
    let ring = ActorBuilder::new("Ring", ring_net)
        .output("s", "state_sig")
        .timing(Timing::periodic(1_000_000, 0))
        .build()
        .unwrap();

    let filt_net = NetworkBuilder::new()
        .input(Port::real("x"))
        .output(Port::real("y"))
        .block("lp", BasicOp::LowPass { alpha: 0.5 })
        .connect("x", "lp.x")
        .unwrap()
        .connect("lp.y", "y")
        .unwrap()
        .build()
        .unwrap();
    let filt = ActorBuilder::new("Filter", filt_net)
        .input("x", "u")
        .output("y", "flt")
        .timing(Timing::periodic(1_500_000, 1))
        .build()
        .unwrap();

    let mut n0 = NodeSpec::new("fsm_node", 50_000_000);
    n0.actors.push(ring);
    let mut n1 = NodeSpec::new("dsp_node", 50_000_000);
    n1.actors.push(filt);
    System::new("two_node").with_node(n0).with_node(n1)
}

fn session_with(config: SimConfig) -> DebugSession {
    let system = two_node_system();
    let (_, model) = export_system(&system).unwrap();
    let gdm = comdes_gdm_default(&model, "two_node");
    let mut session = DebugSession::build(
        system,
        gdm,
        ChannelMode::Active,
        CompileOptions {
            instrument: InstrumentOptions::behavior(),
            faults: vec![],
        },
        config,
    )
    .unwrap();
    for k in 0..5u64 {
        session
            .schedule_signal(k * 4_000_000, "u", SignalValue::Real((k % 2) as f64 + 0.5))
            .unwrap();
    }
    session
}

/// Trace JSON after running the whole horizon under `config`, either in
/// one shot or chopped into the given slice sizes (cycled).
fn trace_json(config: SimConfig, slices: Option<&[u64]>) -> String {
    let mut session = session_with(config);
    match slices {
        None => {
            session.run_for(HORIZON_NS).unwrap();
        }
        Some(slices) => {
            let mut k = 0usize;
            while session.now_ns() < HORIZON_NS {
                let dt = slices[k % slices.len()].min(HORIZON_NS - session.now_ns());
                session.run_slice(dt).unwrap();
                k += 1;
            }
        }
    }
    session.engine().trace().to_json()
}

fn config(dispatch: DispatchMode, memo_steps: bool) -> SimConfig {
    SimConfig {
        bus_latency_ns: 200_000,
        clock_jitter_ns: 30_000,
        dispatch,
        memo_steps,
        ..SimConfig::default()
    }
}

#[test]
fn trace_json_is_identical_across_dispatch_and_memo_matrix() {
    let reference = trace_json(config(DispatchMode::LegacyScan, false), None);
    assert!(
        reference.contains("StateEnter"),
        "the workload must actually produce trace entries"
    );
    for dispatch in [DispatchMode::Calendar, DispatchMode::LegacyScan] {
        for memo in [false, true] {
            let json = trace_json(config(dispatch, memo), None);
            assert_eq!(
                json, reference,
                "one-shot run diverged for {dispatch:?}, memo={memo}"
            );
        }
    }
}

#[test]
fn trace_json_is_identical_across_random_slice_partitions() {
    let reference = trace_json(config(DispatchMode::LegacyScan, false), None);
    // A seeded LCG stands in for a proptest dependency: 12 random ragged
    // partitions, each including slices far below a UART frame time.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    const MENU: [u64; 6] = [17, 333, 4_099, 70_001, 1_250_000, 6_000_000];
    for round in 0..12 {
        let len = (next() % 5 + 1) as usize;
        let slices: Vec<u64> = (0..len).map(|_| MENU[(next() % 6) as usize]).collect();
        let json = trace_json(config(DispatchMode::Calendar, true), Some(&slices));
        assert_eq!(
            json, reference,
            "sliced calendar+memo run diverged (round {round}, slices {slices:?})"
        );
    }
}
