//! # gmdf-suite — integration suite for the GMDF reproduction
//!
//! This crate hosts the repository-level examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). Its library part is a thin
//! [`prelude`] so examples and downstream experiments can import the whole
//! framework with one line:
//!
//! ```
//! use gmdf_suite::prelude::*;
//!
//! let fsm = FsmBuilder::new()
//!     .output(Port::boolean("q"))
//!     .state("A", |s| s.during("q", Expr::Bool(true)))
//!     .build()
//!     .expect("valid machine");
//! assert_eq!(fsm.states.len(), 1);
//! ```

#![warn(missing_docs)]

/// One-line import for the whole framework: sessions and workflow from
/// [`gmdf`], the COMDES modeling language, codegen options, the target
/// simulator, and the engine's debugging types.
pub mod prelude {
    pub use gmdf::{
        comdes_abstraction, comdes_allowed_transitions, comdes_gdm, comdes_gdm_default,
        ChannelMode, DebugSession, RunReport, SessionError, Workflow,
    };
    pub use gmdf_codegen::{compile_system, CompileOptions, Fault, InstrumentOptions};
    pub use gmdf_comdes::{
        export_system, ActorBuilder, BasicOp, Expr, FsmBuilder, Interpreter, ModalBlock, Mode,
        Network, NetworkBuilder, NodeSpec, Port, SignalType, SignalValue, System, Timing, VAR_DT,
        VAR_TIME_IN_STATE,
    };
    pub use gmdf_engine::{
        timing_diagram, BugClass, DebuggerEngine, ExecutionTrace, Expectation, Replayer,
    };
    pub use gmdf_gdm::{
        default_bindings, AbstractionGuide, CommandMatcher, DebuggerModel, EventKind, GdmPattern,
        ModelEvent,
    };
    pub use gmdf_target::{JtagMonitor, SimConfig, SimEvent, Simulator};
}
