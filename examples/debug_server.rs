//! Debug server: hosting a fleet of live sessions behind a scheduler.
//!
//! Run with `cargo run --example debug_server`.
//!
//! Boots a 4-worker `DebugServer`, adds eight blinker sessions with
//! different dwell times, sets a breakpoint on one of them, pumps the
//! whole fleet concurrently, and prints what each session's broadcast
//! stream and final snapshot report — the resident-service shape of the
//! paper's tool plug-in (one engine per client, all animated at once).

use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_server::{DebugServer, EngineEvent, ServerConfig};
use gmdf_target::SimConfig;
use std::time::Duration;

fn blinker(name: &str, dwell_s: f64) -> Result<System, gmdf_comdes::ComdesError> {
    let fsm = FsmBuilder::new()
        .output(Port::boolean("lamp"))
        .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
        .state("On", |s| s.entry("lamp", Expr::Bool(true)))
        .transition(
            "Off",
            "On",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        )
        .transition(
            "On",
            "Off",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        )
        .build()?;
    let net = NetworkBuilder::new()
        .output(Port::boolean("lamp"))
        .state_machine("ctl", fsm)
        .connect("ctl.lamp", "lamp")?
        .build()?;
    let actor = ActorBuilder::new("Blinker", net)
        .output("lamp", "lamp")
        .timing(Timing::periodic(1_000_000, 0))
        .build()?;
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new(name).with_node(node))
}

fn session(system: System) -> Result<DebugSession, Box<dyn std::error::Error>> {
    Ok(Workflow::from_system(system)?
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wait = Duration::from_secs(30);
    let server = DebugServer::start(ServerConfig {
        workers: 4,
        slice_ns: 1_000_000, // 1 ms scheduling slices
        ..ServerConfig::default()
    });
    println!(
        "debug server up: {} workers, {} ns slices",
        server.worker_count(),
        1_000_000
    );

    // Eight clients with different blink rates share the pool.
    let mut handles = Vec::new();
    let mut streams = Vec::new();
    for i in 0..8u32 {
        let dwell = 0.002 + 0.001 * f64::from(i % 4);
        let handle = server.add_session(session(blinker(&format!("blink{i}"), dwell)?)?);
        streams.push(handle.subscribe());
        handles.push(handle);
    }

    // Session 0 additionally pauses at its first state entry.
    handles[0].add_breakpoint(CommandMatcher::kind(EventKind::StateEnter), true)?;

    // Pump the whole fleet for 30 ms of target time, concurrently.
    for handle in &handles {
        handle.run_for(30_000_000)?;
    }
    for handle in &handles {
        handle.wait_idle(wait)?;
    }

    println!("\n  id  now_ms  trace  events  breaks  stream(slices/deltas)");
    for (handle, stream) in handles.iter().zip(&streams) {
        let snap = handle.stats(wait)?;
        let (mut slices, mut deltas) = (0usize, 0usize);
        for event in stream.try_iter() {
            match event {
                EngineEvent::SliceCompleted { .. } => slices += 1,
                EngineEvent::TraceDelta { .. } => deltas += 1,
                _ => {}
            }
        }
        println!(
            "  {:>2} {:>7.1} {:>6} {:>7} {:>7}  {:>6}/{}",
            snap.session,
            snap.now_ns as f64 / 1e6,
            snap.trace_len,
            snap.events_fed,
            snap.breakpoint_hits,
            slices,
            deltas,
        );
    }

    // The paused session steps once, then resumes to drain its queue.
    let paused = handles[0].stats(wait)?;
    println!(
        "\nsession 0 paused with {} queued commands; stepping one and resuming",
        paused.pending
    );
    handles[0].step()?;
    handles[0].resume()?;
    handles[0].wait_idle(wait)?;
    let drained = handles[0].stats(wait)?;
    println!(
        "session 0 drained: {} trace entries, engine {:?}",
        drained.trace_len, drained.engine_state
    );
    Ok(())
}
