//! Fleet dashboard: live server telemetry scraped over the wire.
//!
//! Run with `cargo run --example fleet_dashboard`.
//!
//! Boots a `DebugServer` hosting a small fleet of blinker sessions,
//! fronts it with a `WireServer`, then plays a monitoring frontend: a
//! `WireClient` that never attaches to any session — it polls the
//! server-scope `ListMetrics` frame while the fleet runs and renders
//! the [`MetricsSnapshot`]s as an ASCII dashboard (fleet aggregates,
//! pump latency percentiles, one health row per session). The final
//! poll is printed alongside the server's own Prometheus-style text
//! exposition, so the two read-outs can be eyeballed against each
//! other.
//!
//! [`MetricsSnapshot`]: gmdf_server::MetricsSnapshot

use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_server::{
    DebugServer, HealthState, MetricsSnapshot, ServerConfig, WireClient, WireServer,
};
use gmdf_target::SimConfig;
use std::sync::Arc;
use std::time::Duration;

fn blinker(name: &str, dwell_s: f64) -> Result<System, gmdf_comdes::ComdesError> {
    let fsm = FsmBuilder::new()
        .output(Port::boolean("lamp"))
        .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
        .state("On", |s| s.entry("lamp", Expr::Bool(true)))
        .transition(
            "Off",
            "On",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        )
        .transition(
            "On",
            "Off",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(dwell_s)),
        )
        .build()?;
    let net = NetworkBuilder::new()
        .output(Port::boolean("lamp"))
        .state_machine("ctl", fsm)
        .connect("ctl.lamp", "lamp")?
        .build()?;
    let actor = ActorBuilder::new("Blinker", net)
        .output("lamp", "lamp")
        .timing(Timing::periodic(1_000_000, 0))
        .build()?;
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new(name).with_node(node))
}

fn session(system: System) -> Result<DebugSession, Box<dyn std::error::Error>> {
    Ok(Workflow::from_system(system)?
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )?)
}

fn state_label(state: HealthState) -> &'static str {
    match state {
        HealthState::Running => "running",
        HealthState::Parked => "parked",
        HealthState::Quarantined => "quarantined",
        HealthState::Failed => "failed",
    }
}

fn render(poll: usize, snapshot: &MetricsSnapshot) {
    let f = &snapshot.fleet;
    println!("== fleet dashboard (poll {poll}) ==");
    println!(
        "  sessions {:>3}   workers {:>2}   uptime {:>6} ms   conns {:>2}",
        f.sessions, f.workers, f.uptime_ms, f.wire_connections
    );
    println!(
        "  slices {:>6}   events fed {:>8}   recent {:>10.1} ev/s",
        f.slices, f.events_fed, f.recent_events_per_sec
    );
    println!(
        "  slice wall ns   p50 {:>9}  p90 {:>9}  p99 {:>9}  max {:>9}",
        f.slice_wall_ns.p50, f.slice_wall_ns.p90, f.slice_wall_ns.p99, f.slice_wall_ns.max
    );
    println!(
        "  store appends {:>8} (p99 {} ns)   reads {:>6}   segments {:>4}   disk {:>8} B",
        f.store_appends, f.store_append_ns.p99, f.store_reads, f.trace_segments, f.trace_disk_bytes
    );
    println!(
        "  wire tx {:>6} frames / {:>9} B   rx {:>6} frames / {:>9} B",
        f.wire_frames_tx, f.wire_bytes_tx, f.wire_frames_rx, f.wire_bytes_rx
    );
    println!(
        "  queues: mailbox {:>4}  subscriber {:>4}  lagged drops {:>6}",
        f.mailbox_depth, f.subscriber_depth, f.lagged_drops
    );
    println!(
        "  {:>4}  {:<11} {:>12} {:>10} {:>10}",
        "id", "state", "sim time ms", "events", "trace"
    );
    for s in &snapshot.sessions {
        println!(
            "  {:>4}  {:<11} {:>12.2} {:>10} {:>10}",
            s.session,
            state_label(s.state),
            s.now_ns as f64 / 1e6,
            s.events_fed,
            s.trace_len
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wait = Duration::from_secs(30);

    // Server side: a small fleet behind a TCP front.
    let server = Arc::new(DebugServer::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    }));
    let mut handles = Vec::new();
    for i in 0..4 {
        let dwell = 0.001 + 0.001 * i as f64;
        handles.push(server.add_session(session(blinker(&format!("fleet-{i}"), dwell)?)?));
    }
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0")?;
    println!("wire server listening on {}", wire.local_addr());

    // Monitoring side: a client that never attaches — ListMetrics is
    // server-scope, so the dashboard works straight off the handshake.
    let mut dashboard = WireClient::connect(wire.local_addr())?;

    // Put the fleet to work and poll while it runs.
    for handle in &handles {
        handle.run_for(40_000_000)?; // 40 ms of target time each
    }
    for poll in 1..=3 {
        let snapshot = dashboard.metrics(wait)?;
        render(poll, &snapshot);
        std::thread::sleep(Duration::from_millis(50));
    }
    for handle in &handles {
        handle.wait_idle(wait)?;
    }

    // Final poll: the fleet is idle, every counter has settled.
    let snapshot = dashboard.metrics(wait)?;
    render(4, &snapshot);
    assert_eq!(snapshot.fleet.sessions, handles.len() as u64);
    assert!(snapshot.fleet.slices > 0, "fleet pumped no slices");
    assert!(snapshot.fleet.events_fed > 0, "fleet fed no events");
    assert!(
        snapshot
            .sessions
            .iter()
            .all(|s| s.state == HealthState::Parked),
        "idle fleet should be parked"
    );

    // The same telemetry, as the Prometheus-style text exposition.
    println!("\n== metrics_text() (first lines) ==");
    for line in server.metrics_text().lines().take(12) {
        println!("  {line}");
    }
    Ok(())
}
