//! Remote attach: driving a hosted session over the wire protocol.
//!
//! Run with `cargo run --example remote_attach`.
//!
//! Boots a `DebugServer` hosting one blinker session, fronts it with a
//! `WireServer` on an ephemeral loopback port, then plays the remote
//! frontend: a `WireClient` performs the hello/version handshake,
//! attaches to the session, schedules a stimulus, sets a one-shot
//! breakpoint, pumps 20 ms of target time, and tails the event stream —
//! the paper's Debugger Communication Framework, over real TCP.

use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, SignalValue, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_server::{DebugServer, EngineEvent, ServerConfig, WireClient, WireServer};
use gmdf_target::SimConfig;
use std::sync::Arc;
use std::time::Duration;

fn blinker(name: &str) -> Result<System, gmdf_comdes::ComdesError> {
    let fsm = FsmBuilder::new()
        .output(Port::boolean("lamp"))
        .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
        .state("On", |s| s.entry("lamp", Expr::Bool(true)))
        .transition(
            "Off",
            "On",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        )
        .transition(
            "On",
            "Off",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        )
        .build()?;
    let net = NetworkBuilder::new()
        .output(Port::boolean("lamp"))
        .state_machine("ctl", fsm)
        .connect("ctl.lamp", "lamp")?
        .build()?;
    let actor = ActorBuilder::new("Blinker", net)
        .output("lamp", "lamp")
        .timing(Timing::periodic(1_000_000, 0))
        .build()?;
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new(name).with_node(node))
}

fn session(system: System) -> Result<DebugSession, Box<dyn std::error::Error>> {
    Ok(Workflow::from_system(system)?
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wait = Duration::from_secs(30);

    // Server side: one hosted session behind a TCP front.
    let server = Arc::new(DebugServer::start(ServerConfig::default()));
    let handle = server.add_session(session(blinker("remote")?)?);
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0")?;
    println!("wire server listening on {}", wire.local_addr());

    // Client side: handshake, attach, drive.
    let mut client = WireClient::connect(wire.local_addr())?;
    println!("handshake ok; attachable sessions: {:?}", client.sessions());
    client.attach(handle.id())?;
    client.schedule_signal(500_000, "lamp", SignalValue::Bool(true))?;
    client.add_breakpoint(CommandMatcher::kind(EventKind::StateEnter), true)?;
    client.run_for(20_000_000)?; // 20 ms of target time
    client.wait_idle(wait)?;
    client.resume()?;
    client.wait_idle(wait)?;

    // Tail the stream: slice reports, trace deltas, the breakpoint hit.
    let (mut slices, mut delta_entries, mut hits) = (0usize, 0usize, 0usize);
    while let Ok(event) = client.next_event(Duration::from_millis(300)) {
        match event {
            EngineEvent::SliceCompleted { .. } => slices += 1,
            EngineEvent::TraceDelta { entries, .. } => delta_entries += entries.len(),
            EngineEvent::BreakpointHit { seq, time_ns, .. } => {
                hits += 1;
                println!(
                    "breakpoint hit at seq {seq}, t = {:.3} ms",
                    time_ns as f64 / 1e6
                );
            }
            EngineEvent::Lagged { dropped, .. } => println!("lagged: {dropped} events dropped"),
            _ => {}
        }
    }
    println!("stream: {slices} slices, {delta_entries} trace entries, {hits} breakpoint hit(s)");

    let snap = client.snapshot(true, wait)?;
    println!(
        "remote snapshot: t = {:.1} ms, {} trace entries, engine {:?}",
        snap.now_ns as f64 / 1e6,
        snap.trace_len,
        snap.engine_state
    );
    assert!(snap.trace_len > 0 && hits >= 1);
    Ok(())
}
