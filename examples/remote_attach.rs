//! Remote attach: driving hosted sessions over the multiplexed wire
//! protocol (v4).
//!
//! Run with `cargo run --example remote_attach`.
//!
//! Boots a `DebugServer` hosting two blinker sessions, fronts it with a
//! `WireServer` on an ephemeral loopback port, then plays the remote
//! frontend: a `WireClient` performs the hello/version handshake, polls
//! the session directory, attaches to **both** sessions on the one
//! socket (`attach_many`), schedules a stimulus, sets a one-shot
//! breakpoint, pumps 20 ms of target time, and demultiplexes the merged
//! event stream per session — the paper's Debugger Communication
//! Framework, over real TCP, one connection for the whole fleet.

use gmdf::{ChannelMode, DebugSession, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, SignalValue, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_server::{DebugServer, EngineEvent, ServerConfig, WireClient, WireServer};
use gmdf_target::SimConfig;
use std::sync::Arc;
use std::time::Duration;

fn blinker(name: &str) -> Result<System, gmdf_comdes::ComdesError> {
    let fsm = FsmBuilder::new()
        .output(Port::boolean("lamp"))
        .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
        .state("On", |s| s.entry("lamp", Expr::Bool(true)))
        .transition(
            "Off",
            "On",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        )
        .transition(
            "On",
            "Off",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        )
        .build()?;
    let net = NetworkBuilder::new()
        .output(Port::boolean("lamp"))
        .state_machine("ctl", fsm)
        .connect("ctl.lamp", "lamp")?
        .build()?;
    let actor = ActorBuilder::new("Blinker", net)
        .output("lamp", "lamp")
        .timing(Timing::periodic(1_000_000, 0))
        .build()?;
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new(name).with_node(node))
}

fn session(system: System) -> Result<DebugSession, Box<dyn std::error::Error>> {
    Ok(Workflow::from_system(system)?
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wait = Duration::from_secs(30);

    // Server side: two hosted sessions behind one TCP front.
    let server = Arc::new(DebugServer::start(ServerConfig::default()));
    let alpha = server.add_session(session(blinker("alpha")?)?);
    let beta = server.add_session(session(blinker("beta")?)?);
    let wire = WireServer::start(Arc::clone(&server), "127.0.0.1:0")?;
    println!("wire server listening on {}", wire.local_addr());

    // Client side: handshake, discover, attach to the whole fleet.
    let mut client = WireClient::connect(wire.local_addr())?;
    let directory = client.list_sessions(wait)?;
    println!("session directory:");
    for row in &directory {
        println!(
            "  session {} — {:?}, t = {:.3} ms, {} trace entries",
            row.session,
            row.state,
            row.now_ns as f64 / 1e6,
            row.trace_len
        );
    }
    client.attach_many(&[alpha.id(), beta.id()])?;

    // Drive both sessions over the same socket: a stimulus and a
    // one-shot breakpoint on alpha, plain running time on beta.
    client.schedule_signal(alpha.id(), 500_000, "lamp", SignalValue::Bool(true))?;
    client.add_breakpoint(
        alpha.id(),
        CommandMatcher::kind(EventKind::StateEnter),
        true,
    )?;
    client.run_for(alpha.id(), 20_000_000)?; // 20 ms of target time
    client.run_for(beta.id(), 20_000_000)?;
    client.wait_idle(alpha.id(), wait)?;
    client.resume(alpha.id())?;
    client.wait_idle(alpha.id(), wait)?;
    client.wait_idle(beta.id(), wait)?;

    // Tail the merged stream, demuxing on the frame's session tag.
    let (mut slices, mut delta_entries, mut hits) = (0usize, 0usize, 0usize);
    let mut beta_entries = 0usize;
    while let Ok(event) = client.next_event(Duration::from_millis(300)) {
        let from_beta = event.session() == beta.id();
        match event {
            EngineEvent::SliceCompleted { .. } => slices += 1,
            EngineEvent::TraceDelta { entries, .. } => {
                if from_beta {
                    beta_entries += entries.len();
                } else {
                    delta_entries += entries.len();
                }
            }
            EngineEvent::BreakpointHit { seq, time_ns, .. } => {
                hits += 1;
                println!(
                    "breakpoint hit at seq {seq}, t = {:.3} ms",
                    time_ns as f64 / 1e6
                );
            }
            EngineEvent::Lagged { dropped, .. } => println!("lagged: {dropped} events dropped"),
            _ => {}
        }
    }
    println!(
        "merged stream: {slices} slices, {delta_entries} alpha + {beta_entries} beta trace \
         entries, {hits} breakpoint hit(s)"
    );

    // Detach beta; alpha's request/reply path keeps working.
    client.detach(beta.id())?;
    let snap = client.snapshot(alpha.id(), true, wait)?;
    println!(
        "remote snapshot (alpha): t = {:.1} ms, {} trace entries, engine {:?}",
        snap.now_ns as f64 / 1e6,
        snap.trace_len,
        snap.engine_state
    );
    assert!(snap.trace_len > 0 && hits >= 1 && beta_entries > 0);
    Ok(())
}
