//! Time travel: `SeekTo` / `StepBack` / `ReplayWindow` over a durable
//! session.
//!
//! Run with `cargo run --example time_travel`.
//!
//! Boots a persistent `DebugServer` that writes a full-state checkpoint
//! every 32 trace entries, hosts a durable blinker session, pumps part
//! of a run and **drops the server mid-run** — the simulated crash. The
//! second life restores the session, finishes the outstanding budget,
//! and then travels backwards through the finished history:
//!
//! * `seek_to(t)` restores the nearest checkpoint at or before `t` and
//!   deterministically replays forward — O(checkpoint interval), not
//!   O(trace length);
//! * `step_back(k)` rewinds `k` trace entries the same way;
//! * `replay_window(t0, t1)` regenerates a time window even when the
//!   live store no longer holds it.
//!
//! The live session is never touched: every seek runs in a detached
//! replica, and the checkpoint is only an accelerator — the journal
//! stays the single source of truth.

use gmdf::{ChannelMode, SessionSpec, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_server::{DebugServer, PersistConfig, ServerConfig, SessionId};
use gmdf_target::SimConfig;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

/// Checkpoint every 16 entries — small, so even this short demo run
/// writes several images and the seeks below genuinely restore one.
const CKPT_INTERVAL: u64 = 16;

fn blinker(name: &str) -> Result<System, gmdf_comdes::ComdesError> {
    let fsm = FsmBuilder::new()
        .output(Port::boolean("lamp"))
        .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
        .state("On", |s| s.entry("lamp", Expr::Bool(true)))
        .transition(
            "Off",
            "On",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        )
        .transition(
            "On",
            "Off",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        )
        .build()?;
    let net = NetworkBuilder::new()
        .output(Port::boolean("lamp"))
        .state_machine("ctl", fsm)
        .connect("ctl.lamp", "lamp")?
        .build()?;
    let actor = ActorBuilder::new("Blinker", net)
        .output("lamp", "lamp")
        .timing(Timing::periodic(1_000_000, 0))
        .build()?;
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new(name).with_node(node))
}

fn spec() -> Result<SessionSpec, Box<dyn std::error::Error>> {
    Ok(Workflow::from_system(blinker("time-travel-blink")?)?
        .default_abstraction()
        .default_commands()
        .into_spec(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            // The default 115200-baud UART cannot carry this event rate;
            // a faster link keeps the node's TX queue (and therefore the
            // checkpoint images) small.
            SimConfig {
                uart_baud: 1_000_000,
                ..SimConfig::default()
            },
        ))
}

fn persist(root: &std::path::Path) -> PersistConfig {
    PersistConfig::new(root).with_checkpoint_interval(CKPT_INTERVAL)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("gmdf-time-travel-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    // -- first life: run, checkpoint, die mid-run ---------------------------
    let id: SessionId = {
        let server = DebugServer::start_persistent(ServerConfig::default(), persist(&root))?;
        let handle = server.add_durable_session(&spec()?)?;
        handle.run_for(250_000_000)?; // 250 ms of target time
        handle.wait_idle(WAIT)?;
        let snap = handle.stats(WAIT)?;
        println!(
            "[life 1] pumped to {} ms, trace length {} (checkpoint every {CKPT_INTERVAL} entries)",
            snap.now_ns / 1_000_000,
            snap.trace_len
        );
        // Grant more budget, then drop the server with it outstanding:
        // the crash. The stats barrier makes sure the journal holds the
        // command before the kill.
        handle.run_for(60_000_000)?;
        handle.stats(WAIT)?;
        println!("[life 1] killed mid-run with ~60 ms of budget outstanding");
        handle.id()
        // Server dropped here; registry + checkpoints stay on disk.
    };

    let ckpt_dir = root
        .join("sessions")
        .join(format!("{id:016}"))
        .join("checkpoints");
    let images = std::fs::read_dir(&ckpt_dir)?.count();
    println!(
        "[disk]   {images} checkpoint image(s) under {}",
        ckpt_dir.display()
    );
    assert!(images >= 2, "demo run should span several intervals");

    // -- second life: restore, finish, then travel backwards ----------------
    let server = DebugServer::start_persistent(ServerConfig::default(), persist(&root))?;
    let handle = server.handle(id).expect("session restored");
    handle.wait_idle(WAIT)?; // deterministic replay + the outstanding 60 ms
    let snap = handle.snapshot(WAIT)?;
    println!(
        "[life 2] run complete at {} ms, trace length {}",
        snap.now_ns / 1_000_000,
        snap.trace_len
    );

    // Seek to the middle of the finished history.
    let seek = handle.seek_to(snap.now_ns / 2, false, WAIT)?;
    println!(
        "[seek]   t={} ms via checkpoint seq {:?} (t={:?} ms): replayed {} of {} entries",
        seek.target_ns / 1_000_000,
        seek.checkpoint_seq,
        seek.checkpoint_t_ns.map(|t| t / 1_000_000),
        seek.replayed_entries,
        seek.trace_len,
    );
    assert!(
        seek.checkpoint_seq.is_some(),
        "mid-trace seek restores an image"
    );
    assert!(
        seek.replayed_entries < seek.trace_len,
        "the whole point: replay O(interval), not O(trace)"
    );

    // Step back a handful of entries from the end.
    let back = handle.step_back(8, false, WAIT)?;
    println!(
        "[back]   8 entries back lands at t={} ms (trace length {})",
        back.target_ns / 1_000_000,
        back.trace_len
    );

    // Regenerate a window around the seek target and inspect it.
    let t0 = seek.target_ns.saturating_sub(5_000_000);
    let window = handle.replay_window(t0, seek.target_ns, WAIT)?;
    println!(
        "[window] [{}..{}] ms regenerated {} entries:",
        t0 / 1_000_000,
        seek.target_ns / 1_000_000,
        window.entries.len()
    );
    for entry in window.entries.iter().take(4) {
        let e = &entry.event;
        println!(
            "         #{:>4} {:>9} ns {:?} {}{}",
            entry.seq,
            e.time_ns,
            e.kind,
            e.path,
            e.to.as_deref()
                .map(|s| format!(" -> {s}"))
                .unwrap_or_default(),
        );
    }

    drop(server);
    std::fs::remove_dir_all(&root).ok();
    println!("done: stepping backwards costs one checkpoint interval, not the whole trace.");
    Ok(())
}
