//! Distributed multi-instance debugging over the passive JTAG channel.
//!
//! Three actors on three nodes — sensor filter, hysteresis controller,
//! valve driver — exchanging labeled state messages (paper §III). The
//! debugger watches the controller's state variable through IEEE 1149.1
//! TAP scans: **zero** target cycles, no code modification (paper §II's
//! passive solution). The example also measures the I/O jitter the
//! deadline-latching runtime eliminates.
//!
//! Run with `cargo run --example distributed_heating`.

use gmdf::{ChannelMode, Workflow};
use gmdf_codegen::{compile_system, CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, SignalValue, System,
    Timing,
};
use gmdf_engine::timing_diagram;
use gmdf_target::{SimConfig, SimEvent, Simulator};

fn heating_system() -> Result<System, gmdf_comdes::ComdesError> {
    // Node 1: sensor conditioning (low-pass the raw reading).
    let sensor_net = NetworkBuilder::new()
        .input(Port::real("raw"))
        .output(Port::real("temp"))
        .block("lp", BasicOp::LowPass { alpha: 0.4 })
        .connect("raw", "lp.x")?
        .connect("lp.y", "temp")?
        .build()?;
    let sensor = ActorBuilder::new("Sensor", sensor_net)
        .input("raw", "raw_temp")
        .output("temp", "temp")
        .timing(Timing::periodic(50_000_000, 0))
        .build()?;

    // Node 2: hysteresis thermostat as an explicit state machine.
    let fsm = FsmBuilder::new()
        .input(Port::real("temp"))
        .output(Port::boolean("heat"))
        .state("Idle", |s| s.entry("heat", Expr::Bool(false)))
        .state("Heating", |s| s.entry("heat", Expr::Bool(true)))
        .transition("Idle", "Heating", Expr::var("temp").lt(Expr::Real(19.5)))
        .transition("Heating", "Idle", Expr::var("temp").gt(Expr::Real(21.0)))
        .initial("Idle")
        .build()?;
    let ctl_net = NetworkBuilder::new()
        .input(Port::real("temp"))
        .output(Port::boolean("heat"))
        .state_machine("thermostat", fsm)
        .connect("temp", "thermostat.temp")?
        .connect("thermostat.heat", "heat")?
        .build()?;
    let controller = ActorBuilder::new("Controller", ctl_net)
        .input("temp", "temp")
        .output("heat", "heat_cmd")
        .timing(Timing::periodic(100_000_000, 0))
        .build()?;

    // Node 3: valve driver (rate-limited actuation).
    let valve_net = NetworkBuilder::new()
        .input(Port::boolean("heat"))
        .output(Port::real("valve"))
        .block("sel", BasicOp::Select)
        .block("hi", BasicOp::Const(SignalValue::Real(100.0)))
        .block("lo", BasicOp::Const(SignalValue::Real(0.0)))
        .block(
            "slew",
            BasicOp::RateLimiter {
                max_rise: 200.0,
                max_fall: 200.0,
            },
        )
        .connect("heat", "sel.sel")?
        .connect("hi.y", "sel.a")?
        .connect("lo.y", "sel.b")?
        .connect("sel.y", "slew.x")?
        .connect("slew.y", "valve")?
        .build()?;
    let valve = ActorBuilder::new("Valve", valve_net)
        .input("heat", "heat_cmd")
        .output("valve", "valve_pos")
        .timing(Timing::periodic(50_000_000, 1))
        .build()?;

    let mut n1 = NodeSpec::new("sensor_node", 50_000_000);
    n1.actors.push(sensor);
    let mut n2 = NodeSpec::new("control_node", 50_000_000);
    n2.actors.push(controller);
    let mut n3 = NodeSpec::new("valve_node", 50_000_000);
    n3.actors.push(valve);
    Ok(System::new("heating")
        .with_node(n1)
        .with_node(n2)
        .with_node(n3))
}

/// A slow sinusoid-ish room temperature profile.
fn temperature_profile(session: &mut gmdf::DebugSession) -> Result<(), gmdf::SessionError> {
    for k in 0..120 {
        let t_ns = k * 100_000_000;
        let temp = 20.0 + 2.5 * ((k as f64) * 0.12).sin() - 0.8;
        session.schedule_signal(t_ns, "raw_temp", SignalValue::Real(temp))?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GMDF distributed heating — 3 actors / 3 nodes, passive JTAG channel\n");

    let system = heating_system()?;
    let mut session = Workflow::from_system(system.clone())?
        .default_abstraction()
        .default_commands()
        .connect(
            // Passive: poll monitored variables every 5 ms over a 10 MHz TAP.
            ChannelMode::Passive {
                poll_period_ns: 5_000_000,
                tck_hz: 10_000_000,
            },
            CompileOptions {
                instrument: InstrumentOptions::none(), // no code modifications
                faults: vec![],
            },
            SimConfig {
                bus_latency_ns: 200_000,
                ..SimConfig::default()
            },
        )?;
    temperature_profile(&mut session)?;

    let report = session.run_for(12_000_000_000)?;
    println!(
        "passive run: {} watch-derived commands, 0 bytes of instrumentation traffic",
        report.events_fed
    );
    println!("\nthermostat activity (from JTAG watch hits):");
    for e in session.engine().trace().entries() {
        println!("  {}", e.event);
    }
    println!(
        "\nfinal animated model:\n{}",
        session.engine().frame_ascii()
    );
    println!(
        "{}",
        timing_diagram(session.engine().trace(), "Controller/thermostat").to_ascii(90)
    );

    // ---- Jitter measurement: deadline latching on vs off -----------------
    println!("I/O jitter of the Valve actor's publications:");
    let jitter_of = |latch: bool| -> Result<(usize, i64), Box<dyn std::error::Error>> {
        let image = compile_system(
            &system,
            &CompileOptions {
                instrument: InstrumentOptions::none(),
                faults: vec![],
            },
        )?;
        let mut sim = Simulator::new(
            image,
            SimConfig {
                latch_outputs: latch,
                ..SimConfig::default()
            },
        )?;
        sim.schedule_signal(0, "raw_temp", SignalValue::Real(18.0))?;
        sim.run_until(5_000_000_000)?;
        let times: Vec<u64> = sim
            .events()
            .iter()
            .filter_map(|e| match e {
                SimEvent::Publish { time_ns, label, .. } if label == "valve_pos" => Some(*time_ns),
                _ => None,
            })
            .collect();
        let intervals: Vec<i64> = times
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        let jitter = intervals.iter().max().unwrap_or(&0) - intervals.iter().min().unwrap_or(&0);
        Ok((times.len(), jitter))
    };
    let (n_latched, j_latched) = jitter_of(true)?;
    let (n_unlatched, j_unlatched) = jitter_of(false)?;
    println!("  timed multitasking (publish at deadline):   {n_latched} publications, jitter = {j_latched} ns");
    println!("  completion-time publication (no latching):  {n_unlatched} publications, jitter = {j_unlatched} ns");

    let out_dir = std::path::Path::new("target/gmdf-artifacts");
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(
        out_dir.join("heating-frame.svg"),
        session.engine().frame_svg(),
    )?;
    std::fs::write(
        out_dir.join("heating-timing.svg"),
        timing_diagram(session.engine().trace(), "Controller/thermostat").to_svg(),
    )?;
    println!("\nartifacts written to {}", out_dir.display());
    Ok(())
}
