//! Implementation-error detection: the debugger catches bugs injected
//! into the **model transformation**, not the model.
//!
//! "In principle, there are two kinds of bugs that can be checked with a
//! runtime model debugger: design-errors … and implementation errors that
//! happen during model transformation" (paper §II). Here the model is
//! correct; the code generator is sabotaged three ways, and each sabotage
//! is detected — and classified as an implementation error by comparing
//! the target's behaviour with the reference interpreter's.
//!
//! Run with `cargo run --example fault_injection`.

use gmdf::{comdes_allowed_transitions, ChannelMode, Workflow};
use gmdf_codegen::{CompileOptions, Fault, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_target::SimConfig;

fn washer_system() -> Result<System, gmdf_comdes::ComdesError> {
    let fsm = FsmBuilder::new()
        .output(Port::int("phase"))
        .state("Fill", |s| s.entry("phase", Expr::Int(0)))
        .state("Wash", |s| s.entry("phase", Expr::Int(1)))
        .state("Rinse", |s| s.entry("phase", Expr::Int(2)))
        .state("Spin", |s| s.entry("phase", Expr::Int(3)))
        .transition(
            "Fill",
            "Wash",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.3)),
        )
        .transition(
            "Wash",
            "Rinse",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.5)),
        )
        .transition(
            "Rinse",
            "Spin",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.4)),
        )
        .transition(
            "Spin",
            "Fill",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.6)),
        )
        .initial("Fill")
        .build()?;
    let net = NetworkBuilder::new()
        .output(Port::int("phase"))
        .state_machine("cycle", fsm)
        .connect("cycle.phase", "phase")?
        .build()?;
    let actor = ActorBuilder::new("Washer", net)
        .output("phase", "phase")
        .timing(Timing::periodic(50_000_000, 0))
        .build()?;
    let mut node = NodeSpec::new("mcu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new("washer").with_node(node))
}

fn debug_with_faults(faults: Vec<Fault>) -> Result<(), Box<dyn std::error::Error>> {
    let fault_desc = if faults.is_empty() {
        "no faults (correct generator)".to_owned()
    } else {
        faults
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("\n===== generator: {fault_desc} =====");

    let system = washer_system()?;
    let mut session = Workflow::from_system(system)?
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults,
            },
            SimConfig::default(),
        )?;
    // The expectations are derived from the MODEL itself — any observed
    // transition outside the model is an implementation error by
    // construction.
    for e in comdes_allowed_transitions(session.system())? {
        session.engine_mut().add_expectation(e);
    }

    let report = session.run_for(5_000_000_000)?;
    println!("commands observed: {}", report.events_fed);
    let entries = session.engine().trace().entries();
    let entered: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.event.to.as_deref())
        .collect();
    println!("phases entered:   {}", entered.join(" → "));
    println!("violations:       {}", session.engine().violations().len());
    for v in session.engine().violations().iter().take(2) {
        println!("  {v}");
    }

    if report.events_fed == 0 {
        println!("diagnosis: the debugger is SILENT — the generator dropped the");
        println!("           command interface (every emit stripped). The model");
        println!("           cannot be debugged actively; switch to JTAG.");
    } else {
        let (class, divergence) = session.classify_against_model()?;
        if session.engine().violations().is_empty() && divergence.is_none() {
            println!("diagnosis: behaviour matches the model — no bug.");
        } else {
            println!("diagnosis: {class}");
            if let Some(d) = divergence {
                println!("  first divergence — {d}");
            }
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GMDF fault injection — catching model-transformation bugs");
    // Baseline: faithful generator.
    debug_with_faults(vec![])?;
    // Classic transition-table indexing slip.
    debug_with_faults(vec![Fault::SwapTransitionTargets {
        block_path: "Washer/cycle".into(),
    }])?;
    // Inverted guard on the Wash → Rinse transition.
    debug_with_faults(vec![Fault::NegateGuard {
        block_path: "Washer/cycle".into(),
        transition: 1,
    }])?;
    // A generator that silently forgot the command interface.
    debug_with_faults(vec![Fault::DropEmits])?;
    Ok(())
}
