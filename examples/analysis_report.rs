//! Static analysis vs. simulation: predict, then verify.
//!
//! Run with `cargo run --example analysis_report`.
//!
//! Builds a three-node preset fleet whose schedulability is *designed*
//! to span all three verdicts:
//!
//! * `sensor` — fast CPU, light tasks: everything `Schedulable`;
//! * `ctrl`   — slow MCU where a high-priority guard task squeezes the
//!   controller past its deadline: `DeadlineRisk`;
//! * `logger` — more demand than CPU: `Overutilized` (a warning, never
//!   a refusal — debugging overloaded specs is the point of a debugger).
//!
//! The example prints the static report (`gmdf-analyze`, the same pass
//! the debug server runs at session registration), then boots the
//! cycle-accurate simulator, runs 200 ms of fleet time, and annotates
//! each prediction with what actually happened: which flagged risks
//! fired as real deadline misses, and whether every `Schedulable` WCRT
//! bound held.

use gmdf_analyze::{analyze, Severity, TaskVerdict};
use gmdf_codegen::{compile_system, CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, BasicOp, ComdesError, NetworkBuilder, NodeSpec, Port, System, Timing,
};
use gmdf_target::{SimConfig, SimEvent, Simulator};
use std::collections::BTreeMap;

/// An actor whose step is a chain of `len` float blocks — a knob for
/// dialing in worst-case execution time precisely.
fn chain_actor(
    name: &str,
    len: usize,
    input: Option<&str>,
    output: &str,
    timing: Timing,
) -> Result<gmdf_comdes::Actor, ComdesError> {
    let mut net = NetworkBuilder::new().output(Port::real("y"));
    let mut prev = if input.is_some() {
        net = net.input(Port::real("x"));
        "x".to_owned()
    } else {
        net = net.block("src", BasicOp::Const(1.0.into()));
        "src.y".to_owned()
    };
    for i in 0..len {
        let op = match i % 3 {
            0 => BasicOp::Gain { k: 1.01 },
            1 => BasicOp::Offset { c: -0.005 },
            _ => BasicOp::Limit {
                lo: -100.0,
                hi: 100.0,
            },
        };
        let bname = format!("b{i}");
        net = net
            .block(&bname, op)
            .connect(&prev, &format!("{bname}.x"))?;
        prev = format!("{bname}.y");
    }
    net = net.connect(&prev, "y")?;
    let mut builder = ActorBuilder::new(name, net.build()?).output("y", output);
    if let Some(label) = input {
        builder = builder.input("x", label);
    }
    builder.timing(timing).build()
}

fn fleet() -> Result<System, ComdesError> {
    // Fast CPU, light work: comfortably schedulable.
    let mut sensor = NodeSpec::new("sensor", 50_000_000);
    sensor.actors.push(chain_actor(
        "Acquire",
        6,
        None,
        "temp",
        Timing::periodic(1_000_000, 0),
    )?);
    sensor.actors.push(chain_actor(
        "Smooth",
        8,
        Some("temp"),
        "temp_f",
        Timing::periodic(1_000_000, 1),
    )?);

    // Slow MCU: a high-priority guard interferes with the controller
    // enough that its worst-case response crosses the deadline.
    let mut ctrl = NodeSpec::new("ctrl", 1_000_000);
    ctrl.actors.push(chain_actor(
        "Guard",
        20,
        Some("temp_f"),
        "guard_ok",
        Timing::periodic(500_000, 0),
    )?);
    ctrl.actors.push(chain_actor(
        "Pid",
        33,
        Some("temp_f"),
        "heat",
        Timing {
            period_ns: 2_000_000,
            offset_ns: 0,
            deadline_ns: 800_000,
            priority: 1,
        },
    )?);

    // More demand than CPU: utilization past 100 %.
    let mut logger = NodeSpec::new("logger", 1_000_000);
    logger.actors.push(chain_actor(
        "Audit",
        45,
        Some("heat"),
        "audit_ok",
        Timing::periodic(1_000_000, 0),
    )?);
    logger.actors.push(chain_actor(
        "Flush",
        45,
        Some("guard_ok"),
        "flush_ok",
        Timing::periodic(1_000_000, 1),
    )?);

    Ok(System::new("thermal_fleet")
        .with_node(sensor)
        .with_node(ctrl)
        .with_node(logger))
}

fn verdict_cell(v: &TaskVerdict) -> String {
    match v {
        TaskVerdict::Schedulable { wcrt_ns } => format!("schedulable (wcrt {wcrt_ns} ns)"),
        TaskVerdict::DeadlineRisk { bound_ns } => format!("DEADLINE RISK (bound {bound_ns} ns)"),
        TaskVerdict::Overutilized => "OVERUTILIZED".to_owned(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = fleet()?;
    let image = compile_system(
        &system,
        &CompileOptions {
            instrument: InstrumentOptions::behavior(),
            faults: vec![],
        },
    )?;
    let config = SimConfig::default();

    // ---- Static analysis (what the server runs at add_session) ------
    let report = analyze(&system, &image, &config)?;
    println!("== Static analysis: {} ==", report.system);
    for node in &report.nodes {
        println!(
            "\nnode `{}` @ {} MHz — utilization {:.1} %{}{}",
            node.node,
            node.cpu_hz / 1_000_000,
            node.utilization_ppm as f64 / 10_000.0,
            if node.overutilized {
                " (OVERUTILIZED)"
            } else {
                ""
            },
            match node.hyperperiod_ns {
                Some(h) => format!(", hyperperiod {} us", h / 1_000),
                None => String::new(),
            },
        );
        println!(
            "  {:<8} {:>10} {:>10} {:>4} {:>9} {:>9}  verdict",
            "task", "period", "deadline", "prio", "wcet", "jitter"
        );
        for t in &node.tasks {
            println!(
                "  {:<8} {:>10} {:>10} {:>4} {:>9} {:>9}  {}",
                t.actor,
                t.period_ns,
                t.deadline_ns,
                t.priority,
                t.wcet_ns,
                t.release_jitter_ns,
                verdict_cell(&t.verdict),
            );
        }
    }

    let (errors, warnings) = report.diagnostic_counts();
    println!("\n== Diagnostics ({errors} errors, {warnings} warnings) ==");
    for d in &report.diagnostics {
        let tag = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warn ",
            Severity::Info => "info ",
        };
        println!("  [{tag}] {d}");
    }

    // ---- Simulation: does reality agree? ----------------------------
    const HORIZON_NS: u64 = 200_000_000;
    let mut sim = Simulator::new(image, config)?;
    sim.run_until(HORIZON_NS)?;

    let mut max_response: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut misses: BTreeMap<(String, String), u64> = BTreeMap::new();
    for ev in sim.events() {
        match ev {
            SimEvent::Completion {
                node,
                actor,
                response_ns,
                ..
            } => {
                let r = max_response
                    .entry((node.to_string(), actor.to_string()))
                    .or_default();
                *r = (*r).max(*response_ns);
            }
            SimEvent::DeadlineMiss { node, actor, .. } => {
                *misses
                    .entry((node.to_string(), actor.to_string()))
                    .or_default() += 1;
            }
            _ => {}
        }
    }

    println!(
        "\n== Verdicts vs. {} ms of simulation ==",
        HORIZON_NS / 1_000_000
    );
    let mut sound = true;
    let mut fired = 0usize;
    let mut flagged = 0usize;
    for node in &report.nodes {
        for t in &node.tasks {
            let key = (node.node.clone(), t.actor.clone());
            let observed = max_response.get(&key).copied().unwrap_or(0);
            let missed = misses.get(&key).copied().unwrap_or(0);
            let note = match &t.verdict {
                TaskVerdict::Schedulable { wcrt_ns } => {
                    let held = missed == 0 && observed <= *wcrt_ns;
                    sound &= held;
                    if held {
                        format!("clean as predicted (max response {observed} ns <= bound)")
                    } else {
                        format!("BOUND VIOLATED (max response {observed} ns, {missed} misses)")
                    }
                }
                TaskVerdict::DeadlineRisk { .. } | TaskVerdict::Overutilized => {
                    flagged += 1;
                    if missed > 0 {
                        fired += 1;
                        format!("risk FIRED: {missed} deadline misses (max response {observed} ns)")
                    } else {
                        "flagged, no miss within this horizon (bound is worst-case)".to_owned()
                    }
                }
            };
            println!("  {}/{:<8} {}", node.node, t.actor, note);
        }
    }
    println!(
        "\n{fired}/{flagged} flagged risks produced real deadline misses; \
         every schedulable WCRT bound {}",
        if sound {
            "held"
        } else {
            "was violated (analysis bug!)"
        }
    );
    assert!(
        sound,
        "soundness violated: a Schedulable task missed its bound"
    );
    assert!(fired > 0, "expected at least one flagged risk to fire");
    Ok(())
}
