//! Heterogeneous model debugging: a cruise controller mixing a state
//! machine with a modal dataflow controller — the paper's motivating
//! "state instance invokes a particular instance of a dataflow model"
//! pattern (§II), plus a *design error* caught by an expectation monitor
//! and classified against the reference interpreter.
//!
//! Run with `cargo run --example cruise_control`.

use gmdf::{ChannelMode, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, BasicOp, Expr, FsmBuilder, ModalBlock, Mode, NetworkBuilder, NodeSpec, Port,
    SignalValue, System, Timing,
};
use gmdf_engine::Expectation;
use gmdf_target::SimConfig;

/// Builds the cruise-control system. `broken_model` plants the design
/// error: the PID output clamp in the *model* is far too wide, so the
/// throttle command violates the actuator requirement [0, 100] — a bug in
/// the design, not in the code generator.
fn cruise_system(broken_model: bool) -> Result<System, gmdf_comdes::ComdesError> {
    // Supervisory state machine: Off → Armed → Cruising, cancel anywhere.
    let fsm = FsmBuilder::new()
        .input(Port::boolean("set"))
        .input(Port::boolean("cancel"))
        .output(Port::int("mode"))
        .state("Off", |s| s.entry("mode", Expr::Int(0)))
        .state("Armed", |s| s.entry("mode", Expr::Int(0)))
        .state("Cruising", |s| s.entry("mode", Expr::Int(1)))
        .transition("Off", "Armed", Expr::var("set"))
        .transition("Armed", "Cruising", Expr::var("set").not())
        .transition("Cruising", "Off", Expr::var("cancel"))
        .transition("Armed", "Off", Expr::var("cancel"))
        .initial("Off")
        .build()?;

    // Modal throttle controller: mode 0 = coast (zero throttle),
    // mode 1 = PID speed hold.
    let coast = NetworkBuilder::new()
        .input(Port::real("speed"))
        .input(Port::real("target"))
        .output(Port::real("throttle"))
        .block("zero", BasicOp::Const(SignalValue::Real(0.0)))
        .connect("zero.y", "throttle")?
        .build()?;
    let (lo, hi) = if broken_model {
        (-50.0, 150.0)
    } else {
        (0.0, 100.0)
    };
    let hold = NetworkBuilder::new()
        .input(Port::real("speed"))
        .input(Port::real("target"))
        .output(Port::real("throttle"))
        .block(
            "pid",
            BasicOp::Pid {
                kp: 8.0,
                ki: 2.0,
                kd: 0.0,
                lo,
                hi,
            },
        )
        .connect("target", "pid.sp")?
        .connect("speed", "pid.pv")?
        .connect("pid.u", "throttle")?
        .build()?;
    let modal = ModalBlock {
        data_inputs: vec![Port::real("speed"), Port::real("target")],
        outputs: vec![Port::real("throttle")],
        modes: vec![
            Mode {
                name: "coast".into(),
                network: coast,
            },
            Mode {
                name: "hold".into(),
                network: hold,
            },
        ],
    };

    let net = NetworkBuilder::new()
        .input(Port::boolean("set"))
        .input(Port::boolean("cancel"))
        .input(Port::real("speed"))
        .input(Port::real("target"))
        .output(Port::int("mode"))
        .output(Port::real("throttle"))
        .state_machine("sup", fsm)
        .modal("ctl", modal)
        .connect("set", "sup.set")?
        .connect("cancel", "sup.cancel")?
        .connect("sup.mode", "ctl.mode")?
        .connect("speed", "ctl.speed")?
        .connect("target", "ctl.target")?
        .connect("sup.mode", "mode")?
        .connect("ctl.throttle", "throttle")?
        .build()?;
    let actor = ActorBuilder::new("Cruise", net)
        .input("set", "btn_set")
        .input("cancel", "btn_cancel")
        .input("speed", "speed")
        .input("target", "target")
        .output("mode", "cruise_mode")
        .output("throttle", "throttle")
        .timing(Timing::periodic(20_000_000, 0)) // 50 Hz
        .build()?;
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new("cruise").with_node(node))
}

fn drive(session: &mut gmdf::DebugSession) -> Result<(), Box<dyn std::error::Error>> {
    session.schedule_signal(0, "speed", SignalValue::Real(60.0))?;
    session.schedule_signal(0, "target", SignalValue::Real(90.0))?;
    // Press SET at 0.1 s, release at 0.2 s → Armed → Cruising.
    session.schedule_signal(100_000_000, "btn_set", SignalValue::Bool(true))?;
    session.schedule_signal(200_000_000, "btn_set", SignalValue::Bool(false))?;
    // Cancel at 1.5 s.
    session.schedule_signal(1_500_000_000, "btn_cancel", SignalValue::Bool(true))?;
    session.run_for(2_000_000_000)?;
    Ok(())
}

fn run_variant(broken_model: bool) -> Result<(), Box<dyn std::error::Error>> {
    let label = if broken_model {
        "DESIGN-ERROR MODEL"
    } else {
        "CORRECT MODEL"
    };
    println!("\n===== {label} =====");
    let system = cruise_system(broken_model)?;
    let mut session = Workflow::from_system(system)?
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::full(),
                faults: vec![],
            },
            SimConfig::default(),
        )?;

    // Requirement: the physical actuator accepts 0..100 % throttle.
    session
        .engine_mut()
        .add_expectation(Expectation::SignalRange {
            path_prefix: "Cruise/out/throttle".into(),
            min: 0.0,
            max: 100.0,
        });
    // Requirement: the supervisor must arm before cruising.
    session
        .engine_mut()
        .add_expectation(Expectation::StateSequence {
            fsm_path: "Cruise/sup".into(),
            sequence: vec!["Armed".into(), "Cruising".into(), "Off".into()],
            cyclic: true,
        });

    drive(&mut session)?;

    println!("states visited:");
    for e in session.engine().trace().entries() {
        if e.event.kind == gmdf_gdm::EventKind::StateEnter
            || e.event.kind == gmdf_gdm::EventKind::ModeSwitch
        {
            println!("  {}", e.event);
        }
    }
    let violations = session.engine().violations();
    println!("violations found: {}", violations.len());
    for v in violations.iter().take(3) {
        println!("  {v}");
    }
    if !violations.is_empty() {
        let (class, divergence) = session.classify_against_model()?;
        println!("classification: {class}");
        if let Some(d) = divergence {
            println!("  divergence: {d}");
        } else {
            println!("  target behaviour matches the model — the model itself is wrong");
        }
    }

    // SVG frame of the final animated model.
    let out_dir = std::path::Path::new("target/gmdf-artifacts");
    std::fs::create_dir_all(out_dir)?;
    let name = if broken_model {
        "cruise-broken.svg"
    } else {
        "cruise-ok.svg"
    };
    std::fs::write(out_dir.join(name), session.engine().frame_svg())?;
    println!("frame written to {}", out_dir.join(name).display());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GMDF cruise control — heterogeneous model (FSM + modal dataflow)");
    run_variant(false)?;
    run_variant(true)?;
    Ok(())
}
