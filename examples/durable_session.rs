//! Durable sessions: a debug server that survives its own restart.
//!
//! Run with `cargo run --example durable_session`.
//!
//! Boots a *persistent* `DebugServer`, hosts a durable blinker session
//! (spec + command journal + segmented on-disk trace under a registry
//! directory), pumps part of a run, then **drops the server mid-run**
//! — the simulated crash. A second server started over the same
//! registry recreates the session, deterministically replays its
//! command history, finishes the outstanding run budget, and serves
//! the full trace — byte-identical to what an uninterrupted run would
//! have recorded. Historical entries are paged from disk with
//! `ReplayFrom`, the way a remote frontend backfills after a restart.

use gmdf::{ChannelMode, SessionSpec, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_server::{DebugServer, PersistConfig, ServerConfig, SessionId};
use gmdf_target::SimConfig;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

fn blinker(name: &str) -> Result<System, gmdf_comdes::ComdesError> {
    let fsm = FsmBuilder::new()
        .output(Port::boolean("lamp"))
        .state("Off", |s| s.entry("lamp", Expr::Bool(false)))
        .state("On", |s| s.entry("lamp", Expr::Bool(true)))
        .transition(
            "Off",
            "On",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        )
        .transition(
            "On",
            "Off",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.002)),
        )
        .build()?;
    let net = NetworkBuilder::new()
        .output(Port::boolean("lamp"))
        .state_machine("ctl", fsm)
        .connect("ctl.lamp", "lamp")?
        .build()?;
    let actor = ActorBuilder::new("Blinker", net)
        .output("lamp", "lamp")
        .timing(Timing::periodic(1_000_000, 0))
        .build()?;
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new(name).with_node(node))
}

fn spec() -> Result<SessionSpec, Box<dyn std::error::Error>> {
    Ok(Workflow::from_system(blinker("durable-blink")?)?
        .default_abstraction()
        .default_commands()
        .into_spec(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("gmdf-durable-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    // -- first life: host a durable session, die mid-run -------------------
    let id: SessionId = {
        let server =
            DebugServer::start_persistent(ServerConfig::default(), PersistConfig::new(&root))?;
        let handle = server.add_durable_session(&spec()?)?;
        println!(
            "[life 1] durable session {} under {}",
            handle.id(),
            root.display()
        );

        handle.run_for(10_000_000)?; // 10 ms of target time
        handle.wait_idle(WAIT)?;
        let snap = handle.stats(WAIT)?;
        println!(
            "[life 1] pumped to {} ms, trace length {}",
            snap.now_ns / 1_000_000,
            snap.trace_len
        );

        // Grant 20 ms more — then drop the server with the budget
        // outstanding: the crash. The stats barrier round-trips the
        // mailbox behind the RunFor, so the journal holds the command
        // before the kill; the trace segments hold everything pumped
        // so far.
        handle.run_for(20_000_000)?;
        handle.stats(WAIT)?;
        println!("[life 1] killed mid-run with ~20 ms of budget outstanding");
        handle.id()
        // server dropped here
    };

    // -- second life: restart over the same registry ------------------------
    let server = DebugServer::start_persistent(ServerConfig::default(), PersistConfig::new(&root))?;
    println!("[life 2] restored sessions: {:?}", server.session_ids());
    let handle = server.handle(id).expect("session restored");
    handle.wait_idle(WAIT)?; // the scheduler finishes the journaled budget
    let snap = handle.snapshot(WAIT)?;
    println!(
        "[life 2] run complete at {} ms, trace length {}, violations {}",
        snap.now_ns / 1_000_000,
        snap.trace_len,
        snap.violations
    );
    assert_eq!(snap.now_ns, 30_000_000, "full 30 ms horizon finished");
    assert_eq!(snap.remaining_ns, 0);

    // Page the historical trace from disk, the way a re-attaching
    // frontend backfills its view.
    let mut entries = 0u64;
    let mut next = 0u64;
    let mut pages = 0u32;
    loop {
        let slice = handle.replay_from(next, 16, WAIT)?;
        entries += slice.entries.len() as u64;
        next += slice.entries.len() as u64;
        pages += 1;
        if slice.complete {
            break;
        }
    }
    println!("[life 2] backfilled {entries} entries in {pages} pages of ≤16");
    assert_eq!(entries as usize, snap.trace_len);

    drop(server);
    std::fs::remove_dir_all(&root).ok();
    println!("done: the restart is invisible in the record.");
    Ok(())
}
