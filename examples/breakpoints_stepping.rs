//! Model-level breakpoints and step-wise execution (paper §II,
//! functionality list item 1).
//!
//! A breakpoint is set *on the model* — "pause the view when the elevator
//! enters DoorsOpen" — not on a line of code. When it hits, the embedded
//! system keeps running (commands queue), and the developer steps through
//! the queued model events one by one before resuming.
//!
//! Run with `cargo run --example breakpoints_stepping`.

use gmdf::{ChannelMode, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_gdm::{CommandMatcher, EventKind};
use gmdf_target::SimConfig;

fn elevator_system() -> Result<System, gmdf_comdes::ComdesError> {
    let fsm = FsmBuilder::new()
        .output(Port::int("floor"))
        .state("Idle", |s| s.during("floor", Expr::Int(0)))
        .state("MovingUp", |s| s.during("floor", Expr::Int(1)))
        .state("DoorsOpen", |s| s.during("floor", Expr::Int(2)))
        .state("MovingDown", |s| s.during("floor", Expr::Int(3)))
        .transition(
            "Idle",
            "MovingUp",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(0.5)),
        )
        .transition(
            "MovingUp",
            "DoorsOpen",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(1.0)),
        )
        .transition(
            "DoorsOpen",
            "MovingDown",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(2.0)),
        )
        .transition(
            "MovingDown",
            "Idle",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(1.0)),
        )
        .initial("Idle")
        .build()?;
    let net = NetworkBuilder::new()
        .output(Port::int("floor"))
        .state_machine("lift", fsm)
        .connect("lift.floor", "floor")?
        .build()?;
    let actor = ActorBuilder::new("Elevator", net)
        .output("floor", "floor_state")
        .timing(Timing::periodic(100_000_000, 0))
        .build()?;
    let mut node = NodeSpec::new("cabin", 50_000_000);
    node.actors.push(actor);
    Ok(System::new("lift_demo").with_node(node))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GMDF breakpoints & step-wise execution\n");

    let mut session = Workflow::from_system(elevator_system()?)?
        .default_abstraction()
        .default_commands()
        .connect(
            ChannelMode::Active,
            CompileOptions {
                instrument: InstrumentOptions::behavior(),
                faults: vec![],
            },
            SimConfig::default(),
        )?;

    // Model-level breakpoint: pause when the elevator enters DoorsOpen.
    // (Matching on the FSM path; the hit is checked per command, so we
    // narrow it with the path prefix of the machine.)
    session.engine_mut().add_breakpoint(
        CommandMatcher::kind(EventKind::StateEnter).under("Elevator/lift"),
        false,
    );
    println!("breakpoint set: state-enter under Elevator/lift\n");

    // Run 12 s of wall-clock; the breakpoint hits on the FIRST transition.
    let report = session.run_for(12_000_000_000)?;
    println!(
        "run: {} command(s) observed, breakpoint hit = {}",
        report.events_fed, report.breakpoint_hit
    );
    println!(
        "engine paused; {} command(s) queued behind the breakpoint",
        session.engine().pending()
    );
    println!(
        "\nview frozen at the breakpoint:\n{}",
        session.engine().frame_ascii()
    );

    // Step through the queued commands one at a time.
    println!("stepping:");
    while session.engine().pending() > 0 {
        session.engine_mut().step();
        let trace = session.engine().trace();
        let last = trace.get(trace.len() as u64 - 1).expect("stepped entry");
        println!("  step → {}", last.event);
    }

    // Resume: engine returns to waiting; further runs animate live again.
    session.engine_mut().clear_breakpoints();
    session.engine_mut().resume();
    let report = session.run_for(3_000_000_000)?;
    println!(
        "\nresumed: {} more command(s) processed live, engine state = {:?}",
        report.events_fed,
        session.engine().state()
    );
    println!(
        "breakpoint hits total: {}",
        session.engine().stats().breakpoint_hits
    );
    Ok(())
}
