//! Quickstart: the five-step GMDF workflow of paper Fig. 6 on a traffic
//! light controller.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example models a pedestrian traffic light as a COMDES state-machine
//! actor, generates instrumented code, runs it on the simulated target,
//! and animates the design model from the live RS-232 command stream —
//! printing ASCII animation frames and finishing with the replay timing
//! diagram.

use gmdf::{ChannelMode, Workflow};
use gmdf_codegen::{CompileOptions, InstrumentOptions};
use gmdf_comdes::{
    ActorBuilder, Expr, FsmBuilder, NetworkBuilder, NodeSpec, Port, SignalValue, System, Timing,
    VAR_TIME_IN_STATE,
};
use gmdf_engine::timing_diagram;
use gmdf_target::SimConfig;

fn traffic_light_system() -> Result<System, gmdf_comdes::ComdesError> {
    // Dwell times: Red 3 s, Green 4 s (cut short by the button), Yellow 1 s.
    let fsm = FsmBuilder::new()
        .input(Port::boolean("button"))
        .output(Port::int("lamp"))
        .state("Red", |s| s.entry("lamp", Expr::Int(0)))
        .state("Green", |s| s.entry("lamp", Expr::Int(1)))
        .state("Yellow", |s| s.entry("lamp", Expr::Int(2)))
        .transition(
            "Red",
            "Green",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(3.0)),
        )
        .transition(
            "Green",
            "Yellow",
            Expr::var("button").or(Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(4.0))),
        )
        .transition(
            "Yellow",
            "Red",
            Expr::var(VAR_TIME_IN_STATE).ge(Expr::Real(1.0)),
        )
        .initial("Red")
        .build()?;
    let net = NetworkBuilder::new()
        .input(Port::boolean("button"))
        .output(Port::int("lamp"))
        .state_machine("ctl", fsm)
        .connect("button", "ctl.button")?
        .connect("ctl.lamp", "lamp")?
        .build()?;
    let actor = ActorBuilder::new("Light", net)
        .input("button", "button")
        .output("lamp", "lamp")
        .timing(Timing::periodic(100_000_000, 0)) // 100 ms control period
        .build()?;
    let mut node = NodeSpec::new("ecu", 50_000_000);
    node.actors.push(actor);
    Ok(System::new("crossing").with_node(node))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GMDF quickstart — paper Fig. 6 workflow\n");

    // Steps 1-2: input prerequisites (the COMDES system provides the
    // metamodel, the model, and — after compilation — the executable code).
    let system = traffic_light_system()?;
    let workflow = Workflow::from_system(system)?;
    println!(
        "step 1-2: inputs loaded ({} model elements, metamodel `{}`)",
        workflow.model().len(),
        workflow.metamodel().name()
    );

    // Step 3: abstraction guide (standard COMDES pairing list).
    let mapped = workflow.default_abstraction();
    println!("step 3:   abstraction finished (COMDES preset mapping)");

    // Step 4: command settings (default reactions) → initial GDM.
    let configured = mapped.default_commands();
    println!(
        "step 4:   GDM generated ({} elements, {} edges, {} bindings)",
        configured.gdm().elements.len(),
        configured.gdm().edges.len(),
        configured.gdm().bindings.len()
    );

    // Step 5: connect the active RS-232 channel and start debugging.
    let mut session = configured.connect(
        ChannelMode::Active,
        CompileOptions {
            instrument: InstrumentOptions::behavior(),
            faults: vec![],
        },
        SimConfig::default(),
    )?;
    println!("step 5:   channel established; debugger waiting for commands\n");

    // A pedestrian presses the button at t = 3.5 s and t = 12 s.
    session.schedule_signal(3_500_000_000, "button", SignalValue::Bool(true))?;
    session.schedule_signal(3_700_000_000, "button", SignalValue::Bool(false))?;
    session.schedule_signal(12_000_000_000, "button", SignalValue::Bool(true))?;
    session.schedule_signal(12_200_000_000, "button", SignalValue::Bool(false))?;

    // Run in 2-second slices, showing the animated model after each.
    for slice in 0..7 {
        let report = session.run_for(2_000_000_000)?;
        if report.events_fed > 0 {
            println!(
                "t = {:>2} s — {} command(s) received:",
                (slice + 1) * 2,
                report.events_fed
            );
            println!("{}", session.engine().frame_ascii());
        }
    }

    // The always-on execution trace, and the replay timing diagram.
    println!(
        "\nexecution trace ({} entries):",
        session.engine().trace().len()
    );
    for entry in session.engine().trace().entries() {
        println!("  {}", entry.event);
    }
    println!("\nreplay timing diagram:");
    println!(
        "{}",
        timing_diagram(session.engine().trace(), "Light/ctl state occupancy").to_ascii(100)
    );

    // Persist artifacts like the prototype would.
    let out_dir = std::path::Path::new("target/gmdf-artifacts");
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(
        out_dir.join("quickstart-frame.svg"),
        session.engine().frame_svg(),
    )?;
    std::fs::write(
        out_dir.join("quickstart-gdm.json"),
        session.engine().gdm().to_json(),
    )?;
    std::fs::write(
        out_dir.join("quickstart-trace.json"),
        session.engine().trace().to_json(),
    )?;
    std::fs::write(
        out_dir.join("quickstart-timing.svg"),
        timing_diagram(session.engine().trace(), "Light/ctl state occupancy").to_svg(),
    )?;
    println!("\nartifacts written to {}", out_dir.display());
    Ok(())
}
